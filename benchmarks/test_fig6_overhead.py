"""Benchmarks reproducing Figure 6: planning overhead (running times).

* Fig. 6(a): average planning time vs number of hosts.
* Fig. 6(b): average planning time vs query complexity.

The paper's headline finding is that planning time is much more sensitive to
the number of hosts than to the query arity; absolute times differ (CPLEX on
2011 hardware vs HiGHS here) but the trend should hold.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures

from benchmarks.conftest import SQPR, run_figure


@pytest.mark.benchmark(group="fig6")
def test_fig6a_planning_time_vs_hosts(benchmark):
    result = run_figure(
        benchmark, figures.fig6a_planning_time_vs_hosts, planner_name=SQPR
    )
    times = result.series["avg_planning_time_s"]
    assert all(t >= 0.0 for t in times)
    # Planning time grows with the number of hosts: the largest configuration
    # must not be cheaper than the smallest one.
    assert times[-1] >= times[0] * 0.8


@pytest.mark.benchmark(group="fig6")
def test_fig6b_planning_time_vs_arity(benchmark):
    result = run_figure(
        benchmark, figures.fig6b_planning_time_vs_arity, planner_name=SQPR
    )
    times = result.series["avg_planning_time_s"]
    assert all(t >= 0.0 for t in times)
    assert max(times) > 0.0
