"""Benchmark "Figure 13": admission latency under the sub-plan reuse index.

Before this PR the MILP planner's post-solve garbage collection re-ran
``rebuild_minimal_allocation`` after every admission, which re-extracts
the deployed plan of *every* resident query — an O(residents) pass whose
cost grows linearly with how many queries are live, even when the new
admission shares (or duplicates) an already-deployed sub-plan.  The
:class:`repro.dsps.subplan.SubPlanIndex` replaces that pass with cached
replay sequences: only the records whose read keys intersect the
admission's delta are re-extracted, so a planned admission costs
~O(query size) regardless of the resident population.

This benchmark pins both halves of that claim.  For each resident count
it grows two twin planners — index-on and index-off — to ``N`` admitted
queries drawn Zipf(2.0) from a small pool of *distinct* queries (the
reuse-heavy regime the paper's admission workload exhibits: most
arrivals duplicate or overlap a resident plan), then times a cycle of
*planned* probe admissions (fresh queries, submit + retire, so the
resident count stays at ``N``) on each planner:

* **identity** — at every size the two planners must agree on every
  admission decision and end with identical allocation fingerprints
  (the index is a pure optimisation, bit for bit);
* **flatness** — the index-on mean planned-admission latency at the
  largest resident count must stay within ``MAX_LATENCY_GROWTH``× of
  the smallest one, while the index-off baseline is reported (and in
  practice grows with ``N``).

The report is written to ``BENCH_reuse.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set ``REUSE_BENCH_QUICK=1``
for the smaller CI mode and ``REUSE_BENCH_OUT`` to redirect the report.
No pytest-benchmark plugin needed:

    pytest benchmarks/test_fig13_reuse_index.py -q -s
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from itertools import combinations
from pathlib import Path

from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem

#: Resident counts per measured size; the largest carries the assertions.
FULL_SIZES = [64, 128, 256, 512]
QUICK_SIZES = [64, 256]

NUM_HOSTS = 8
NUM_BASE = 12
#: Distinct resident queries the Zipf workload cycles over; bounding the
#: pool is what makes the workload reuse-heavy — residents beyond the
#: pool size are duplicates sharing an already-deployed sub-plan.
POOL_SIZE = 12
ZIPF_EXPONENT = 2.0
SEED = 1307

FULL_PROBES = 16
QUICK_PROBES = 8

#: Index-on mean planned-admission latency at the largest resident count
#: may be at most this multiple of the smallest count's.
MAX_LATENCY_GROWTH = 2.0


def _build_catalog() -> SystemCatalog:
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=4000.0,
    )
    for i in range(NUM_HOSTS):
        catalog.add_host(
            cpu_capacity=200.0,
            bandwidth_capacity=2000.0,
            name=f"h{i}",
            site=0,
        )
    for i in range(NUM_BASE):
        catalog.add_base_stream(f"b{i}", 10.0, i % NUM_HOSTS)
    return catalog


def _make_planner(reuse_index: bool) -> SQPRPlanner:
    config = PlannerConfig(
        time_limit=1.0, validate_after_apply=False, reuse_index=reuse_index
    )
    return SQPRPlanner(_build_catalog(), config=config)


def _query_pools():
    """(resident pool, probe pool): disjoint arity-2 base combinations.

    Probe queries are *not* in the resident pool, so every probe is a
    planned (non-duplicate) admission — the path that pays extraction.
    """
    combos = list(combinations([f"b{i}" for i in range(NUM_BASE)], 2))
    resident = combos[:POOL_SIZE]
    probe = combos[POOL_SIZE : POOL_SIZE + 8]
    return resident, probe


def _zipf_sequence(pool, count: int, rng: random.Random):
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=count)


def _measure_size(num_residents: int, num_probes: int):
    resident_pool, probe_pool = _query_pools()
    arrivals = _zipf_sequence(
        resident_pool, num_residents, random.Random(SEED + num_residents)
    )

    planners = {
        "index_on": _make_planner(reuse_index=True),
        "index_off": _make_planner(reuse_index=False),
    }
    admitted = {name: 0 for name in planners}
    for names in arrivals:
        outcomes = {
            name: planner.submit(QueryWorkloadItem(base_names=names))
            for name, planner in planners.items()
        }
        assert outcomes["index_on"].admitted == outcomes["index_off"].admitted
        for name, outcome in outcomes.items():
            admitted[name] += bool(outcome.admitted)
    assert admitted["index_on"] == admitted["index_off"] == num_residents, (
        f"pre-admission stalled at {admitted} of {num_residents} residents"
    )

    latency = {name: [] for name in planners}
    for probe_index in range(num_probes):
        names = probe_pool[probe_index % len(probe_pool)]
        item = QueryWorkloadItem(base_names=names)
        probe_ids = {}
        for name, planner in planners.items():
            start = time.perf_counter()
            outcome = planner.submit(item)
            latency[name].append(time.perf_counter() - start)
            assert outcome.admitted, (
                f"{name} rejected probe {names} at {num_residents} residents"
            )
            probe_ids[name] = outcome.query.query_id
        # Retire the probe (untimed) so the resident count stays at N and
        # the next probe is again a planned admission.
        for name, planner in planners.items():
            assert planner.retire(probe_ids[name])
        fingerprints = {
            name: planner.allocation.fingerprint()
            for name, planner in planners.items()
        }
        assert fingerprints["index_on"] == fingerprints["index_off"], (
            f"allocations diverged after probe {probe_index} "
            f"at {num_residents} residents"
        )

    stats = planners["index_on"].subplan_stats
    # Median, not mean: an occasional probe whose MILP scope runs into the
    # solver time limit costs ~1 s on *both* planners and would otherwise
    # drown the extraction-path cost this benchmark isolates.
    median_on = statistics.median(latency["index_on"])
    median_off = statistics.median(latency["index_off"])
    return {
        "num_residents": num_residents,
        "distinct_pool": POOL_SIZE,
        "num_probes": num_probes,
        "index_on_ms_per_admission": round(1e3 * median_on, 3),
        "index_off_ms_per_admission": round(1e3 * median_off, 3),
        "index_on_mean_ms": round(1e3 * statistics.mean(latency["index_on"]), 3),
        "index_off_mean_ms": round(1e3 * statistics.mean(latency["index_off"]), 3),
        "speedup": round(median_off / median_on, 2),
        "index_stats": {
            "records": stats["records"],
            "incremental_collects": stats["incremental_collects"],
            "incremental_retires": stats["incremental_retires"],
            "records_reused": stats["records_reused"],
            "records_reextracted": stats["records_reextracted"],
            "stale_fallbacks": stats["stale_fallbacks"],
            "full_rebuilds": stats["full_rebuilds"],
        },
    }


def test_fig13_reuse_index_report():
    quick = bool(os.environ.get("REUSE_BENCH_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    num_probes = QUICK_PROBES if quick else FULL_PROBES
    out_path = Path(
        os.environ.get(
            "REUSE_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_reuse.json",
        )
    )

    records = []
    for num_residents in sizes:
        record = _measure_size(num_residents, num_probes)
        records.append(record)
        print(
            f"fig13 reuse index: residents={num_residents} "
            f"index_on={record['index_on_ms_per_admission']:.2f} ms/adm "
            f"index_off={record['index_off_ms_per_admission']:.2f} ms/adm "
            f"speedup={record['speedup']:.2f}x "
            f"(stale_fallbacks={record['index_stats']['stale_fallbacks']})"
        )
        assert record["index_stats"]["stale_fallbacks"] == 0, (
            "the reuse index fell back to a full rebuild during the "
            "benchmark — its incremental path is not covering this workload"
        )

    growth = (
        records[-1]["index_on_ms_per_admission"]
        / records[0]["index_on_ms_per_admission"]
    )
    report = {
        "figure": "fig13_reuse_index",
        "quick_mode": quick,
        "planner": "sqpr",
        "seed": SEED,
        "zipf_exponent": ZIPF_EXPONENT,
        "baseline_mode": "index_off",
        "candidate_mode": "index_on",
        "max_latency_growth": MAX_LATENCY_GROWTH,
        "latency_growth": round(growth, 2),
        "sizes": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig13 reuse-index report written to {out_path}")

    assert growth <= MAX_LATENCY_GROWTH, (
        f"index-on admission latency grew {growth:.2f}x from "
        f"{records[0]['num_residents']} to {records[-1]['num_residents']} "
        f"residents; expected <= {MAX_LATENCY_GROWTH}x (the index should "
        f"make admission cost independent of the resident count)"
    )
