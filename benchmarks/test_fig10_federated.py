"""Benchmark "Figure 10": federated partitioned planning vs the global MILP.

The federated planner decomposes admission by site: a query whose base
streams colocate in one site is planned by that site's inner planner
against a site-local catalog view, so its MILP spans ``HOSTS_PER_SITE``
hosts no matter how many sites the federation has.  The global planner
solves one model over *all* hosts, and MILP solve time grows superlinearly
with model size — so partitioned planning must get relatively faster as
sites are added.

For each site count the same site-local workload (every query local to some
site, interleaved round-robin) is planned by the global ``sqpr`` planner
and by ``federated:sqpr``; the benchmark records wall-clock planning time
and admissions, and asserts at the largest size

* a planning-time speedup of at least ``MIN_PLANNING_SPEEDUP``×, and
* an equal-or-better admission count for the federated planner;

plus, at one site — where the federated planner degenerates to a single
shard over the whole catalog — *identical admission decisions and an
identical allocation fingerprint* (partitioned planning is exact on
single-site schedules, not an approximation).

The report is written to ``BENCH_federated.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set ``FED_BENCH_QUICK=1``
for the smaller CI mode and ``FED_BENCH_OUT`` to redirect the report.
No pytest-benchmark plugin needed:

    pytest benchmarks/test_fig10_federated.py -q -s
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.federated import (
    HOSTS_PER_SITE,
    QUERIES_PER_SITE,
    run_federated_scaling_experiment,
)

#: Site counts per measured size; the largest carries the assertions and
#: the single-site point carries the exactness assertions.
FULL_SIZES = [1, 2, 4, 6]
QUICK_SIZES = [1, 4]

INNER = "sqpr"
TIME_LIMIT = 0.6
SEED = 7

MIN_PLANNING_SPEEDUP = 3.0


def test_fig10_federated_scaling_report():
    quick = bool(os.environ.get("FED_BENCH_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    out_path = Path(
        os.environ.get(
            "FED_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_federated.json",
        )
    )

    raw = run_federated_scaling_experiment(
        site_counts=sizes, inner=INNER, time_limit=TIME_LIMIT, seed=SEED
    )

    records = []
    for entry in raw:
        global_run, federated_run = entry["global"], entry["federated"]
        # Both planners must leave a feasible allocation behind — including
        # the new WAN-capacity invariants on the multi-site sizes.
        assert global_run["violations"] == []
        assert federated_run["violations"] == []
        if entry["num_sites"] == 1:
            # Exactness on single-site schedules: same decisions, same
            # final allocation (content fingerprint), query for query.
            assert global_run["decisions"] == federated_run["decisions"], (
                "federated planning changed single-site admission decisions"
            )
            assert global_run["fingerprint"] == federated_run["fingerprint"], (
                "federated planning changed the single-site allocation"
            )
        records.append(
            {
                "num_sites": entry["num_sites"],
                "num_hosts": entry["num_hosts"],
                "num_queries": entry["num_queries"],
                "global": {
                    "planning_seconds": round(global_run["planning_seconds"], 3),
                    "admitted": global_run["admitted"],
                    "submitted": global_run["submitted"],
                },
                "federated": {
                    "planning_seconds": round(federated_run["planning_seconds"], 3),
                    "admitted": federated_run["admitted"],
                    "submitted": federated_run["submitted"],
                },
                "speedup": round(entry["speedup"], 2),
            }
        )
        print(
            f"fig10 federated scaling: sites={entry['num_sites']} "
            f"hosts={entry['num_hosts']} queries={entry['num_queries']} "
            f"global={global_run['planning_seconds']:.2f}s "
            f"(adm {global_run['admitted']}) "
            f"federated={federated_run['planning_seconds']:.2f}s "
            f"(adm {federated_run['admitted']}) "
            f"speedup={entry['speedup']:.2f}x"
        )

    report = {
        "figure": "fig10_federated_scaling",
        "quick_mode": quick,
        "inner_planner": INNER,
        "time_limit": TIME_LIMIT,
        "seed": SEED,
        "hosts_per_site": HOSTS_PER_SITE,
        "queries_per_site": QUERIES_PER_SITE,
        "workload": "site_local",
        "min_planning_speedup_at_largest": MIN_PLANNING_SPEEDUP,
        "sizes": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig10 federated-scaling report written to {out_path}")

    largest = records[-1]
    assert largest["speedup"] >= MIN_PLANNING_SPEEDUP, (
        f"federated planning is only {largest['speedup']}x faster than the "
        f"global MILP at {largest['num_sites']} sites; "
        f"expected >= {MIN_PLANNING_SPEEDUP}x"
    )
    assert largest["federated"]["admitted"] >= largest["global"]["admitted"], (
        "federated planning admitted fewer site-local queries than the "
        "global planner at the largest size"
    )
