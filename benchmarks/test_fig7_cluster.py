"""Benchmarks reproducing Figure 7: the cluster deployment (SQPR vs SODA).

* Fig. 7(a): satisfied queries per epoch for SQPR and the SODA-like planner.
* Fig. 7(b): CDF of per-host CPU utilisation at a low and a high load point.
* Fig. 7(c): CDF of per-host network usage at the same load points.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.metrics import series_is_non_decreasing

from benchmarks.conftest import SODA, SQPR, run_figure


@pytest.mark.benchmark(group="fig7")
def test_fig7a_cluster_efficiency(benchmark):
    result = run_figure(
        benchmark, figures.fig7a_cluster_efficiency, planners=(SQPR, SODA)
    )
    sqpr = result.series[SQPR]
    soda = result.series[SODA]
    assert series_is_non_decreasing(sqpr)
    assert series_is_non_decreasing(soda)
    # The paper: SQPR admits at least as many queries as SODA, with the gap
    # opening near saturation.  Allow a small tolerance for solver noise.
    assert sqpr[-1] >= soda[-1] - 2


@pytest.mark.benchmark(group="fig7")
def test_fig7b_cpu_distribution(benchmark):
    result = run_figure(
        benchmark, figures.fig7b_cpu_distribution, planners=(SQPR, SODA)
    )
    for key, series in result.series.items():
        if key.endswith("_cdf") and series:
            assert series[-1] == pytest.approx(1.0)
            assert series_is_non_decreasing(series)
        if key.endswith("_cpu_pct") and series:
            assert all(0.0 <= value <= 120.0 for value in series)
            assert series_is_non_decreasing(series)


@pytest.mark.benchmark(group="fig7")
def test_fig7c_network_distribution(benchmark):
    result = run_figure(
        benchmark, figures.fig7c_network_distribution, planners=(SQPR, SODA)
    )
    for key, series in result.series.items():
        if key.endswith("_cdf") and series:
            assert series[-1] == pytest.approx(1.0)
        if key.endswith("_net_mbps") and series:
            assert all(value >= 0.0 for value in series)
            assert series_is_non_decreasing(series)
