"""Benchmarks reproducing Figure 4: planning efficiency.

* Fig. 4(a): satisfied vs submitted queries for SQPR (several solver
  timeouts), the greedy-reuse heuristic and the optimistic bound.
* Fig. 4(b): the effect of batching query submissions.
* Fig. 4(c): the effect of query overlap (Zipf factor, base-stream count).

The assertions check the *shape* the paper reports (ordering and
monotonicity), not absolute numbers — the substrate is a simulator and the
sizes are scaled down (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.metrics import series_is_non_decreasing

from benchmarks.conftest import BOUND, HEURISTIC, SQPR, run_figure


@pytest.mark.benchmark(group="fig4")
def test_fig4a_planning_efficiency(benchmark):
    result = run_figure(
        benchmark,
        figures.fig4a_planning_efficiency,
        baselines=(HEURISTIC, BOUND),
    )
    sqpr_curves = {
        key: series
        for key, series in result.series.items()
        if key.startswith(f"{SQPR}_timeout")
    }
    bound = result.series[BOUND]
    heuristic = result.series[HEURISTIC]

    # Admission curves are cumulative and therefore non-decreasing.
    for series in list(sqpr_curves.values()) + [bound, heuristic]:
        assert series_is_non_decreasing(series)

    # Early on (first checkpoint) resources are abundant: every planner
    # admits essentially every submitted query.
    first = result.series["submitted"][0]
    for series in sqpr_curves.values():
        assert series[0] >= 0.8 * first

    # The best SQPR configuration should be competitive with the heuristic
    # (the paper reports SQPR strictly above it) and not collapse far below
    # the optimistic bound.
    best_sqpr = max(series[-1] for series in sqpr_curves.values())
    assert best_sqpr >= 0.85 * heuristic[-1]
    assert best_sqpr >= 0.6 * bound[-1]


@pytest.mark.benchmark(group="fig4")
def test_fig4b_batching(benchmark):
    result = run_figure(benchmark, figures.fig4b_batching, planner_name=SQPR)
    totals = {
        key: series[-1]
        for key, series in result.series.items()
        if key.startswith("batch_")
    }
    for key, series in result.series.items():
        if key.startswith("batch_"):
            assert series_is_non_decreasing(series)
    # Larger batches must not dramatically outperform small batches — the
    # paper finds batching *reduces* planning efficiency.
    assert totals["batch_5"] <= totals["batch_2"] + 2


@pytest.mark.benchmark(group="fig4")
def test_fig4c_overlap(benchmark):
    result = run_figure(benchmark, figures.fig4c_overlap, planner_name=SQPR)
    zipf = result.series["zipf_factor"]
    assert zipf[0] == 0.0 and zipf[-1] == max(zipf)
    for key, series in result.series.items():
        if key.endswith("_base_streams"):
            # More overlap (higher Zipf factor) admits at least as many
            # queries (small tolerance for solver-timeout noise).
            assert series[-1] >= series[0] - 2
    # For the same Zipf factor, the smaller stream universe (more overlap)
    # admits at least as many queries as the larger one.
    small = result.series[f"{min(40, 40)}_base_streams"]
    keys = sorted(
        (int(key.split("_")[0]) for key in result.series if key.endswith("_base_streams"))
    )
    smallest, largest = keys[0], keys[-1]
    assert (
        result.series[f"{smallest}_base_streams"][-1]
        >= result.series[f"{largest}_base_streams"][-1] - 2
    )
