"""Benchmark "Figure 9": churn throughput of the indexed allocation state.

PR 3's simulation harness re-validated the full allocation after every
arrival/departure/failure/drift event, and every hot accessor of
``Allocation`` was a full scan, so simulated churn throughput collapsed
quadratically with cluster size.  This benchmark pins the fix: it drives
the *same* churn schedules (built from the named ``CHURN_SCENARIOS``
configurations, with the arrival rate scaled to the host count) through
the heuristic planner twice per size —

* ``indexed``: the default ``validation_mode="delta"`` harness, which
  validates only what each event touched via the incrementally maintained
  indexes, and
* ``naive``: ``validation_mode="full"``, the pre-index behaviour of one
  complete O(allocation + hosts²) oracle scan per event —

and records end-to-end events/sec plus the mean per-event validation cost
of each mode.  Both runs must produce identical simulation fingerprints
(delta validation is a pure optimisation), and at the largest size the
indexed mode must validate at least ``MIN_VALIDATE_SPEEDUP``× cheaper and
sustain at least ``MIN_THROUGHPUT_SPEEDUP``× the naive events/sec.

The report is written to ``BENCH_churn.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set ``CHURN_BENCH_QUICK=1``
for the smaller CI mode and ``CHURN_BENCH_OUT`` to redirect the report.
No pytest-benchmark plugin needed:

    pytest benchmarks/test_fig9_churn_throughput.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.api import create_planner
from repro.dsps.query import DecompositionMode
from repro.sim import SimulationHarness
from repro.workloads.churn import CHURN_SCENARIOS, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

#: Host counts per measured size; the largest carries the assertions.
FULL_SIZES = [4, 8, 16, 24]
QUICK_SIZES = [8, 24]

#: Which named churn scenario the schedules are derived from.
SCENARIO_NAME = "host_flap"
PLANNER = "heuristic"
SEED = 2024

MIN_VALIDATE_SPEEDUP = 5.0
MIN_THROUGHPUT_SPEEDUP = 3.0


def _schedule_for(num_hosts: int):
    """The scaled churn scenario for one host count.

    The base-stream universe and the arrival rate grow with the cluster so
    the active query population — and with it the allocation size — scales
    along the same axis the ROADMAP north-star targets.
    """
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=num_hosts,
            num_base_streams=4 * num_hosts,
            host_cpu_capacity=6.0,
            host_bandwidth=300.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=3,
        )
    )
    config = CHURN_SCENARIOS[SCENARIO_NAME][1](SEED)
    config = replace(config, arrival_rate=0.12 * num_hosts, duration=60.0)
    return scenario, build_churn_schedule(scenario, config)


def _run(scenario, schedule, mode: str):
    planner = create_planner(PLANNER, scenario.build_catalog())
    harness = SimulationHarness(planner, validation_mode=mode)
    start = time.perf_counter()
    result = harness.run(schedule)
    elapsed = time.perf_counter() - start
    assert result.final_violations == []
    return {
        "events_per_second": len(schedule) / elapsed,
        "validate_us_per_event": 1e6 * result.validate_seconds / result.validate_calls,
        "run_seconds": elapsed,
        "fingerprint": result.fingerprint(),
    }


def test_fig9_churn_throughput_report():
    quick = bool(os.environ.get("CHURN_BENCH_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    out_path = Path(
        os.environ.get(
            "CHURN_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_churn.json",
        )
    )

    records = []
    for num_hosts in sizes:
        scenario, schedule = _schedule_for(num_hosts)
        indexed = _run(scenario, schedule, "delta")
        naive = _run(scenario, schedule, "full")

        # Delta validation must be a pure optimisation: identical planner
        # decisions and counters, event for event.
        assert indexed.pop("fingerprint") == naive.pop("fingerprint"), (
            f"validation mode changed simulation results at {num_hosts} hosts"
        )

        validate_speedup = (
            naive["validate_us_per_event"] / indexed["validate_us_per_event"]
        )
        throughput_speedup = (
            indexed["events_per_second"] / naive["events_per_second"]
        )
        records.append(
            {
                "num_hosts": num_hosts,
                "num_events": len(schedule),
                "indexed": {k: round(v, 3) for k, v in indexed.items()},
                "naive": {k: round(v, 3) for k, v in naive.items()},
                "validate_speedup": round(validate_speedup, 2),
                "throughput_speedup": round(throughput_speedup, 2),
            }
        )
        print(
            f"fig9 churn throughput: hosts={num_hosts} events={len(schedule)} "
            f"indexed={indexed['events_per_second']:.0f} ev/s "
            f"({indexed['validate_us_per_event']:.0f} us/ev) "
            f"naive={naive['events_per_second']:.0f} ev/s "
            f"({naive['validate_us_per_event']:.0f} us/ev) "
            f"validate={validate_speedup:.1f}x throughput={throughput_speedup:.2f}x"
        )

    report = {
        "figure": "fig9_churn_throughput",
        "quick_mode": quick,
        "scenario": SCENARIO_NAME,
        "planner": PLANNER,
        "seed": SEED,
        "baseline_mode": "full",
        "candidate_mode": "delta",
        "min_validate_speedup_at_largest": MIN_VALIDATE_SPEEDUP,
        "min_throughput_speedup_at_largest": MIN_THROUGHPUT_SPEEDUP,
        "sizes": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig9 churn-throughput report written to {out_path}")

    largest = records[-1]
    assert largest["validate_speedup"] >= MIN_VALIDATE_SPEEDUP, (
        f"indexed validation is only {largest['validate_speedup']}x cheaper "
        f"than the naive full scan at {largest['num_hosts']} hosts; "
        f"expected >= {MIN_VALIDATE_SPEEDUP}x"
    )
    assert largest["throughput_speedup"] >= MIN_THROUGHPUT_SPEEDUP, (
        f"indexed churn throughput is only {largest['throughput_speedup']}x "
        f"the naive baseline at {largest['num_hosts']} hosts; "
        f"expected >= {MIN_THROUGHPUT_SPEEDUP}x"
    )
