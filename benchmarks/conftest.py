"""Shared helpers for the benchmark harness.

Every benchmark reproduces one figure of the paper.  The figure drivers are
deterministic but expensive (they run full admission experiments), so each
one is executed exactly once per benchmark session via
``benchmark.pedantic(..., rounds=1, iterations=1)`` and its series are
printed so that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the reproduced numbers.
"""

from __future__ import annotations

import pytest


def run_figure(benchmark, figure_fn, *args, **kwargs):
    """Run ``figure_fn`` once under pytest-benchmark and print its series."""
    result = benchmark.pedantic(figure_fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result
