"""Shared helpers for the benchmark harness.

Every benchmark reproduces one figure of the paper.  The figure drivers are
deterministic but expensive (they run full admission experiments), so each
one is executed exactly once per benchmark session via
``benchmark.pedantic(..., rounds=1, iterations=1)`` and its series are
printed so that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the reproduced numbers.
"""

from __future__ import annotations

import pytest

from repro.api import get_planner_class

# The planner names the benchmarks drive, tied to the planner registry: the
# figure drivers key their series by the names as passed, so these constants
# are the single place connecting benchmark assertions to registry names.
# ``get_planner_class`` raises early (at collection) if a name disappears
# from the registry instead of failing deep inside an 8-minute run.
SQPR = "sqpr"
HEURISTIC = "heuristic"
SODA = "soda"
BOUND = "optimistic_bound"  # registered alias of "optimistic"
for _name in (SQPR, HEURISTIC, SODA, BOUND):
    get_planner_class(_name)


def run_figure(benchmark, figure_fn, *args, **kwargs):
    """Run ``figure_fn`` once under pytest-benchmark and print its series."""
    result = benchmark.pedantic(figure_fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result
