"""Benchmarks reproducing Figure 5: scalability of query planning.

* Fig. 5(a): satisfiable queries vs number of hosts.
* Fig. 5(b): satisfiable queries vs per-host resources (CPU cores, 10×
  network capacity).
* Fig. 5(c): satisfiable queries vs query complexity (2-way .. 5-way joins).
"""

from __future__ import annotations

import pytest

from repro.experiments import figures

from benchmarks.conftest import BOUND, SQPR, run_figure


@pytest.mark.benchmark(group="fig5")
def test_fig5a_scalability_hosts(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5a_scalability_hosts,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    bound = result.series[BOUND]
    # More hosts -> at least as many satisfiable queries (small tolerance).
    assert sqpr[-1] >= sqpr[0] - 2
    assert bound[-1] >= bound[0]
    # The optimistic bound stays an upper envelope (up to solver noise).
    for s, b in zip(sqpr, bound):
        assert s <= b + 2


@pytest.mark.benchmark(group="fig5")
def test_fig5b_scalability_resources(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5b_scalability_resources,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # Richer hosts admit at least as many queries; with 8x CPU the workload
    # should be fully admitted or close to it.
    assert sqpr[-1] >= sqpr[0]
    assert sqpr[-1] >= 0.8 * max(result.series[BOUND])


@pytest.mark.benchmark(group="fig5")
def test_fig5c_query_complexity(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5c_query_complexity,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # More complex queries consume more resources, so the number of
    # satisfiable queries must not increase with arity (small tolerance).
    assert sqpr[-1] <= sqpr[0] + 2
    # SQPR stays within a constant factor of the optimistic bound across
    # arities (the paper: efficiency roughly independent of complexity).
    for s, b in zip(sqpr, result.series[BOUND]):
        if b > 0:
            assert s >= 0.5 * b - 2
