"""Benchmarks reproducing Figure 5: scalability of query planning.

* Fig. 5(a): satisfiable queries vs number of hosts.
* Fig. 5(b): satisfiable queries vs per-host resources (CPU cores, 10×
  network capacity).
* Fig. 5(c): satisfiable queries vs query complexity (2-way .. 5-way joins).

``test_fig5_planning_time_report`` additionally tracks *planning time* per
model size across PRs: it times the SQPR LP relaxation on growing fig. 5
style models with the dense reference tableau and the sparse revised
simplex, writes ``BENCH_fig5.json`` at the repository root (format
documented in ``docs/benchmarks.md``), and asserts the sparse engine is at
least 3x faster at the largest configured size.  Set ``FIG5_QUICK=1`` for
the small-size CI mode and ``FIG5_BENCH_OUT`` to redirect the report.  This
test needs no pytest-benchmark plugin:

    pytest benchmarks/test_fig5_scalability.py -k planning_time -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.model_builder import build_model
from repro.core.reduction import compute_scope
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.experiments import figures
from repro.milp.lp_backend import solve_lp
from repro.milp.standard_form import to_standard_form

from benchmarks.conftest import BOUND, SQPR, run_figure


@pytest.mark.benchmark(group="fig5")
def test_fig5a_scalability_hosts(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5a_scalability_hosts,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    bound = result.series[BOUND]
    # More hosts -> at least as many satisfiable queries (small tolerance).
    assert sqpr[-1] >= sqpr[0] - 2
    assert bound[-1] >= bound[0]
    # The optimistic bound stays an upper envelope (up to solver noise).
    for s, b in zip(sqpr, bound):
        assert s <= b + 2


@pytest.mark.benchmark(group="fig5")
def test_fig5b_scalability_resources(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5b_scalability_resources,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # Richer hosts admit at least as many queries; with 8x CPU the workload
    # should be fully admitted or close to it.
    assert sqpr[-1] >= sqpr[0]
    assert sqpr[-1] >= 0.8 * max(result.series[BOUND])


# --------------------------------------------------------------------------
# Planning-time trajectory: dense reference tableau vs sparse revised simplex,
# plus a "re-plan after perturbation" column: after the cold solve the
# capacity rows are degraded (a host losing resources) and the perturbed LP
# is re-solved cold vs warm from the incumbent basis (dual simplex resume).

#: (num_hosts, join_arity, dense_oracle) per measured size.  The largest
#: entry with ``dense_oracle=True`` carries the >= 3x dense-vs-sparse
#: assertion; the largest entry overall carries the >= 3x warm-replan
#: assertion.  Sizes beyond the dense tableau's practical range set
#: ``dense_oracle=False`` and skip the dense timing.  Quick mode keeps CI
#: runs under ~10 s.
FULL_SIZES = [(4, 3, True), (6, 3, True), (8, 4, True), (12, 4, False)]
QUICK_SIZES = [(4, 3, True), (6, 3, True)]

MIN_SPEEDUP_AT_LARGEST = 3.0
MIN_REPLAN_SPEEDUP_AT_LARGEST = 3.0
#: Quick mode measures tiny LPs where fixed per-solve overhead dominates, so
#: the warm-replan ratio gate is relaxed there (full mode keeps the 3x gate).
MIN_REPLAN_SPEEDUP_QUICK = 1.5

#: Capacity rows (large RHS) are scaled by this factor for the perturbation
#: re-solve; small structural RHS entries (the <= 1 demand rows) are kept.
PERTURB_CAPACITY_SCALE = 0.9
PERTURB_RHS_CUTOFF = 2.0


def _fig5_planning_model(num_hosts: int, arity: int):
    """The reduced SQPR MILP for one ``arity``-way join on ``num_hosts`` hosts."""
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
    )
    for i in range(num_hosts):
        catalog.add_host(cpu_capacity=10.0, bandwidth_capacity=500.0, name=f"h{i}")
    for i in range(arity):
        catalog.add_base_stream(f"b{i}", 10.0, i % num_hosts)
    query = catalog.register_query(
        QueryWorkloadItem(base_names=tuple(f"b{i}" for i in range(arity)))
    )
    allocation = Allocation(catalog)
    scope = compute_scope(catalog, allocation, [query])
    built = build_model(
        catalog, allocation, scope, ObjectiveWeights.paper_default(catalog)
    )
    return to_standard_form(built.model)


def _timed_lp(form, engine: str, b_ub=None, warm_basis=None, method="auto"):
    start = time.perf_counter()
    solution = solve_lp(
        form.c,
        form.a_ub,
        form.b_ub if b_ub is None else b_ub,
        form.a_eq,
        form.b_eq,
        form.lower,
        form.upper,
        engine=engine,
        warm_basis=warm_basis,
        method=method,
    )
    return solution, time.perf_counter() - start


def _perturbed_rhs(form):
    """Degrade the capacity rows, as a host losing resources would.

    Only large right-hand sides (CPU, link, bandwidth budgets) are scaled;
    the structural ``<= 1`` demand rows are left alone so the perturbed LP
    keeps the same admission semantics.
    """
    b_ub = np.array(form.b_ub, dtype=float, copy=True)
    capacity_rows = b_ub > PERTURB_RHS_CUTOFF
    b_ub[capacity_rows] *= PERTURB_CAPACITY_SCALE
    return b_ub


def _admission_mass(form, x):
    """Per-stream admission mass: sum of the ``d[h,s]`` values per stream.

    The ``d`` variables are the paper's admission decisions; comparing their
    per-stream totals (rather than raw vectors) keeps the check stable under
    degenerate alternate optima that merely move a plan between hosts.
    """
    mass = {}
    for i, var in enumerate(form.variables):
        if var.name.startswith("d["):
            stream = var.name[var.name.index(",") + 1 : -1]
            mass[stream] = mass.get(stream, 0.0) + float(x[i])
    return {stream: round(total, 6) for stream, total in mass.items()}


def test_fig5_planning_time_report():
    quick = bool(os.environ.get("FIG5_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    out_path = Path(
        os.environ.get(
            "FIG5_BENCH_OUT", Path(__file__).resolve().parent.parent / "BENCH_fig5.json"
        )
    )

    records = []
    largest_oracle_index = None
    for num_hosts, arity, dense_oracle in sizes:
        form = _fig5_planning_model(num_hosts, arity)
        sparse_sol, sparse_seconds = _timed_lp(form, "simplex")
        warm_sol, warm_seconds = _timed_lp(form, "simplex", warm_basis=sparse_sol.basis)
        assert sparse_sol.is_optimal and warm_sol.is_optimal
        scale = max(1.0, abs(sparse_sol.objective))
        assert abs(warm_sol.objective - sparse_sol.objective) <= 1e-5 * scale

        dense_seconds = None
        speedup = None
        if dense_oracle:
            dense_sol, dense_seconds = _timed_lp(form, "dense")
            assert dense_sol.is_optimal
            assert abs(sparse_sol.objective - dense_sol.objective) <= 1e-5 * scale
            speedup = round(dense_seconds / max(1e-9, sparse_seconds), 2)
            largest_oracle_index = len(records)

        # Re-plan after perturbation: degrade the capacity rows and re-solve
        # cold (fresh phase-1 primal) vs warm (dual simplex resuming the
        # incumbent basis).  Both must agree exactly on what is admitted.
        b_ub_pert = _perturbed_rhs(form)
        cold_replan_sol, cold_replan_seconds = _timed_lp(form, "simplex", b_ub=b_ub_pert)
        warm_replan_sol, warm_replan_seconds = _timed_lp(
            form, "simplex", b_ub=b_ub_pert, warm_basis=sparse_sol.basis
        )
        assert cold_replan_sol.is_optimal and warm_replan_sol.is_optimal
        replan_scale = max(1.0, abs(cold_replan_sol.objective))
        assert (
            abs(warm_replan_sol.objective - cold_replan_sol.objective)
            <= 1e-5 * replan_scale
        )
        assert warm_replan_sol.warm_status == "dual_resume", (
            f"warm re-plan fell back to {warm_replan_sol.warm_status!r} at "
            f"hosts={num_hosts} arity={arity}"
        )
        cold_mass = _admission_mass(form, cold_replan_sol.x)
        warm_mass = _admission_mass(form, warm_replan_sol.x)
        assert warm_mass == cold_mass, (
            f"warm and cold re-plans disagree on admission decisions: "
            f"{warm_mass} != {cold_mass}"
        )

        records.append(
            {
                "num_hosts": num_hosts,
                "join_arity": arity,
                "num_variables": form.num_variables,
                "num_constraints": form.a_ub.shape[0] + form.a_eq.shape[0],
                "nnz": form.a_ub.nnz + form.a_eq.nnz,
                "dense_oracle": dense_oracle,
                "dense_seconds": None if dense_seconds is None else round(dense_seconds, 6),
                "sparse_seconds": round(sparse_seconds, 6),
                "sparse_warm_seconds": round(warm_seconds, 6),
                "speedup": speedup,
                "replan_cold_seconds": round(cold_replan_seconds, 6),
                "replan_warm_seconds": round(warm_replan_seconds, 6),
                "replan_speedup": round(
                    cold_replan_seconds / max(1e-9, warm_replan_seconds), 2
                ),
                "replan_warm_status": warm_replan_sol.warm_status,
                "replan_dual_iterations": (
                    warm_replan_sol.counters.dual_iterations
                    if warm_replan_sol.counters is not None
                    else None
                ),
                "objective": sparse_sol.objective,
                "replan_objective": cold_replan_sol.objective,
            }
        )
        print(
            f"fig5 planning time: hosts={num_hosts} arity={arity} "
            f"vars={records[-1]['num_variables']} "
            f"dense={'-' if dense_seconds is None else f'{dense_seconds:.3f}s'} "
            f"sparse={sparse_seconds:.3f}s warm={warm_seconds:.3f}s "
            f"speedup={records[-1]['speedup']}x "
            f"replan cold={cold_replan_seconds:.3f}s "
            f"warm={warm_replan_seconds:.3f}s "
            f"({records[-1]['replan_speedup']}x, "
            f"{records[-1]['replan_warm_status']})"
        )

    report = {
        "figure": "fig5_planning_time",
        "quick_mode": quick,
        "baseline_engine": "dense",
        "candidate_engine": "simplex",
        "min_speedup_at_largest": MIN_SPEEDUP_AT_LARGEST,
        "min_replan_speedup_at_largest": (
            MIN_REPLAN_SPEEDUP_QUICK if quick else MIN_REPLAN_SPEEDUP_AT_LARGEST
        ),
        "perturbation": {
            "capacity_scale": PERTURB_CAPACITY_SCALE,
            "rhs_cutoff": PERTURB_RHS_CUTOFF,
        },
        "sizes": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig5 planning-time report written to {out_path}")

    assert largest_oracle_index is not None
    oracle_record = records[largest_oracle_index]
    assert oracle_record["speedup"] >= MIN_SPEEDUP_AT_LARGEST, (
        f"sparse simplex is only {oracle_record['speedup']}x faster than the "
        f"dense tableau at the largest oracle size; expected >= "
        f"{MIN_SPEEDUP_AT_LARGEST}x"
    )
    replan_gate = MIN_REPLAN_SPEEDUP_QUICK if quick else MIN_REPLAN_SPEEDUP_AT_LARGEST
    assert records[-1]["replan_speedup"] >= replan_gate, (
        f"warm dual-simplex re-plan is only {records[-1]['replan_speedup']}x "
        f"faster than a cold re-solve at the largest size; expected >= "
        f"{replan_gate}x"
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5c_query_complexity(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5c_query_complexity,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # More complex queries consume more resources, so the number of
    # satisfiable queries must not increase with arity (small tolerance).
    assert sqpr[-1] <= sqpr[0] + 2
    # SQPR stays within a constant factor of the optimistic bound across
    # arities (the paper: efficiency roughly independent of complexity).
    for s, b in zip(sqpr, result.series[BOUND]):
        if b > 0:
            assert s >= 0.5 * b - 2
