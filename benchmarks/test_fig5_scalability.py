"""Benchmarks reproducing Figure 5: scalability of query planning.

* Fig. 5(a): satisfiable queries vs number of hosts.
* Fig. 5(b): satisfiable queries vs per-host resources (CPU cores, 10×
  network capacity).
* Fig. 5(c): satisfiable queries vs query complexity (2-way .. 5-way joins).

``test_fig5_planning_time_report`` additionally tracks *planning time* per
model size across PRs: it times the SQPR LP relaxation on growing fig. 5
style models with the dense reference tableau and the sparse revised
simplex, writes ``BENCH_fig5.json`` at the repository root (format
documented in ``docs/benchmarks.md``), and asserts the sparse engine is at
least 3x faster at the largest configured size.  Set ``FIG5_QUICK=1`` for
the small-size CI mode and ``FIG5_BENCH_OUT`` to redirect the report.  This
test needs no pytest-benchmark plugin:

    pytest benchmarks/test_fig5_scalability.py -k planning_time -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.model_builder import build_model
from repro.core.reduction import compute_scope
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.experiments import figures
from repro.milp.lp_backend import solve_lp
from repro.milp.standard_form import to_standard_form

from benchmarks.conftest import BOUND, SQPR, run_figure


@pytest.mark.benchmark(group="fig5")
def test_fig5a_scalability_hosts(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5a_scalability_hosts,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    bound = result.series[BOUND]
    # More hosts -> at least as many satisfiable queries (small tolerance).
    assert sqpr[-1] >= sqpr[0] - 2
    assert bound[-1] >= bound[0]
    # The optimistic bound stays an upper envelope (up to solver noise).
    for s, b in zip(sqpr, bound):
        assert s <= b + 2


@pytest.mark.benchmark(group="fig5")
def test_fig5b_scalability_resources(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5b_scalability_resources,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # Richer hosts admit at least as many queries; with 8x CPU the workload
    # should be fully admitted or close to it.
    assert sqpr[-1] >= sqpr[0]
    assert sqpr[-1] >= 0.8 * max(result.series[BOUND])


# --------------------------------------------------------------------------
# Planning-time trajectory: dense reference tableau vs sparse revised simplex.

#: (num_hosts, join_arity) per measured size; the largest entry carries the
#: >= 3x speedup assertion.  Quick mode keeps CI runs under ~10 s.
FULL_SIZES = [(4, 3), (6, 3), (8, 4)]
QUICK_SIZES = [(4, 3), (6, 3)]

MIN_SPEEDUP_AT_LARGEST = 3.0


def _fig5_planning_model(num_hosts: int, arity: int):
    """The reduced SQPR MILP for one ``arity``-way join on ``num_hosts`` hosts."""
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
    )
    for i in range(num_hosts):
        catalog.add_host(cpu_capacity=10.0, bandwidth_capacity=500.0, name=f"h{i}")
    for i in range(arity):
        catalog.add_base_stream(f"b{i}", 10.0, i % num_hosts)
    query = catalog.register_query(
        QueryWorkloadItem(base_names=tuple(f"b{i}" for i in range(arity)))
    )
    allocation = Allocation(catalog)
    scope = compute_scope(catalog, allocation, [query])
    built = build_model(
        catalog, allocation, scope, ObjectiveWeights.paper_default(catalog)
    )
    return to_standard_form(built.model)


def _timed_lp(form, engine: str, warm_basis=None):
    start = time.perf_counter()
    solution = solve_lp(
        form.c,
        form.a_ub,
        form.b_ub,
        form.a_eq,
        form.b_eq,
        form.lower,
        form.upper,
        engine=engine,
        warm_basis=warm_basis,
    )
    return solution, time.perf_counter() - start


def test_fig5_planning_time_report():
    quick = bool(os.environ.get("FIG5_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    out_path = Path(
        os.environ.get(
            "FIG5_BENCH_OUT", Path(__file__).resolve().parent.parent / "BENCH_fig5.json"
        )
    )

    records = []
    for num_hosts, arity in sizes:
        form = _fig5_planning_model(num_hosts, arity)
        dense_sol, dense_seconds = _timed_lp(form, "dense")
        sparse_sol, sparse_seconds = _timed_lp(form, "simplex")
        warm_sol, warm_seconds = _timed_lp(form, "simplex", warm_basis=sparse_sol.basis)

        assert dense_sol.is_optimal and sparse_sol.is_optimal and warm_sol.is_optimal
        scale = max(1.0, abs(dense_sol.objective))
        assert abs(sparse_sol.objective - dense_sol.objective) <= 1e-5 * scale
        assert abs(warm_sol.objective - dense_sol.objective) <= 1e-5 * scale

        records.append(
            {
                "num_hosts": num_hosts,
                "join_arity": arity,
                "num_variables": form.num_variables,
                "num_constraints": form.a_ub.shape[0] + form.a_eq.shape[0],
                "nnz": form.a_ub.nnz + form.a_eq.nnz,
                "dense_seconds": round(dense_seconds, 6),
                "sparse_seconds": round(sparse_seconds, 6),
                "sparse_warm_seconds": round(warm_seconds, 6),
                "speedup": round(dense_seconds / max(1e-9, sparse_seconds), 2),
                "objective": dense_sol.objective,
            }
        )
        print(
            f"fig5 planning time: hosts={num_hosts} arity={arity} "
            f"vars={records[-1]['num_variables']} "
            f"dense={dense_seconds:.3f}s sparse={sparse_seconds:.3f}s "
            f"warm={warm_seconds:.3f}s speedup={records[-1]['speedup']}x"
        )

    report = {
        "figure": "fig5_planning_time",
        "quick_mode": quick,
        "baseline_engine": "dense",
        "candidate_engine": "simplex",
        "min_speedup_at_largest": MIN_SPEEDUP_AT_LARGEST,
        "sizes": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig5 planning-time report written to {out_path}")

    assert records[-1]["speedup"] >= MIN_SPEEDUP_AT_LARGEST, (
        f"sparse simplex is only {records[-1]['speedup']}x faster than the "
        f"dense tableau at the largest size; expected >= {MIN_SPEEDUP_AT_LARGEST}x"
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5c_query_complexity(benchmark):
    result = run_figure(
        benchmark,
        figures.fig5c_query_complexity,
        planner_name=SQPR,
        bound_name=BOUND,
    )
    sqpr = result.series[SQPR]
    # More complex queries consume more resources, so the number of
    # satisfiable queries must not increase with arity (small tolerance).
    assert sqpr[-1] <= sqpr[0] + 2
    # SQPR stays within a constant factor of the optimistic bound across
    # arities (the paper: efficiency roughly independent of complexity).
    for s, b in zip(sqpr, result.series[BOUND]):
        if b > 0:
            assert s >= 0.5 * b - 2
