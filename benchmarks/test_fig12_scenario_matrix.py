"""Benchmark "Figure 12": scenario-matrix sweep throughput and parity.

Drives the quick-scale scenario matrix through the sweep runner twice —
serial (``workers=1``) and fanned out over the shared worker pool
(``workers=4``) — and records wall-clock, cells/sec and the per-mode
elapsed time.  The load-bearing assertion is *parity*, not speedup: the
two sweeps must produce identical per-cell fingerprints, pinning the
runner's contract that concurrency changes wall-clock and never results.
(Planner cells are pure Python under the GIL, so wall-clock gains are
workload-dependent; the report records the ratio without asserting it.)

The report is written to ``BENCH_matrix.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set ``MATRIX_BENCH_QUICK=1``
for the smaller CI mode and ``MATRIX_BENCH_OUT`` to redirect the report.
No pytest-benchmark plugin needed:

    pytest benchmarks/test_fig12_scenario_matrix.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.matrix import run_matrix
from repro.scenarios import BASELINE_SCENARIO, MATRIX_REGIMES

#: Full mode sweeps every regime; quick mode a representative subset.
FULL_SCENARIOS = list(MATRIX_REGIMES)
QUICK_SCENARIOS = [
    BASELINE_SCENARIO,
    "flash_crowd",
    "flash_crowd+site_partition",
    "adversarial_fragmentation",
]
FULL_PLANNERS = ["heuristic", "optimistic", "soda", "sqpr"]
QUICK_PLANNERS = ["heuristic", "optimistic"]
PARALLEL_WORKERS = 4


def _sweep(scenarios, planners, workers):
    start = time.perf_counter()
    sweep = run_matrix(
        scenarios=scenarios, planners=planners, workers=workers
    )
    elapsed = time.perf_counter() - start
    assert not sweep.violations()
    return sweep, elapsed


def test_fig12_scenario_matrix_report():
    quick = bool(os.environ.get("MATRIX_BENCH_QUICK"))
    scenarios = QUICK_SCENARIOS if quick else FULL_SCENARIOS
    planners = QUICK_PLANNERS if quick else FULL_PLANNERS
    out_path = Path(
        os.environ.get(
            "MATRIX_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_matrix.json",
        )
    )

    serial, serial_seconds = _sweep(scenarios, planners, workers=1)
    parallel, parallel_seconds = _sweep(
        scenarios, planners, workers=PARALLEL_WORKERS
    )

    # The contract under measurement: worker fan-out is result-invariant.
    assert parallel.fingerprints() == serial.fingerprints(), (
        "parallel sweep diverged from the serial sweep"
    )

    num_cells = len(serial.artifacts)
    speedup = serial_seconds / parallel_seconds
    report = {
        "figure": "fig12_scenario_matrix",
        "quick_mode": quick,
        "scale": "quick",
        "scenarios": scenarios,
        "planners": planners,
        "num_cells": num_cells,
        "parallel_workers": PARALLEL_WORKERS,
        "serial": {
            "run_seconds": round(serial_seconds, 3),
            "cells_per_second": round(num_cells / serial_seconds, 3),
        },
        "parallel": {
            "run_seconds": round(parallel_seconds, 3),
            "cells_per_second": round(num_cells / parallel_seconds, 3),
        },
        "speedup": round(speedup, 2),
        "fingerprints_identical": True,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"fig12 scenario matrix: {num_cells} cells "
        f"serial={serial_seconds:.1f}s "
        f"parallel(x{PARALLEL_WORKERS})={parallel_seconds:.1f}s "
        f"speedup={speedup:.2f}x (parity asserted)"
    )
    print(f"fig12 scenario-matrix report written to {out_path}")
