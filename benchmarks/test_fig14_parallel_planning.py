"""Benchmark "Figure 14": true multicore planning via the process backend.

Two workloads, three execution backends each:

* **federated batch** — a 6-site federated catalog planned by
  ``federated:sqpr`` with its per-site shard groups fanned out serially,
  on the GIL-bound thread pool, and on the persistent fork-worker
  process pool (warm shard replicas, delta-synced);
* **matrix sweep** — the quick-scale scenario matrix executed with
  per-cell process isolation vs threads vs serial.

For every backend and worker count the report records wall-clock and —
the load-bearing assertion on *every* machine — that admission
decisions and allocation fingerprints are bit-identical to the serial
reference.  The ≥``MIN_PROCESS_SPEEDUP``× process-over-serial speedup at
4 workers is asserted only when the machine actually has ≥ 4 CPU cores
(the pool cannot beat the GIL on a single-core box); ``cpu_count`` is
recorded in the artifact so CI readers can interpret the ratios.

The report is written to ``BENCH_parallel.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set
``PARALLEL_BENCH_QUICK=1`` for the smaller CI mode and
``PARALLEL_BENCH_OUT`` to redirect the report.  No pytest-benchmark
plugin needed:

    pytest benchmarks/test_fig14_parallel_planning.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import create_planner
from repro.experiments.federated import federated_scenario, site_local_workload
from repro.experiments.matrix import run_matrix
from repro.utils.pool import process_backend_available

NUM_SITES = 6
QUERIES_PER_SITE_FULL = 5
QUERIES_PER_SITE_QUICK = 3
SEED = 7

FULL_WORKER_COUNTS = [1, 2, 4]
QUICK_WORKER_COUNTS = [2]

MATRIX_SCENARIOS = ["baseline", "flash_crowd", "reuse_heavy"]
MATRIX_PLANNERS = ["heuristic", "sqpr"]

#: Required process-over-serial speedup at the widest pool — asserted
#: only on machines with >= MIN_CORES_FOR_SPEEDUP cores.
MIN_PROCESS_SPEEDUP = 2.0
MIN_CORES_FOR_SPEEDUP = 4


def _federated_run(backend, workers, queries_per_site):
    scenario = federated_scenario(NUM_SITES, seed=SEED)
    catalog = scenario.build_catalog()
    workload = site_local_workload(
        scenario, queries_per_site=queries_per_site
    )
    planner = create_planner(
        "federated:sqpr", catalog, workers=workers, backend=backend
    )
    try:
        if backend == "process":
            # Fork the pool before the clock starts: pool creation is a
            # one-time cost a long-running service amortises away, while
            # the per-batch delta-sync protocol stays inside the timing.
            planner._ensure_pool()
        start = time.perf_counter()
        outcomes = planner.submit_batch(workload)
        elapsed = time.perf_counter() - start
        decisions = tuple(
            (o.query.query_id, o.admitted) for o in outcomes
        )
        fingerprint = planner.allocation.fingerprint()
        stats = planner.worker_stats()
    finally:
        planner.close()
    return {
        "elapsed": elapsed,
        "decisions": decisions,
        "fingerprint": fingerprint,
        "admitted": sum(1 for _, admitted in decisions if admitted),
        "worker_stats": stats,
    }


def _matrix_run(backend, workers):
    start = time.perf_counter()
    sweep = run_matrix(
        scenarios=MATRIX_SCENARIOS,
        planners=MATRIX_PLANNERS,
        scales=["quick"],
        workers=workers,
        backend=backend,
    )
    elapsed = time.perf_counter() - start
    assert not sweep.violations()
    return {
        "elapsed": elapsed,
        "fingerprints": sweep.fingerprints(),
        "num_cells": len(sweep.artifacts),
    }


@pytest.mark.skipif(
    not process_backend_available(), reason="process backend needs fork"
)
def test_fig14_parallel_planning_report():
    quick = bool(os.environ.get("PARALLEL_BENCH_QUICK"))
    worker_counts = QUICK_WORKER_COUNTS if quick else FULL_WORKER_COUNTS
    queries_per_site = (
        QUERIES_PER_SITE_QUICK if quick else QUERIES_PER_SITE_FULL
    )
    out_path = Path(
        os.environ.get(
            "PARALLEL_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
        )
    )
    cpu_count = os.cpu_count() or 1

    # ------------------------------------------------------ federated batch
    serial = _federated_run("serial", None, queries_per_site)
    federated = {
        "serial": {
            "run_seconds": round(serial["elapsed"], 3),
            "admitted": serial["admitted"],
        }
    }
    for backend in ("thread", "process"):
        federated[backend] = {}
        for workers in worker_counts:
            run = _federated_run(backend, workers, queries_per_site)
            # The tentpole contract, on every machine: backends change
            # wall-clock only, never decisions or the final allocation.
            assert run["decisions"] == serial["decisions"], (
                f"{backend} x{workers} diverged from serial decisions"
            )
            assert run["fingerprint"] == serial["fingerprint"], (
                f"{backend} x{workers} diverged from serial fingerprint"
            )
            entry = {
                "run_seconds": round(run["elapsed"], 3),
                "speedup_vs_serial": round(
                    serial["elapsed"] / run["elapsed"], 2
                ),
            }
            if backend == "process":
                entry["worker_stats"] = run["worker_stats"]["workers"]
            federated[backend][f"workers_{workers}"] = entry

    # -------------------------------------------------------- matrix sweep
    matrix_serial = _matrix_run("serial", 1)
    matrix = {
        "serial": {"run_seconds": round(matrix_serial["elapsed"], 3)}
    }
    widest = max(worker_counts)
    for backend in ("thread", "process"):
        run = _matrix_run(backend, widest)
        assert run["fingerprints"] == matrix_serial["fingerprints"], (
            f"matrix {backend} sweep diverged from serial"
        )
        matrix[backend] = {
            "workers": widest,
            "run_seconds": round(run["elapsed"], 3),
            "speedup_vs_serial": round(
                matrix_serial["elapsed"] / run["elapsed"], 2
            ),
        }
    matrix["num_cells"] = matrix_serial["num_cells"]

    # ------------------------------------------------------------- speedup
    widest_key = f"workers_{widest}"
    process_speedup = federated["process"][widest_key]["speedup_vs_serial"]
    speedup_asserted = (
        cpu_count >= MIN_CORES_FOR_SPEEDUP and widest >= MIN_CORES_FOR_SPEEDUP
    )
    if speedup_asserted:
        assert process_speedup >= MIN_PROCESS_SPEEDUP, (
            f"process backend at {widest} workers on {cpu_count} cores: "
            f"{process_speedup}x < required {MIN_PROCESS_SPEEDUP}x"
        )

    report = {
        "figure": "fig14_parallel_planning",
        "quick_mode": quick,
        "cpu_count": cpu_count,
        "num_sites": NUM_SITES,
        "queries_per_site": queries_per_site,
        "worker_counts": worker_counts,
        "federated_batch": federated,
        "matrix_sweep": matrix,
        "decisions_identical": True,
        "fingerprints_identical": True,
        "speedup_asserted": speedup_asserted,
        "min_process_speedup": MIN_PROCESS_SPEEDUP,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"fig14 parallel planning: cpus={cpu_count} "
        f"process x{widest} speedup={process_speedup}x "
        f"(speedup {'asserted' if speedup_asserted else 'recorded only'}; "
        "decision/fingerprint parity asserted)"
    )
    print(f"fig14 parallel-planning report written to {out_path}")
