"""Benchmark "Figure 11": sustained admission throughput under Poisson load.

The admission service turns the planner into a long-running endpoint:
co-arriving queries coalesce into batch admissions (one joint MILP per
batch instead of one per query), the federated planner runs its per-site
shards on a worker pool, and deploys overlap the next solve in a
two-stage pipeline.  The pre-service baseline is sequential one-shot
submission — each arrival blocks on its own ``planner.submit`` and
engine hand-off while later arrivals queue up behind the solver.

Both paths replay the *identical* seeded Poisson arrival trace over the
same federated scenario at increasing offered rates, and report
sustained throughput (queries decided and deployed per wall-clock
second) plus p50/p99 admission latency measured from each query's
scheduled arrival.  At the largest load point the benchmark asserts

* a sustained-throughput speedup of at least ``MIN_THROUGHPUT_SPEEDUP``×,
* an equal-or-better admission count for the service (batch-level
  fallback keeps decisions from regressing vs. sequential), and
* a recorded (positive) p99 admission latency for both paths.

The report is written to ``BENCH_service.json`` at the repository root
(format documented in ``docs/benchmarks.md``).  Set
``SERVICE_BENCH_QUICK=1`` for the smaller CI mode — it runs only the
largest (asserted) load point over the same pinned arrival trace — and
``SERVICE_BENCH_OUT`` to redirect the report.  No pytest-benchmark
plugin needed:

    pytest benchmarks/test_fig11_admission_service.py -q -s
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.service_load import run_service_load_experiment

#: Offered Poisson rates and per-site workload sizes.  The largest point
#: (the saturated one) carries the assertions; its arrival-trace seed is
#: pinned so quick and full modes measure the identical trace.
FULL_LOAD_POINTS = [
    {"rate": 5.0, "queries_per_site": 10, "seed": 7},
    {"rate": 15.0, "queries_per_site": 25, "seed": 8},
    {"rate": 60.0, "queries_per_site": 40, "seed": 7},
]
QUICK_LOAD_POINTS = FULL_LOAD_POINTS[-1:]

NUM_SITES = 4
TIME_LIMIT = 0.6
SEED = 7

#: Service configuration under test: parallel federated shards plus
#: batched, pipelined admission with a flat per-batch solver budget.
#: The coalescing window exceeds the batch fill time at the saturating
#: rate (40 arrivals at 60 q/s ≈ 0.7 s), so loaded batches fill to
#: ``max_batch`` and batch composition stays deterministic for the
#: pinned arrival trace instead of drifting with solver timing.
SERVICE_KWARGS = {
    "workers": 4,
    "max_batch": 40,
    "batch_window": 1.2,
    "batch_time_limit": 2.0,
}

MIN_THROUGHPUT_SPEEDUP = 2.0


def test_fig11_admission_service_report():
    quick = bool(os.environ.get("SERVICE_BENCH_QUICK"))
    load_points = QUICK_LOAD_POINTS if quick else FULL_LOAD_POINTS
    out_path = Path(
        os.environ.get(
            "SERVICE_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_service.json",
        )
    )

    raw = run_service_load_experiment(
        load_points,
        num_sites=NUM_SITES,
        time_limit=TIME_LIMIT,
        seed=SEED,
        **SERVICE_KWARGS,
    )

    records = []
    for entry in raw:
        sequential, service = entry["sequential"], entry["service"]
        # Decisions are per-query booleans; the report keeps the compact
        # summary and the service's own metrics snapshot.
        records.append(
            {
                "offered_rate_qps": entry["offered_rate_qps"],
                "num_queries": entry["num_queries"],
                "arrival_seed": entry["arrival_seed"],
                "sequential": {
                    key: sequential[key]
                    for key in (
                        "submitted",
                        "admitted",
                        "duration_seconds",
                        "throughput_qps",
                        "latency_p50",
                        "latency_p99",
                    )
                },
                "service": {
                    key: service[key]
                    for key in (
                        "submitted",
                        "admitted",
                        "duration_seconds",
                        "throughput_qps",
                        "latency_p50",
                        "latency_p99",
                    )
                },
                "service_metrics": service["metrics"],
                "throughput_speedup": entry["throughput_speedup"],
            }
        )
        print(
            f"fig11 admission service: rate={entry['offered_rate_qps']:.0f}q/s "
            f"n={entry['num_queries']} "
            f"sequential={sequential['throughput_qps']:.2f}q/s "
            f"(adm {sequential['admitted']}, p99 {sequential['latency_p99']:.2f}s) "
            f"service={service['throughput_qps']:.2f}q/s "
            f"(adm {service['admitted']}, p99 {service['latency_p99']:.2f}s) "
            f"speedup={entry['throughput_speedup']:.2f}x"
        )

    report = {
        "figure": "fig11_admission_service",
        "quick_mode": quick,
        "planner": "federated:sqpr",
        "num_sites": NUM_SITES,
        "time_limit": TIME_LIMIT,
        "seed": SEED,
        "service": SERVICE_KWARGS,
        "workload": "site_local_poisson",
        "min_throughput_speedup_at_largest": MIN_THROUGHPUT_SPEEDUP,
        "load_points": records,
        "largest": records[-1],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fig11 admission-service report written to {out_path}")

    largest = records[-1]
    assert largest["throughput_speedup"] >= MIN_THROUGHPUT_SPEEDUP, (
        f"the admission service sustains only "
        f"{largest['throughput_speedup']}x the sequential one-shot "
        f"throughput at {largest['offered_rate_qps']:.0f} q/s offered; "
        f"expected >= {MIN_THROUGHPUT_SPEEDUP}x"
    )
    assert largest["service"]["admitted"] >= largest["sequential"]["admitted"], (
        "batched admission admitted fewer queries than sequential "
        "one-shot submission at the largest load point"
    )
    for path in ("sequential", "service"):
        assert largest[path]["latency_p99"] > 0.0, (
            f"no p99 admission latency recorded for the {path} path"
        )
