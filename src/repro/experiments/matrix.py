"""The scenario-matrix sweep runner and its CLI.

Executes the cross-product of (scenario × planner × scale) through
:class:`~repro.sim.harness.SimulationHarness` and writes one
:class:`~repro.scenarios.artifacts.CellArtifact` per cell.  Per scale,
each scenario's schedule is generated **once** and shared by every
planner (identical initial conditions); each cell gets a fresh catalog,
planner and engine.  Cells are independent, so the runner fans them out
on the same ordered worker-pool helper
:class:`~repro.core.federated.FederatedPlanner` uses for its per-site
shards — concurrency changes wall-clock, never results, which the
parallel-parity benchmark asserts.

Baseline deltas: the ``baseline`` scenario's cell for the same (planner,
scale) is the pinned reference; every artifact records
``kpi_deltas = cell KPI − baseline KPI`` (the baseline's own deltas are
zero).  Invariant checking runs in ``on_violation="record"`` mode so a
misbehaving cell reports *every* violation, with the triggering event's
schedule index and kind, instead of dying on the first.

CLI (the CI ``scenario-matrix`` job)::

    python -m repro.experiments.matrix --quick --workers 4 \
        --out-dir MATRIX_artifacts \
        --check-golden tests/fixtures/golden_matrix.json

The process exits non-zero on any invariant violation or on fingerprint
drift against the golden fixture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api import PlannerConfig, create_planner
from repro.exceptions import SimulationError
from repro.scenarios.artifacts import (
    CellArtifact,
    attach_baseline,
    build_cell_artifact,
    diff_golden,
    diff_kpi_bands,
    golden_json,
    golden_payload,
    kpi_band_payload,
)
from repro.scenarios.matrix import (
    BASELINE_SCENARIO,
    MATRIX_REGIMES,
    MATRIX_SCALES,
    MatrixScale,
    SCENARIO_MATRIX,
)
from repro.scenarios.spec import ResolvedScenario, ScenarioSpec, parse_spec
from repro.sim.harness import SimulationHarness, SimulationResult
from repro.utils.pool import BACKENDS, map_in_pool

#: The registry planners every sweep covers by default.
DEFAULT_PLANNERS: Tuple[str, ...] = ("heuristic", "optimistic", "soda", "sqpr")


@dataclass
class MatrixResult:
    """Everything one sweep produced, keyed by cell id (insertion order:
    scale → scenario → planner)."""

    artifacts: Dict[str, CellArtifact] = field(default_factory=dict)
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    #: Scale names whose cells are excluded from the golden fingerprint
    #: payload (non-deterministic tiers, checked by KPI bands instead).
    nondeterministic_scales: frozenset = frozenset()

    def violations(self) -> List[str]:
        """One line per cell that finished with invariant violations."""
        lines = []
        for cid, artifact in self.artifacts.items():
            if not artifact.ok:
                events = artifact.invariants.get("violation_events", [])
                final = artifact.invariants.get("final_violations", [])
                lines.append(
                    f"{cid}: {len(events)} per-event violation(s), "
                    f"{len(final)} final-state violation(s)"
                )
        return lines

    def fingerprints(self) -> Dict[str, str]:
        return {
            cid: artifact.fingerprint
            for cid, artifact in self.artifacts.items()
        }

    def _deterministic_artifacts(self) -> Dict[str, CellArtifact]:
        return {
            cid: artifact
            for cid, artifact in self.artifacts.items()
            if artifact.scale not in self.nondeterministic_scales
        }

    def golden_payload(self) -> Dict[str, Any]:
        """Fingerprint fixture body — deterministic-scale cells only."""
        return golden_payload(self._deterministic_artifacts())

    def golden_json(self) -> str:
        return golden_json(self._deterministic_artifacts())

    def kpi_band_payload(self) -> Dict[str, Any]:
        """KPI reference body for the non-deterministic-scale cells."""
        return kpi_band_payload(
            {
                cid: artifact
                for cid, artifact in self.artifacts.items()
                if artifact.scale in self.nondeterministic_scales
            }
        )

    def write_artifacts(self, directory: Path) -> List[Path]:
        """Write every cell bundle plus a ``matrix_index.json`` summary."""
        directory = Path(directory)
        paths = [
            artifact.write(directory) for artifact in self.artifacts.values()
        ]
        index = {
            "cells": {
                cid: {
                    "file": artifact.file_name(),
                    "fingerprint": artifact.fingerprint,
                    "ok": artifact.ok,
                    "baseline_cell": artifact.baseline_cell,
                }
                for cid, artifact in self.artifacts.items()
            }
        }
        index_path = directory / "matrix_index.json"
        index_path.write_text(
            json.dumps(index, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths.append(index_path)
        return paths

    def summary_rows(self) -> List[List[object]]:
        """Rows for :func:`repro.experiments.reporting.format_table`."""
        rows: List[List[object]] = []
        for artifact in self.artifacts.values():
            rows.append(
                [
                    artifact.scenario,
                    artifact.planner,
                    artifact.scale,
                    int(artifact.kpis.get("admitted", 0)),
                    int(artifact.kpis.get("rejected", 0)),
                    int(artifact.kpis.get("dropped", 0)),
                    f"{artifact.kpi_deltas.get('admitted', 0.0):+g}",
                    "ok" if artifact.ok else "VIOLATED",
                ]
            )
        return rows


def _resolve_cells(
    scenarios: Sequence[str],
    scales: Sequence[str],
    registry: Mapping[str, ScenarioSpec],
    scale_registry: Mapping[str, MatrixScale],
    seed: Optional[int],
) -> Dict[Tuple[str, str], Tuple[ResolvedScenario, Any, Any]]:
    """Resolve every (scenario, scale) pair once: spec → configs →
    scenario object → shared schedule."""
    resolved_pairs: Dict[Tuple[str, str], Tuple[ResolvedScenario, Any, Any]] = {}
    for scale_name in scales:
        try:
            scale = scale_registry[scale_name]
        except KeyError:
            known = ", ".join(sorted(scale_registry))
            raise SimulationError(
                f"unknown matrix scale {scale_name!r}; known scales: {known}"
            ) from None
        base_trace = scale.trace
        if seed is not None:
            base_trace = replace(base_trace, seed=seed)
        for expression in scenarios:
            spec = parse_spec(expression, registry)
            resolved = spec.resolve(base_trace, scale.topology)
            scenario_obj = resolved.build_scenario()
            schedule = resolved.build_schedule(scenario_obj)
            resolved_pairs[(expression, scale_name)] = (
                resolved,
                scenario_obj,
                schedule,
            )
    return resolved_pairs


def run_matrix_cell(
    resolved: ResolvedScenario,
    scenario_obj,
    schedule,
    planner_name: str,
    *,
    planner_config: Optional[PlannerConfig] = None,
    through_service: bool = False,
) -> SimulationResult:
    """Run one cell: fresh catalog + planner + engine over the shared
    schedule, invariants recorded (never aborting the sweep)."""
    catalog = scenario_obj.build_catalog()
    planner = create_planner(
        planner_name,
        catalog,
        config=planner_config or PlannerConfig(time_limit=None),
    )
    service = None
    if through_service:
        from repro.service import AdmissionService, ServiceConfig

        service = AdmissionService(
            planner, config=ServiceConfig(pipelined=False)
        )
    harness = SimulationHarness(
        planner, service=service, on_violation="record"
    )
    try:
        return harness.run(schedule)
    finally:
        if service is not None:
            service.close()


def _run_cell_task(payload):
    """Top-level (picklable) cell runner of the process execution backend.

    Each process-backend cell rebuilds its scenario object and schedule
    from the resolved spec inside the worker — both builds are seeded
    and deterministic, so the rebuilt schedule (and thus the cell
    fingerprint) is identical to the parent's copy, and the whole cell
    runs in true per-cell process isolation.
    """
    (
        expression,
        planner_name,
        scale_name,
        resolved,
        planner_config,
        through_service,
    ) = payload
    scenario_obj = resolved.build_scenario()
    schedule = resolved.build_schedule(scenario_obj)
    result = run_matrix_cell(
        resolved,
        scenario_obj,
        schedule,
        planner_name,
        planner_config=planner_config,
        through_service=through_service,
    )
    artifact = build_cell_artifact(
        scenario=expression,
        planner=planner_name,
        scale=scale_name,
        resolved=resolved,
        schedule=schedule,
        result=result,
        service_replay=through_service,
    )
    return (expression, planner_name, scale_name), artifact, result


def run_matrix(
    scenarios: Sequence[str] = MATRIX_REGIMES,
    planners: Sequence[str] = DEFAULT_PLANNERS,
    scales: Sequence[str] = ("quick",),
    *,
    registry: Optional[Mapping[str, ScenarioSpec]] = None,
    scale_registry: Optional[Mapping[str, MatrixScale]] = None,
    seed: Optional[int] = None,
    planner_config: Optional[PlannerConfig] = None,
    workers: int = 1,
    backend: str = "thread",
    through_service: bool = False,
    baseline: str = BASELINE_SCENARIO,
) -> MatrixResult:
    """Execute the (scenario × planner × scale) sweep.

    ``scenarios`` are spec *expressions* over ``registry`` (names or
    ``name+name`` compositions); the ``baseline`` scenario is prepended
    when absent, because every artifact's KPI deltas are taken against
    the baseline cell of the same (planner, scale).  ``seed`` overrides
    every scale's trace seed (one knob to re-roll the whole matrix);
    ``workers`` bounds cell-level concurrency and ``backend`` picks the
    execution substrate (``thread`` shares the parent's resolved
    schedules; ``process`` runs every cell in true process isolation,
    rebuilding its schedule deterministically in the worker);
    ``through_service`` replays every cell's arrivals through a
    synchronous :class:`~repro.service.AdmissionService` instead of
    direct ``planner.submit`` calls.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{BACKENDS}"
        )
    registry = registry if registry is not None else SCENARIO_MATRIX
    scale_registry = (
        scale_registry if scale_registry is not None else MATRIX_SCALES
    )
    scenario_list = list(scenarios)
    if baseline not in scenario_list:
        scenario_list.insert(0, baseline)
    resolved_pairs = _resolve_cells(
        scenario_list, scales, registry, scale_registry, seed
    )

    def run_cell(key: Tuple[str, str, str]):
        expression, planner_name, scale_name = key
        resolved, scenario_obj, schedule = resolved_pairs[
            (expression, scale_name)
        ]
        result = run_matrix_cell(
            resolved,
            scenario_obj,
            schedule,
            planner_name,
            planner_config=planner_config,
            through_service=through_service,
        )
        artifact = build_cell_artifact(
            scenario=expression,
            planner=planner_name,
            scale=scale_name,
            resolved=resolved,
            schedule=schedule,
            result=result,
            service_replay=through_service,
        )
        return key, artifact, result

    baseline_cells = [
        (baseline, planner, scale_name)
        for scale_name in scales
        for planner in planners
    ]
    other_cells = [
        (expression, planner, scale_name)
        for scale_name in scales
        for expression in scenario_list
        if expression != baseline
        for planner in planners
    ]
    # Baselines first — every other cell's deltas need them pinned.
    if backend == "process":
        def to_payload(key: Tuple[str, str, str]):
            expression, planner_name, scale_name = key
            resolved, _, _ = resolved_pairs[(expression, scale_name)]
            return (
                expression,
                planner_name,
                scale_name,
                resolved,
                planner_config,
                through_service,
            )

        completed = map_in_pool(
            _run_cell_task,
            [to_payload(key) for key in baseline_cells],
            workers=workers,
            backend="process",
        )
        completed += map_in_pool(
            _run_cell_task,
            [to_payload(key) for key in other_cells],
            workers=workers,
            backend="process",
        )
    else:
        completed = map_in_pool(
            run_cell,
            baseline_cells,
            workers=workers,
            thread_name_prefix="matrix",
            backend=backend,
        )
        completed += map_in_pool(
            run_cell,
            other_cells,
            workers=workers,
            thread_name_prefix="matrix",
            backend=backend,
        )

    by_key = {key: (artifact, result) for key, artifact, result in completed}
    baselines = {
        (planner, scale_name): by_key[(baseline, planner, scale_name)][0]
        for scale_name in scales
        for planner in planners
    }
    sweep = MatrixResult(
        nondeterministic_scales=frozenset(
            scale_name
            for scale_name in scales
            if not scale_registry[scale_name].deterministic
        )
    )
    for scale_name in scales:
        for expression in scenario_list:
            for planner in planners:
                artifact, result = by_key[(expression, planner, scale_name)]
                attach_baseline(
                    artifact, baselines[(planner, scale_name)]
                )
                sweep.artifacts[artifact.cell_id] = artifact
                sweep.results[artifact.cell_id] = result
    return sweep


def diff_kpi_reference(
    expected: Mapping[str, Any],
    sweep: MatrixResult,
    scale_registry: Optional[Mapping[str, MatrixScale]] = None,
) -> List[str]:
    """KPI-band drift of a sweep's non-deterministic cells vs a reference.

    Each non-deterministic scale is checked against its own tolerance
    map (:attr:`MatrixScale.kpi_tolerances`); deterministic scales are
    covered by the golden fingerprints and skipped here.
    """
    scale_registry = (
        scale_registry if scale_registry is not None else MATRIX_SCALES
    )
    problems: List[str] = []
    for scale_name in sorted(sweep.nondeterministic_scales):
        scale = scale_registry[scale_name]
        artifacts = {
            cid: artifact
            for cid, artifact in sweep.artifacts.items()
            if artifact.scale == scale_name
        }
        expected_cells = {
            cid: kpis
            for cid, kpis in expected.get("cells", {}).items()
            if cid.rsplit("/", 1)[-1] == scale_name
        }
        problems.extend(
            diff_kpi_bands(
                {"cells": expected_cells}, artifacts, scale.tolerance_map()
            )
        )
    return problems


def generate_golden_matrix(
    *, workers: int = 1, scales: Sequence[str] = ("quick",)
) -> str:
    """The golden-matrix fixture bytes for the default quick sweep.

    Shared by the CLI's ``--write-golden`` flag and the golden-fixture
    regeneration test, so both always agree on what "the quick matrix"
    means.
    """
    sweep = run_matrix(scales=scales, workers=workers)
    return sweep.golden_json()


def _main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    from repro.experiments.reporting import format_table

    parser = argparse.ArgumentParser(
        description="run the declarative scenario-matrix sweep"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="the CI sweep: every regime x every planner at the quick scale",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="EXPR",
        help="spec expressions (names or name+name compositions); "
        f"default: {' '.join(MATRIX_REGIMES)}",
    )
    parser.add_argument(
        "--planners", nargs="+", default=list(DEFAULT_PLANNERS)
    )
    parser.add_argument(
        "--scales",
        nargs="+",
        default=["quick"],
        choices=sorted(MATRIX_SCALES),
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend",
        default="thread",
        choices=list(BACKENDS),
        help="cell execution backend; 'process' runs each cell in its "
        "own forked worker (true multicore)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-solve time limit (required practice for the "
        "non-deterministic 'large' scale)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="replay every cell through a synchronous AdmissionService",
    )
    parser.add_argument("--out-dir", default=None, metavar="DIR")
    parser.add_argument(
        "--check-golden",
        default=None,
        metavar="PATH",
        help="fail on fingerprint drift against this golden fixture",
    )
    parser.add_argument(
        "--write-golden",
        default=None,
        metavar="PATH",
        help="write the sweep's golden fixture to PATH and exit cleanly",
    )
    parser.add_argument(
        "--check-kpi-ref",
        default=None,
        metavar="PATH",
        help="fail when non-deterministic-scale KPIs leave the "
        "tolerance bands of this reference",
    )
    parser.add_argument(
        "--write-kpi-ref",
        default=None,
        metavar="PATH",
        help="write the non-deterministic-scale KPI reference to PATH",
    )
    args = parser.parse_args(argv)

    scenarios = args.scenarios or list(MATRIX_REGIMES)
    sweep = run_matrix(
        scenarios=scenarios,
        planners=args.planners,
        scales=args.scales,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        planner_config=(
            PlannerConfig(time_limit=args.time_limit)
            if args.time_limit is not None
            else None
        ),
        through_service=args.service,
    )

    if args.out_dir:
        paths = sweep.write_artifacts(Path(args.out_dir))
        print(f"wrote {len(paths)} artifact files to {args.out_dir}")
    print(
        format_table(
            [
                "scenario",
                "planner",
                "scale",
                "admitted",
                "rejected",
                "dropped",
                "d(admitted)",
                "invariants",
            ],
            sweep.summary_rows(),
            title=(
                f"scenario matrix: {len(sweep.artifacts)} cells "
                f"({len(scenarios)} scenarios x {len(args.planners)} "
                f"planners x {len(args.scales)} scales)"
            ),
        )
    )

    failures: List[str] = sweep.violations()
    if failures:
        print("INVARIANT VIOLATIONS:")
        for line in failures:
            print(f"  {line}")

    if args.write_golden:
        Path(args.write_golden).write_text(
            sweep.golden_json(), encoding="utf-8"
        )
        print(f"golden fixture written to {args.write_golden}")
    if args.write_kpi_ref:
        Path(args.write_kpi_ref).write_text(
            json.dumps(sweep.kpi_band_payload(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"KPI reference written to {args.write_kpi_ref}")
    if args.check_kpi_ref:
        expected = json.loads(
            Path(args.check_kpi_ref).read_text(encoding="utf-8")
        )
        band_drift = diff_kpi_reference(expected, sweep)
        if band_drift:
            print(f"KPI BAND DRIFT vs {args.check_kpi_ref}:")
            for line in band_drift:
                print(f"  {line}")
            failures.extend(band_drift)
        else:
            print(f"KPIs within tolerance bands of {args.check_kpi_ref}")
    if args.check_golden:
        expected = json.loads(
            Path(args.check_golden).read_text(encoding="utf-8")
        )
        drift = diff_golden(expected, sweep.artifacts)
        if drift:
            print(f"GOLDEN DRIFT vs {args.check_golden}:")
            for line in drift:
                print(f"  {line}")
            failures.extend(drift)
        else:
            print(f"golden fingerprints match {args.check_golden}")

    if failures:
        raise SystemExit(1)


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    _main()
