"""One entry point per figure of the paper's evaluation (§V).

Every function builds the relevant scenario, runs the planners and returns a
:class:`FigureResult` containing the same series the paper plots.  All sizes
and solver timeouts default to *scaled-down* values so the complete harness
finishes on a laptop; pass larger values to approach the paper's scale.

The benchmark files under ``benchmarks/`` call these functions, assert the
paper's qualitative findings (who wins, where saturation appears) and print
the series so EXPERIMENTS.md can record paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.planner import SodaPlanner
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.experiments.metrics import cdf
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import AdmissionCurve, run_admission_experiment
from repro.workloads.scenarios import (
    Scenario,
    SimulationScenarioConfig,
    ClusterScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)


@dataclass
class FigureResult:
    """The data behind one reproduced figure."""

    figure: str
    description: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Render the figure's series as a plain-text table."""
        return format_series(self.series, title=f"{self.figure}: {self.description}")


# --------------------------------------------------------------------------- helpers
def _default_simulation(num_hosts: Optional[int] = None, num_base_streams: Optional[int] = None) -> Scenario:
    config = SimulationScenarioConfig()
    scenario = build_simulation_scenario(config)
    if num_hosts is not None:
        scenario = scenario.with_hosts(num_hosts)
    if num_base_streams is not None:
        scenario = scenario.with_base_streams(num_base_streams)
    return scenario


def _sqpr_planner(scenario: Scenario, time_limit: float, **config_kwargs) -> SQPRPlanner:
    catalog = scenario.build_catalog()
    config = PlannerConfig(time_limit=time_limit, **config_kwargs)
    return SQPRPlanner(catalog, config=config)


def _curve_series(curve: AdmissionCurve) -> List[float]:
    return [float(v) for v in curve.satisfied]


# ------------------------------------------------------------------- Figure 4(a)
def fig4a_planning_efficiency(
    scenario: Optional[Scenario] = None,
    num_queries: int = 60,
    timeouts: Sequence[float] = (0.1, 0.3, 0.6),
    checkpoint_every: int = 10,
    arities: Tuple[int, ...] = (2, 3, 4),
) -> FigureResult:
    """Fig. 4(a): satisfied vs submitted queries for SQPR (several timeouts),
    the heuristic planner and the optimistic bound."""
    scenario = scenario or _default_simulation()
    workload = scenario.workload(num_queries, arities=arities)
    result = FigureResult(
        figure="Fig 4(a)",
        description="planning efficiency (satisfied vs submitted queries)",
    )

    for timeout in timeouts:
        planner = _sqpr_planner(scenario, timeout)
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint_every
        )
        result.series[f"sqpr_timeout_{timeout:g}s"] = _curve_series(curve)

    heuristic = HeuristicPlanner(scenario.build_catalog())
    heuristic_curve = run_admission_experiment(
        heuristic, workload, checkpoint_every=checkpoint_every
    )
    result.series["heuristic"] = _curve_series(heuristic_curve)

    optimistic = OptimisticBoundPlanner(scenario.build_catalog())
    optimistic_curve = run_admission_experiment(
        optimistic, workload, checkpoint_every=checkpoint_every
    )
    result.series["optimistic_bound"] = _curve_series(optimistic_curve)

    result.series["submitted"] = [float(v) for v in optimistic_curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 4(b)
def fig4b_batching(
    scenario: Optional[Scenario] = None,
    num_queries: int = 24,
    batch_sizes: Sequence[int] = (2, 3, 4, 5),
    per_query_timeout: float = 0.15,
    checkpoint_every: int = 8,
) -> FigureResult:
    """Fig. 4(b): planning efficiency when queries are submitted in batches."""
    scenario = scenario or _default_simulation()
    workload = scenario.workload(num_queries)
    result = FigureResult(
        figure="Fig 4(b)",
        description="planning efficiency with query batching",
    )
    for batch in batch_sizes:
        planner = _sqpr_planner(scenario, per_query_timeout)
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint_every, group_size=batch
        )
        result.series[f"batch_{batch}"] = _curve_series(curve)
        submitted_key = "submitted"
        if submitted_key not in result.series:
            result.series[submitted_key] = [float(v) for v in curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 4(c)
def fig4c_overlap(
    num_queries: int = 25,
    zipf_factors: Sequence[float] = (0.0, 1.0, 2.0),
    base_stream_counts: Sequence[int] = (40, 80),
    time_limit: float = 0.2,
) -> FigureResult:
    """Fig. 4(c): satisfiable queries vs Zipf factor for several base-stream
    universe sizes (more overlap -> more admitted queries)."""
    result = FigureResult(
        figure="Fig 4(c)",
        description="planning efficiency vs overlap (Zipf factor)",
        series={"zipf_factor": [float(z) for z in zipf_factors]},
    )
    for num_streams in base_stream_counts:
        satisfied: List[float] = []
        for zipf in zipf_factors:
            scenario = _default_simulation(num_base_streams=num_streams)
            workload = scenario.workload(num_queries, zipf_exponent=zipf)
            planner = _sqpr_planner(scenario, time_limit)
            curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
            satisfied.append(float(curve.total_satisfied))
        result.series[f"{num_streams}_base_streams"] = satisfied
    return result


# ------------------------------------------------------------------- Figure 5(a)
def fig5a_scalability_hosts(
    host_counts: Sequence[int] = (4, 6, 8, 12),
    num_queries: int = 30,
    time_limit: float = 0.25,
) -> FigureResult:
    """Fig. 5(a): satisfiable queries vs number of hosts, with the optimistic
    bound for reference."""
    result = FigureResult(
        figure="Fig 5(a)",
        description="scalability in the number of hosts",
        series={"hosts": [float(h) for h in host_counts]},
    )
    sqpr_satisfied: List[float] = []
    bound_satisfied: List[float] = []
    for hosts in host_counts:
        scenario = _default_simulation(num_hosts=hosts)
        workload = scenario.workload(num_queries)
        planner = _sqpr_planner(scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
        sqpr_satisfied.append(float(curve.total_satisfied))
        bound = OptimisticBoundPlanner(scenario.build_catalog())
        bound_curve = run_admission_experiment(bound, workload, checkpoint_every=num_queries)
        bound_satisfied.append(float(bound_curve.total_satisfied))
    result.series["sqpr"] = sqpr_satisfied
    result.series["optimistic_bound"] = bound_satisfied
    return result


# ------------------------------------------------------------------- Figure 5(b)
def fig5b_scalability_resources(
    cpu_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    num_queries: int = 40,
    time_limit: float = 0.3,
) -> FigureResult:
    """Fig. 5(b): satisfiable queries vs per-host resources (CPU cores), with
    network capacities scaled up as in the paper (1 Gbps -> 10 Gbps)."""
    result = FigureResult(
        figure="Fig 5(b)",
        description="scalability in per-host resources",
        series={"cpu_factor": [float(f) for f in cpu_factors]},
    )
    sqpr_satisfied: List[float] = []
    bound_satisfied: List[float] = []
    for factor in cpu_factors:
        scenario = _default_simulation().with_resources(
            cpu_factor=factor, bandwidth_factor=10.0
        )
        workload = scenario.workload(num_queries)
        planner = _sqpr_planner(scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
        sqpr_satisfied.append(float(curve.total_satisfied))
        bound = OptimisticBoundPlanner(scenario.build_catalog())
        bound_curve = run_admission_experiment(bound, workload, checkpoint_every=num_queries)
        bound_satisfied.append(float(bound_curve.total_satisfied))
    result.series["sqpr"] = sqpr_satisfied
    result.series["optimistic_bound"] = bound_satisfied
    return result


# ------------------------------------------------------------------- Figure 5(c)
def fig5c_query_complexity(
    arities: Sequence[int] = (2, 3, 4, 5),
    num_queries: int = 30,
    time_limit: float = 0.3,
) -> FigureResult:
    """Fig. 5(c): satisfiable queries vs query type (2-way .. 5-way joins)."""
    result = FigureResult(
        figure="Fig 5(c)",
        description="scalability in query complexity",
        series={"arity": [float(a) for a in arities]},
    )
    sqpr_satisfied: List[float] = []
    bound_satisfied: List[float] = []
    for arity in arities:
        scenario = _default_simulation()
        workload = scenario.workload(num_queries, arities=(arity,))
        planner = _sqpr_planner(scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
        sqpr_satisfied.append(float(curve.total_satisfied))
        bound = OptimisticBoundPlanner(scenario.build_catalog())
        bound_curve = run_admission_experiment(bound, workload, checkpoint_every=num_queries)
        bound_satisfied.append(float(bound_curve.total_satisfied))
    result.series["sqpr"] = sqpr_satisfied
    result.series["optimistic_bound"] = bound_satisfied
    return result


# ------------------------------------------------------------------- Figure 6(a)
def fig6a_planning_time_vs_hosts(
    host_counts: Sequence[int] = (4, 6, 8, 12),
    num_queries: int = 20,
    time_limit: float = 0.5,
) -> FigureResult:
    """Fig. 6(a): average planning time vs number of hosts at high utilisation."""
    result = FigureResult(
        figure="Fig 6(a)",
        description="planning time vs number of hosts",
        series={"hosts": [float(h) for h in host_counts]},
    )
    averages: List[float] = []
    high_util: List[float] = []
    for hosts in host_counts:
        scenario = _default_simulation(num_hosts=hosts)
        workload = scenario.workload(num_queries)
        planner = _sqpr_planner(scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=5)
        averages.append(curve.average_planning_time())
        high_util.append(curve.planning_time_at_utilisation())
    result.series["avg_planning_time_s"] = averages
    result.series["avg_planning_time_75_95_s"] = high_util
    return result


# ------------------------------------------------------------------- Figure 6(b)
def fig6b_planning_time_vs_arity(
    arities: Sequence[int] = (2, 3, 4, 5),
    num_queries: int = 20,
    time_limit: float = 0.5,
) -> FigureResult:
    """Fig. 6(b): average planning time vs query type on a fixed host count."""
    result = FigureResult(
        figure="Fig 6(b)",
        description="planning time vs query complexity",
        series={"arity": [float(a) for a in arities]},
    )
    averages: List[float] = []
    high_util: List[float] = []
    for arity in arities:
        scenario = _default_simulation()
        workload = scenario.workload(num_queries, arities=(arity,))
        planner = _sqpr_planner(scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=5)
        averages.append(curve.average_planning_time())
        high_util.append(curve.planning_time_at_utilisation())
    result.series["avg_planning_time_s"] = averages
    result.series["avg_planning_time_75_95_s"] = high_util
    return result


# ------------------------------------------------------------------- Figure 7(a)
def fig7a_cluster_efficiency(
    scenario: Optional[Scenario] = None,
    num_queries: int = 100,
    epoch_size: int = 20,
    time_limit: float = 0.3,
) -> FigureResult:
    """Fig. 7(a): admitted queries per epoch, SQPR vs SODA, on the cluster
    deployment scenario."""
    scenario = scenario or build_cluster_scenario()
    workload = scenario.workload(num_queries, arities=(2, 3))
    result = FigureResult(
        figure="Fig 7(a)",
        description="cluster deployment planning efficiency (SQPR vs SODA)",
    )

    sqpr = _sqpr_planner(scenario, time_limit)
    sqpr_curve = run_admission_experiment(
        sqpr, workload, checkpoint_every=epoch_size, group_size=1
    )
    result.series["sqpr"] = _curve_series(sqpr_curve)

    soda = SodaPlanner(scenario.build_catalog())
    soda_curve = run_admission_experiment(
        soda, workload, checkpoint_every=epoch_size, group_size=epoch_size
    )
    result.series["soda"] = _curve_series(soda_curve)
    result.series["submitted"] = [float(v) for v in sqpr_curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 7(b)
def _cluster_distributions(
    scenario: Scenario,
    query_counts: Sequence[int],
    time_limit: float,
) -> Dict[str, Dict[int, List[float]]]:
    """Per-host CPU and network distributions for SQPR and SODA at the given
    submitted-query counts."""
    workload = scenario.workload(max(query_counts), arities=(2, 3))
    distributions: Dict[str, Dict[int, List[float]]] = {
        "sqpr_cpu": {},
        "sqpr_net": {},
        "soda_cpu": {},
        "soda_net": {},
    }

    sqpr = _sqpr_planner(scenario, time_limit)
    soda = SodaPlanner(scenario.build_catalog())
    submitted = 0
    targets = sorted(set(query_counts))
    for item in workload:
        sqpr.submit(item)
        soda.submit(item)
        submitted += 1
        if submitted in targets:
            catalog_hosts = sqpr.catalog.host_ids
            distributions["sqpr_cpu"][submitted] = [
                sqpr.allocation.cpu_utilisation(h) * 100.0 for h in catalog_hosts
            ]
            distributions["sqpr_net"][submitted] = [
                sqpr.allocation.network_usage(h) for h in catalog_hosts
            ]
            soda_hosts = soda.catalog.host_ids
            distributions["soda_cpu"][submitted] = [
                soda.allocation.cpu_utilisation(h) * 100.0 for h in soda_hosts
            ]
            distributions["soda_net"][submitted] = [
                soda.allocation.network_usage(h) for h in soda_hosts
            ]
    return distributions


def fig7b_cpu_distribution(
    scenario: Optional[Scenario] = None,
    query_counts: Sequence[int] = (30, 90),
    time_limit: float = 0.3,
) -> FigureResult:
    """Fig. 7(b): CDF of per-host CPU utilisation for SQPR and SODA at a low
    and a high submitted-query count."""
    scenario = scenario or build_cluster_scenario()
    distributions = _cluster_distributions(scenario, query_counts, time_limit)
    result = FigureResult(
        figure="Fig 7(b)",
        description="CDF of per-host CPU utilisation (percent)",
    )
    for count in query_counts:
        for planner in ("sqpr", "soda"):
            values, fractions = cdf(distributions[f"{planner}_cpu"].get(count, []))
            result.series[f"{planner}_{count}_cpu_pct"] = values
            result.series[f"{planner}_{count}_cdf"] = fractions
    return result


# ------------------------------------------------------------------- Figure 7(c)
def fig7c_network_distribution(
    scenario: Optional[Scenario] = None,
    query_counts: Sequence[int] = (30, 90),
    time_limit: float = 0.3,
) -> FigureResult:
    """Fig. 7(c): CDF of per-host network usage (Mbps) for SQPR and SODA."""
    scenario = scenario or build_cluster_scenario()
    distributions = _cluster_distributions(scenario, query_counts, time_limit)
    result = FigureResult(
        figure="Fig 7(c)",
        description="CDF of per-host network usage (Mbps)",
    )
    for count in query_counts:
        for planner in ("sqpr", "soda"):
            values, fractions = cdf(distributions[f"{planner}_net"].get(count, []))
            result.series[f"{planner}_{count}_net_mbps"] = values
            result.series[f"{planner}_{count}_cdf"] = fractions
    return result
