"""One entry point per figure of the paper's evaluation (§V).

Every function builds the relevant scenario, runs the planners and returns a
:class:`FigureResult` containing the same series the paper plots.  All sizes
and solver timeouts default to *scaled-down* values so the complete harness
finishes on a laptop; pass larger values to approach the paper's scale.

The drivers are planner-agnostic: planners are constructed by registry name
via :func:`repro.api.create_planner`, so any registered planner (including
ones registered by downstream code) can be swapped into any figure by
passing its name.  Series are keyed by the planner names as passed.

The benchmark files under ``benchmarks/`` call these functions, assert the
paper's qualitative findings (who wins, where saturation appears) and print
the series so EXPERIMENTS.md can record paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Planner, PlannerConfig, create_planner
from repro.experiments.metrics import cdf
from repro.experiments.reporting import format_series
from repro.experiments.runner import AdmissionCurve, run_admission_experiment
from repro.workloads.scenarios import (
    Scenario,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)


@dataclass
class FigureResult:
    """The data behind one reproduced figure."""

    figure: str
    description: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Render the figure's series as a plain-text table."""
        return format_series(self.series, title=f"{self.figure}: {self.description}")


# --------------------------------------------------------------------------- helpers
def _default_simulation(num_hosts: Optional[int] = None, num_base_streams: Optional[int] = None) -> Scenario:
    config = SimulationScenarioConfig()
    scenario = build_simulation_scenario(config)
    if num_hosts is not None:
        scenario = scenario.with_hosts(num_hosts)
    if num_base_streams is not None:
        scenario = scenario.with_base_streams(num_base_streams)
    return scenario


def _make_planner(
    name: str, scenario: Scenario, time_limit: Optional[float] = None, **config_kwargs
) -> Planner:
    """Build a fresh catalog for ``scenario`` and a planner on it by name.

    ``time_limit=None`` keeps the :class:`PlannerConfig` default (a bounded
    solve) rather than disabling the solver timeout outright.
    """
    catalog = scenario.build_catalog()
    if time_limit is not None:
        config_kwargs["time_limit"] = time_limit
    config = PlannerConfig(**config_kwargs)
    return create_planner(name, catalog, config=config)


def _curve_series(curve: AdmissionCurve) -> List[float]:
    return [float(v) for v in curve.satisfied]


# ------------------------------------------------------------------- Figure 4(a)
def fig4a_planning_efficiency(
    scenario: Optional[Scenario] = None,
    num_queries: int = 60,
    timeouts: Sequence[float] = (0.1, 0.3, 0.6),
    checkpoint_every: int = 10,
    arities: Tuple[int, ...] = (2, 3, 4),
    baselines: Sequence[str] = ("heuristic", "optimistic_bound"),
) -> FigureResult:
    """Fig. 4(a): satisfied vs submitted queries for SQPR (several timeouts)
    and the baseline planners (by default the heuristic and the optimistic
    bound; any registered planner name works)."""
    scenario = scenario or _default_simulation()
    workload = scenario.workload(num_queries, arities=arities)
    result = FigureResult(
        figure="Fig 4(a)",
        description="planning efficiency (satisfied vs submitted queries)",
    )

    last_curve = None
    for timeout in timeouts:
        planner = _make_planner("sqpr", scenario, timeout)
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint_every
        )
        result.series[f"sqpr_timeout_{timeout:g}s"] = _curve_series(curve)
        last_curve = curve

    baseline_time_limit = max(timeouts, default=None)
    for name in baselines:
        planner = _make_planner(name, scenario, baseline_time_limit)
        # group_size is omitted: the runner plans epochs for epoch planners.
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint_every
        )
        result.series[name] = _curve_series(curve)
        last_curve = curve

    # Every curve shares the same workload and checkpoints, so any of them
    # provides the submitted series.
    if last_curve is not None:
        result.series["submitted"] = [float(v) for v in last_curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 4(b)
def fig4b_batching(
    scenario: Optional[Scenario] = None,
    num_queries: int = 24,
    batch_sizes: Sequence[int] = (2, 3, 4, 5),
    per_query_timeout: float = 0.15,
    checkpoint_every: int = 8,
    planner_name: str = "sqpr",
) -> FigureResult:
    """Fig. 4(b): planning efficiency when queries are submitted in batches."""
    scenario = scenario or _default_simulation()
    workload = scenario.workload(num_queries)
    result = FigureResult(
        figure="Fig 4(b)",
        description="planning efficiency with query batching",
    )
    for batch in batch_sizes:
        planner = _make_planner(planner_name, scenario, per_query_timeout)
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint_every, group_size=batch
        )
        result.series[f"batch_{batch}"] = _curve_series(curve)
        if "submitted" not in result.series:
            result.series["submitted"] = [float(v) for v in curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 4(c)
def fig4c_overlap(
    num_queries: int = 25,
    zipf_factors: Sequence[float] = (0.0, 1.0, 2.0),
    base_stream_counts: Sequence[int] = (40, 80),
    time_limit: float = 0.2,
    planner_name: str = "sqpr",
) -> FigureResult:
    """Fig. 4(c): satisfiable queries vs Zipf factor for several base-stream
    universe sizes (more overlap -> more admitted queries)."""
    result = FigureResult(
        figure="Fig 4(c)",
        description="planning efficiency vs overlap (Zipf factor)",
        series={"zipf_factor": [float(z) for z in zipf_factors]},
    )
    for num_streams in base_stream_counts:
        satisfied: List[float] = []
        for zipf in zipf_factors:
            scenario = _default_simulation(num_base_streams=num_streams)
            workload = scenario.workload(num_queries, zipf_exponent=zipf)
            planner = _make_planner(planner_name, scenario, time_limit)
            curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
            satisfied.append(float(curve.total_satisfied))
        result.series[f"{num_streams}_base_streams"] = satisfied
    return result


# --------------------------------------------------------------------- Figure 5
def _sweep_with_bound(
    result: FigureResult,
    scenarios: Sequence[Scenario],
    workloads: Sequence[Sequence],
    time_limit: float,
    planner_name: str,
    bound_name: str,
) -> FigureResult:
    """Run ``planner_name`` and ``bound_name`` over paired scenario/workload
    sweeps, recording one total-satisfied value per sweep point."""
    planner_satisfied: List[float] = []
    bound_satisfied: List[float] = []
    for scenario, workload in zip(scenarios, workloads):
        num_queries = len(workload)
        planner = _make_planner(planner_name, scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=num_queries)
        planner_satisfied.append(float(curve.total_satisfied))
        bound = _make_planner(bound_name, scenario, time_limit)
        bound_curve = run_admission_experiment(bound, workload, checkpoint_every=num_queries)
        bound_satisfied.append(float(bound_curve.total_satisfied))
    result.series[planner_name] = planner_satisfied
    result.series[bound_name] = bound_satisfied
    return result


def fig5a_scalability_hosts(
    host_counts: Sequence[int] = (4, 6, 8, 12),
    num_queries: int = 30,
    time_limit: float = 0.25,
    planner_name: str = "sqpr",
    bound_name: str = "optimistic_bound",
) -> FigureResult:
    """Fig. 5(a): satisfiable queries vs number of hosts, with the optimistic
    bound for reference."""
    result = FigureResult(
        figure="Fig 5(a)",
        description="scalability in the number of hosts",
        series={"hosts": [float(h) for h in host_counts]},
    )
    scenarios = [_default_simulation(num_hosts=hosts) for hosts in host_counts]
    workloads = [scenario.workload(num_queries) for scenario in scenarios]
    return _sweep_with_bound(
        result, scenarios, workloads, time_limit, planner_name, bound_name
    )


def fig5b_scalability_resources(
    cpu_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    num_queries: int = 40,
    time_limit: float = 0.3,
    planner_name: str = "sqpr",
    bound_name: str = "optimistic_bound",
) -> FigureResult:
    """Fig. 5(b): satisfiable queries vs per-host resources (CPU cores), with
    network capacities scaled up as in the paper (1 Gbps -> 10 Gbps)."""
    result = FigureResult(
        figure="Fig 5(b)",
        description="scalability in per-host resources",
        series={"cpu_factor": [float(f) for f in cpu_factors]},
    )
    scenarios = [
        _default_simulation().with_resources(cpu_factor=factor, bandwidth_factor=10.0)
        for factor in cpu_factors
    ]
    workloads = [scenario.workload(num_queries) for scenario in scenarios]
    return _sweep_with_bound(
        result, scenarios, workloads, time_limit, planner_name, bound_name
    )


def fig5c_query_complexity(
    arities: Sequence[int] = (2, 3, 4, 5),
    num_queries: int = 30,
    time_limit: float = 0.3,
    planner_name: str = "sqpr",
    bound_name: str = "optimistic_bound",
) -> FigureResult:
    """Fig. 5(c): satisfiable queries vs query type (2-way .. 5-way joins)."""
    result = FigureResult(
        figure="Fig 5(c)",
        description="scalability in query complexity",
        series={"arity": [float(a) for a in arities]},
    )
    scenarios = [_default_simulation() for _ in arities]
    workloads = [
        scenario.workload(num_queries, arities=(arity,))
        for scenario, arity in zip(scenarios, arities)
    ]
    return _sweep_with_bound(
        result, scenarios, workloads, time_limit, planner_name, bound_name
    )


# --------------------------------------------------------------------- Figure 6
def _planning_time_sweep(
    result: FigureResult,
    scenarios: Sequence[Scenario],
    workloads: Sequence[Sequence],
    time_limit: float,
    planner_name: str,
) -> FigureResult:
    averages: List[float] = []
    high_util: List[float] = []
    for scenario, workload in zip(scenarios, workloads):
        planner = _make_planner(planner_name, scenario, time_limit)
        curve = run_admission_experiment(planner, workload, checkpoint_every=5)
        averages.append(curve.average_planning_time())
        high_util.append(curve.planning_time_at_utilisation())
    result.series["avg_planning_time_s"] = averages
    result.series["avg_planning_time_75_95_s"] = high_util
    return result


def fig6a_planning_time_vs_hosts(
    host_counts: Sequence[int] = (4, 6, 8, 12),
    num_queries: int = 20,
    time_limit: float = 0.5,
    planner_name: str = "sqpr",
) -> FigureResult:
    """Fig. 6(a): average planning time vs number of hosts at high utilisation."""
    result = FigureResult(
        figure="Fig 6(a)",
        description="planning time vs number of hosts",
        series={"hosts": [float(h) for h in host_counts]},
    )
    scenarios = [_default_simulation(num_hosts=hosts) for hosts in host_counts]
    workloads = [scenario.workload(num_queries) for scenario in scenarios]
    return _planning_time_sweep(result, scenarios, workloads, time_limit, planner_name)


def fig6b_planning_time_vs_arity(
    arities: Sequence[int] = (2, 3, 4, 5),
    num_queries: int = 20,
    time_limit: float = 0.5,
    planner_name: str = "sqpr",
) -> FigureResult:
    """Fig. 6(b): average planning time vs query type on a fixed host count."""
    result = FigureResult(
        figure="Fig 6(b)",
        description="planning time vs query complexity",
        series={"arity": [float(a) for a in arities]},
    )
    scenarios = [_default_simulation() for _ in arities]
    workloads = [
        scenario.workload(num_queries, arities=(arity,))
        for scenario, arity in zip(scenarios, arities)
    ]
    return _planning_time_sweep(result, scenarios, workloads, time_limit, planner_name)


# ------------------------------------------------------------------- Figure 7(a)
def fig7a_cluster_efficiency(
    scenario: Optional[Scenario] = None,
    num_queries: int = 100,
    epoch_size: int = 20,
    time_limit: float = 0.3,
    planners: Sequence[str] = ("sqpr", "soda"),
) -> FigureResult:
    """Fig. 7(a): admitted queries per epoch on the cluster deployment
    scenario; by default SQPR vs SODA, but any registered planners work.
    Epoch planners (``plans_in_epochs``) receive whole epochs at once."""
    scenario = scenario or build_cluster_scenario()
    workload = scenario.workload(num_queries, arities=(2, 3))
    result = FigureResult(
        figure="Fig 7(a)",
        description="cluster deployment planning efficiency",
    )

    first_curve = None
    for name in planners:
        planner = _make_planner(name, scenario, time_limit)
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=epoch_size
        )
        result.series[name] = _curve_series(curve)
        if first_curve is None:
            first_curve = curve
    if first_curve is not None:
        result.series["submitted"] = [float(v) for v in first_curve.submitted]
    return result


# ------------------------------------------------------------------- Figure 7(b)
def _cluster_distributions(
    scenario: Scenario,
    query_counts: Sequence[int],
    time_limit: float,
    planners: Sequence[str],
) -> Dict[str, Dict[int, List[float]]]:
    """Per-host CPU and network distributions for each planner at the given
    submitted-query counts.  Planners without a live allocation are skipped."""
    workload = scenario.workload(max(query_counts), arities=(2, 3))
    instances = [
        (name, _make_planner(name, scenario, time_limit)) for name in planners
    ]
    instances = [
        (name, planner) for name, planner in instances if planner.allocation is not None
    ]
    distributions: Dict[str, Dict[int, List[float]]] = {}
    for name, _ in instances:
        distributions[f"{name}_cpu"] = {}
        distributions[f"{name}_net"] = {}

    submitted = 0
    targets = sorted(set(query_counts))
    for item in workload:
        for _, planner in instances:
            planner.submit(item)
        submitted += 1
        if submitted in targets:
            for name, planner in instances:
                hosts = planner.catalog.host_ids
                distributions[f"{name}_cpu"][submitted] = [
                    planner.allocation.cpu_utilisation(h) * 100.0 for h in hosts
                ]
                distributions[f"{name}_net"][submitted] = [
                    planner.allocation.network_usage(h) for h in hosts
                ]
    return distributions


def fig7b_cpu_distribution(
    scenario: Optional[Scenario] = None,
    query_counts: Sequence[int] = (30, 90),
    time_limit: float = 0.3,
    planners: Sequence[str] = ("sqpr", "soda"),
) -> FigureResult:
    """Fig. 7(b): CDF of per-host CPU utilisation at a low and a high
    submitted-query count."""
    scenario = scenario or build_cluster_scenario()
    distributions = _cluster_distributions(scenario, query_counts, time_limit, planners)
    result = FigureResult(
        figure="Fig 7(b)",
        description="CDF of per-host CPU utilisation (percent)",
    )
    for count in query_counts:
        for planner in planners:
            if f"{planner}_cpu" not in distributions:
                continue  # planner keeps no live allocation to sample
            values, fractions = cdf(distributions[f"{planner}_cpu"].get(count, []))
            result.series[f"{planner}_{count}_cpu_pct"] = values
            result.series[f"{planner}_{count}_cdf"] = fractions
    return result


# ------------------------------------------------------------------- Figure 7(c)
def fig7c_network_distribution(
    scenario: Optional[Scenario] = None,
    query_counts: Sequence[int] = (30, 90),
    time_limit: float = 0.3,
    planners: Sequence[str] = ("sqpr", "soda"),
) -> FigureResult:
    """Fig. 7(c): CDF of per-host network usage (Mbps)."""
    scenario = scenario or build_cluster_scenario()
    distributions = _cluster_distributions(scenario, query_counts, time_limit, planners)
    result = FigureResult(
        figure="Fig 7(c)",
        description="CDF of per-host network usage (Mbps)",
    )
    for count in query_counts:
        for planner in planners:
            if f"{planner}_net" not in distributions:
                continue  # planner keeps no live allocation to sample
            values, fractions = cdf(distributions[f"{planner}_net"].get(count, []))
            result.series[f"{planner}_{count}_net_mbps"] = values
            result.series[f"{planner}_{count}_cdf"] = fractions
    return result


# ---------------------------------------------------------------------- Figure 8
def fig8_churn_timeline(
    scenario: Optional[Scenario] = None,
    scenario_name: str = "host_flap",
    planners: Sequence[str] = ("sqpr", "heuristic", "soda"),
    seed: Optional[int] = None,
    record_every: int = 1,
) -> FigureResult:
    """Fig. 8 (beyond the paper): active queries over time under churn.

    Runs one named churn scenario (see
    :data:`repro.workloads.churn.CHURN_SCENARIOS`) through the
    discrete-event harness for every planner and charts the active-query
    and mean-CPU trajectories.  The paper's §IV-B describes the adaptive
    machinery; this figure shows what it does to an open system over time.
    """
    from repro.experiments.timeline import (
        run_named_churn_experiment,
        timeline_figure,
    )

    scenario = scenario or _default_simulation()
    results = run_named_churn_experiment(
        planners, scenario, scenario_name, seed=seed, record_every=record_every
    )
    figure = timeline_figure(results, title=scenario_name)
    figure.figure = "Fig 8"
    return figure


# --------------------------------------------------------------------- Figure 10
def fig10_federated_scaling(
    site_counts: Sequence[int] = (1, 2, 4, 6),
    inner: str = "sqpr",
    time_limit: Optional[float] = 0.6,
) -> FigureResult:
    """Fig. 10 (beyond the paper): partitioned vs. global planning time.

    For each site count, a site-local workload is planned once by the
    global ``inner`` planner and once by ``federated:<inner>``; the series
    chart total planning seconds, admissions and the speedup (see
    :mod:`repro.experiments.federated`).
    """
    from repro.experiments.federated import run_federated_scaling_experiment

    records = run_federated_scaling_experiment(
        site_counts=site_counts, inner=inner, time_limit=time_limit
    )
    result = FigureResult(
        figure="Fig 10",
        description=(
            "planning time of federated (per-site) vs global planning as "
            "the number of sites grows, site-local workloads"
        ),
    )
    result.series["num_sites"] = [float(r["num_sites"]) for r in records]
    result.series["global_planning_seconds"] = [
        float(r["global"]["planning_seconds"]) for r in records
    ]
    result.series["federated_planning_seconds"] = [
        float(r["federated"]["planning_seconds"]) for r in records
    ]
    result.series["global_admitted"] = [
        float(r["global"]["admitted"]) for r in records
    ]
    result.series["federated_admitted"] = [
        float(r["federated"]["admitted"]) for r in records
    ]
    result.series["speedup"] = [float(r["speedup"]) for r in records]
    return result
