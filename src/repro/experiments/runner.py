"""Drive planners over workloads and record admission curves.

The simulation experiments of §V-A submit one query at a time and observe
whether it can be admitted; the cluster experiments of §V-B submit queries
in epochs of 50.  :func:`run_admission_experiment` supports both styles for
any planner implementing the :class:`repro.api.Planner` protocol —
``submit(item)`` / ``submit_batch(items)`` returning
:class:`repro.api.PlanningOutcome` — and stays duck-typed for external
planner objects (``submit_epoch`` is also recognised).  A registered
planner name can be passed instead of an instance together with the
``catalog`` to plan against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.api.base import Planner, PlannerConfig
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import QueryWorkloadItem
from repro.exceptions import PlanningError


@dataclass
class AdmissionCurve:
    """The submitted-vs-satisfied curve of one experiment run.

    ``submitted[i]`` is the number of queries submitted after checkpoint
    ``i`` and ``satisfied[i]`` the cumulative number admitted; the paper's
    Figures 4, 5 and 7(a) plot exactly these series.
    """

    planner_name: str
    submitted: List[int] = field(default_factory=list)
    satisfied: List[int] = field(default_factory=list)
    planning_times: List[float] = field(default_factory=list)

    @property
    def total_submitted(self) -> int:
        """Total number of queries submitted."""
        return self.submitted[-1] if self.submitted else 0

    @property
    def total_satisfied(self) -> int:
        """Total number of queries admitted."""
        return self.satisfied[-1] if self.satisfied else 0

    @property
    def admission_fraction(self) -> float:
        """Admitted / submitted over the whole run."""
        if not self.total_submitted:
            return 0.0
        return self.total_satisfied / self.total_submitted

    def average_planning_time(self) -> float:
        """Mean per-query planning time in seconds."""
        if not self.planning_times:
            return 0.0
        return sum(self.planning_times) / len(self.planning_times)

    def planning_time_at_utilisation(self, low: float = 0.75, high: float = 0.95) -> float:
        """Mean planning time for queries submitted while the admitted
        fraction of the eventual total lies between ``low`` and ``high``.

        Fig. 6 reports planning times "when 75 %–95 % of resources are
        consumed"; the admitted-query count is our proxy for consumed
        resources.
        """
        if not self.planning_times or not self.satisfied:
            return 0.0
        final = max(1, self.total_satisfied)
        window = [
            self.planning_times[i]
            for i in range(len(self.planning_times))
            if low * final <= self.satisfied[min(i, len(self.satisfied) - 1)] <= high * final
        ]
        if not window:
            return self.average_planning_time()
        return sum(window) / len(window)


def _submit_group(planner, group: Sequence[QueryWorkloadItem]) -> List:
    """Submit a group of queries using whichever interface the planner has."""
    if len(group) > 1:
        if hasattr(planner, "submit_batch"):
            return list(planner.submit_batch(group))
        if hasattr(planner, "submit_epoch"):
            return list(planner.submit_epoch(group))
    return [planner.submit(item) for item in group]


def run_admission_experiment(
    planner: Union[str, Planner],
    workload: Sequence[QueryWorkloadItem],
    checkpoint_every: int = 10,
    group_size: Optional[int] = None,
    catalog: Optional[SystemCatalog] = None,
    config: Optional[PlannerConfig] = None,
) -> AdmissionCurve:
    """Submit ``workload`` to ``planner`` and record the admission curve.

    Parameters
    ----------
    planner:
        A planner instance, or the registry name of one (in which case
        ``catalog`` is required and the planner is built with ``config``
        via :func:`repro.api.create_planner`).
    checkpoint_every:
        Record a (submitted, satisfied) point every this many queries.
    group_size:
        Submit queries in groups of this size (1 = one at a time; the
        batching experiment of Fig. 4b and the 50-query epochs of Fig. 7 use
        larger groups).  ``None`` (the default) picks a group size matching
        the planner's design: ``checkpoint_every`` for epoch planners
        (``plans_in_epochs``), one at a time otherwise.
    """
    if isinstance(planner, str):
        if catalog is None:
            raise PlanningError(
                "passing a planner name to run_admission_experiment requires "
                "the catalog argument"
            )
        from repro.api.registry import create_planner

        planner = create_planner(planner, catalog, config=config)
    elif catalog is not None or config is not None:
        raise PlanningError(
            "catalog/config apply only when the planner is given by name; "
            "a planner instance already carries its own catalog and config"
        )
    if group_size is None:
        group_size = (
            checkpoint_every if getattr(planner, "plans_in_epochs", False) else 1
        )
    if group_size <= 0:
        raise PlanningError("group_size must be positive")
    if not hasattr(planner, "submit"):
        raise PlanningError("planner does not implement submit()")
    name = getattr(planner, "name", type(planner).__name__)
    curve = AdmissionCurve(planner_name=name)

    submitted = 0
    satisfied = 0
    pending: List[QueryWorkloadItem] = []

    def flush() -> None:
        nonlocal submitted, satisfied
        if not pending:
            return
        outcomes = _submit_group(planner, pending)
        for outcome in outcomes:
            submitted += 1
            if getattr(outcome, "admitted", False):
                satisfied += 1
            curve.planning_times.append(float(getattr(outcome, "planning_time", 0.0)))
            if submitted % checkpoint_every == 0:
                curve.submitted.append(submitted)
                curve.satisfied.append(satisfied)
        pending.clear()

    for item in workload:
        pending.append(item)
        if len(pending) >= group_size:
            flush()
    flush()
    if not curve.submitted or curve.submitted[-1] != submitted:
        curve.submitted.append(submitted)
        curve.satisfied.append(satisfied)
    return curve
