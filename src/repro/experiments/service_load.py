"""Sustained-load experiment: the admission service vs one-shot submission.

Drives Poisson query-arrival traffic at increasing rates against two
admission paths built on the *same* federated scenario:

* **sequential** — the pre-service world: every arrival is a blocking
  one-shot ``planner.submit`` call, arrivals queue up behind the solver;
* **service** — a pipelined :class:`~repro.service.AdmissionService`
  over a federated planner with parallel shards: co-arriving queries
  coalesce into batch admissions and deploys overlap the next solve.

Both paths see the identical arrival schedule and workload, and report
sustained throughput (completed admissions per second of wall-clock,
first arrival to last deployed decision) plus admission-latency
percentiles measured from each query's *scheduled* arrival time — so
queueing delay behind a saturated solver is part of the number, exactly
as a client would experience it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import PlannerConfig, create_planner
from repro.dsps.engine import ClusterEngine
from repro.experiments.federated import federated_scenario, site_local_workload
from repro.service import AdmissionService, ServiceConfig

__all__ = [
    "poisson_offsets",
    "run_sequential_load",
    "run_service_load",
    "run_service_load_experiment",
]


def poisson_offsets(rate: float, count: int, seed: int) -> List[float]:
    """Arrival-time offsets (seconds) of a Poisson process at ``rate``."""
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=count)
    return list(np.cumsum(gaps))


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def _summary(
    decisions: List[bool], latencies: List[float], duration: float
) -> Dict[str, object]:
    return {
        "submitted": len(decisions),
        "admitted": sum(decisions),
        "duration_seconds": round(duration, 3),
        "throughput_qps": round(len(decisions) / duration, 2)
        if duration > 0
        else 0.0,
        "latency_p50": round(_percentile(latencies, 50), 4),
        "latency_p99": round(_percentile(latencies, 99), 4),
        "decisions": decisions,
    }


def run_sequential_load(
    num_sites: int,
    queries_per_site: int,
    offsets: Sequence[float],
    time_limit: float = 0.6,
    seed: int = 7,
) -> Dict[str, object]:
    """One-shot blocking submission of the arrival trace."""
    scenario = federated_scenario(num_sites, seed=seed)
    workload = site_local_workload(scenario, queries_per_site=queries_per_site)
    catalog = scenario.build_catalog()
    planner = create_planner(
        "federated:sqpr",
        catalog,
        config=PlannerConfig(time_limit=time_limit),
    )
    engine = ClusterEngine(catalog)
    decisions: List[bool] = []
    latencies: List[float] = []
    start = time.perf_counter()
    for offset, item in zip(offsets, workload):
        now = time.perf_counter() - start
        if offset > now:
            time.sleep(offset - now)
        outcome = planner.submit(item)
        # Deploy path of the one-shot world: hand the engine the new
        # allocation after every admission, validating what it touched.
        allocation = planner.allocation
        hosts, streams, operators = allocation.drain_touched()
        violations = allocation.validate_delta(hosts, streams, operators)
        assert not violations, violations
        engine.adopt(allocation, trusted=True)
        decisions.append(outcome.admitted)
        latencies.append((time.perf_counter() - start) - offset)
    duration = time.perf_counter() - start
    return _summary(decisions, latencies, duration)


def run_service_load(
    num_sites: int,
    queries_per_site: int,
    offsets: Sequence[float],
    time_limit: float = 0.6,
    seed: int = 7,
    workers: int = 4,
    max_batch: int = 40,
    batch_window: float = 1.2,
    batch_time_limit: Optional[float] = 2.0,
) -> Dict[str, object]:
    """The same trace through a pipelined, batching admission service.

    The default ``batch_window`` exceeds the time a saturating arrival
    rate needs to deliver ``max_batch`` queries, so under load the
    solver *fills* each batch instead of cutting it wherever the queue
    happened to be — batch composition (and with it the admission
    outcome) stays deterministic for a fixed arrival trace rather than
    drifting with solver timing.
    """
    scenario = federated_scenario(num_sites, seed=seed)
    workload = site_local_workload(scenario, queries_per_site=queries_per_site)
    catalog = scenario.build_catalog()
    planner = create_planner(
        "federated:sqpr",
        catalog,
        config=PlannerConfig(time_limit=time_limit),
        workers=workers,
    )
    engine = ClusterEngine(catalog)
    service = AdmissionService(
        planner,
        engine=engine,
        config=ServiceConfig(
            max_batch=max_batch,
            batch_window=batch_window,
            batch_time_limit=batch_time_limit,
            overload_policy="block",
        ),
    )
    tickets = []
    start = time.perf_counter()
    with service:
        for offset, item in zip(offsets, workload):
            now = time.perf_counter() - start
            if offset > now:
                time.sleep(offset - now)
            tickets.append((offset, service.submit(item)))
        service.flush()
        duration = time.perf_counter() - start
        decisions = [
            ticket.result(timeout=60.0).admitted for _, ticket in tickets
        ]
        latencies = [
            (ticket.completed_at - start) - offset
            for offset, ticket in tickets
        ]
    result = _summary(decisions, latencies, duration)
    result["metrics"] = service.metrics.snapshot()
    return result


def run_service_load_experiment(
    load_points: Sequence[Dict[str, float]],
    num_sites: int = 4,
    time_limit: float = 0.6,
    seed: int = 7,
    **service_kwargs: object,
) -> List[Dict[str, object]]:
    """Run both admission paths over increasing Poisson arrival rates.

    ``load_points`` entries carry ``rate`` (queries/second offered) and
    ``queries_per_site``; the same seeded arrival schedule feeds both
    paths at each point.  A point may pin its own arrival-trace ``seed``
    (defaults to ``seed + index``) so that quick and full benchmark modes
    measure the identical trace at a shared load point.
    """
    records: List[Dict[str, object]] = []
    for index, point in enumerate(load_points):
        rate = float(point["rate"])
        queries_per_site = int(point["queries_per_site"])
        count = queries_per_site * num_sites
        arrival_seed = int(point.get("seed", seed + index))
        offsets = poisson_offsets(rate, count, seed=arrival_seed)
        sequential = run_sequential_load(
            num_sites,
            queries_per_site,
            offsets,
            time_limit=time_limit,
            seed=seed,
        )
        service = run_service_load(
            num_sites,
            queries_per_site,
            offsets,
            time_limit=time_limit,
            seed=seed,
            **service_kwargs,
        )
        speedup = (
            service["throughput_qps"] / sequential["throughput_qps"]
            if sequential["throughput_qps"]
            else float("inf")
        )
        records.append(
            {
                "offered_rate_qps": rate,
                "num_queries": count,
                "arrival_seed": arrival_seed,
                "sequential": sequential,
                "service": service,
                "throughput_speedup": round(speedup, 2),
            }
        )
    return records
