"""Plain-text rendering of experiment results.

The benchmark harness prints, for every reproduced figure, the same series
the paper plots.  :func:`format_table` renders those series as an aligned
text table suitable for the console and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[Cell]], title: str = "") -> str:
    """Render a mapping of named, equal-length series as a table."""
    headers = list(series.keys())
    if not headers:
        return title
    length = max(len(v) for v in series.values())
    rows = []
    for index in range(length):
        row = []
        for name in headers:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)
