"""Federated scaling experiments: partitioned vs. global planning.

The decomposition argument for :class:`~repro.core.federated.FederatedPlanner`
is quantitative: a site-local query admitted by a per-site inner planner
solves a MILP over ``hosts_per_site`` hosts, while the global planner solves
one over *all* hosts — and MILP solve time grows superlinearly in model
size, so partitioned planning gets relatively faster as sites are added.

:func:`run_federated_scaling_experiment` pins that claim: for each site
count it builds a federated scenario, generates a *site-local* workload
(every query's base streams colocate in one site — the workload class
partitioned planning is designed for), drives the same submission sequence
through the global inner planner and through ``federated:<inner>``, and
records wall-clock planning time, admissions and the final allocation
fingerprint.  At one site the federated planner degenerates to a single
shard over the whole catalog, so its decisions and allocation fingerprint
must match the inner planner exactly — the equivalence the benchmark
asserts.

``benchmarks/test_fig10_federated.py`` wraps this into the CI-facing
benchmark (``BENCH_federated.json``);
:func:`repro.experiments.figures.fig10_federated_scaling` wraps it into the
shared figure format.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import PlannerConfig, create_planner
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import (
    Scenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)

#: Scenario shape per measured site count (kept in one place so the figure
#: driver and the benchmark measure the same thing).
HOSTS_PER_SITE = 3
STREAMS_PER_HOST = 4
QUERIES_PER_SITE = 5


def federated_scenario(
    num_sites: int,
    hosts_per_site: int = HOSTS_PER_SITE,
    streams_per_host: int = STREAMS_PER_HOST,
    wan_capacity: float = 200.0,
    seed: int = 7,
) -> Scenario:
    """The scenario of one federated-scaling measurement point."""
    num_hosts = hosts_per_site * num_sites
    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=num_hosts,
            num_base_streams=streams_per_host * num_hosts,
            host_cpu_capacity=6.0,
            host_bandwidth=300.0,
            decomposition=DecompositionMode.CANONICAL,
            num_sites=num_sites,
            wan_capacity=wan_capacity,
            seed=seed,
        )
    )


def site_local_workload(
    scenario: Scenario,
    queries_per_site: int = QUERIES_PER_SITE,
    arities: Tuple[int, ...] = (2, 3),
    seed_offset: int = 0,
) -> List[QueryWorkloadItem]:
    """A workload whose every query is local to some site.

    ``queries_per_site`` queries are generated per site from that site's
    base-stream universe and interleaved round-robin across sites, so the
    submission order mixes sites the way concurrent clients would.
    """
    per_site: List[List[QueryWorkloadItem]] = []
    for site in range(scenario.num_sites):
        names = scenario.site_stream_names(site)
        generator = WorkloadGenerator(
            names,
            WorkloadSpec(
                num_queries=queries_per_site,
                arities=arities,
                zipf_exponent=1.0,
            ),
            random_state=scenario.seed + 500 + seed_offset + site,
        )
        per_site.append(generator.generate())
    return [
        per_site[site][index]
        for index in range(queries_per_site)
        for site in range(scenario.num_sites)
    ]


def run_planner_over(
    planner_name: str,
    scenario: Scenario,
    workload: Sequence[QueryWorkloadItem],
    time_limit: Optional[float],
) -> Dict[str, object]:
    """Submit ``workload`` through one planner on a fresh catalog."""
    catalog = scenario.build_catalog()
    planner = create_planner(
        planner_name, catalog, config=PlannerConfig(time_limit=time_limit)
    )
    decisions: List[bool] = []
    start = time.perf_counter()
    for item in workload:
        outcome = planner.submit(item)
        decisions.append(bool(outcome.admitted))
    elapsed = time.perf_counter() - start
    assert planner.allocation is not None
    violations = planner.allocation.validate()
    return {
        "planner": planner.name,
        "planning_seconds": elapsed,
        "admitted": sum(decisions),
        "submitted": len(decisions),
        "decisions": tuple(decisions),
        "fingerprint": planner.allocation.fingerprint(),
        "violations": violations,
    }


def run_federated_scaling_experiment(
    site_counts: Sequence[int] = (1, 2, 4, 6),
    inner: str = "sqpr",
    time_limit: Optional[float] = 0.6,
    queries_per_site: int = QUERIES_PER_SITE,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Measure global vs. federated planning across site counts.

    Returns one record per site count with the global planner's and the
    federated planner's measurements plus the planning-time speedup.
    """
    records: List[Dict[str, object]] = []
    for num_sites in site_counts:
        scenario = federated_scenario(num_sites, seed=seed)
        workload = site_local_workload(scenario, queries_per_site=queries_per_site)
        global_run = run_planner_over(inner, scenario, workload, time_limit)
        federated_run = run_planner_over(
            f"federated:{inner}", scenario, workload, time_limit
        )
        records.append(
            {
                "num_sites": num_sites,
                "num_hosts": scenario.num_hosts,
                "num_queries": len(workload),
                "global": global_run,
                "federated": federated_run,
                "speedup": (
                    global_run["planning_seconds"]
                    / max(1e-9, federated_run["planning_seconds"])
                ),
            }
        )
    return records
