"""Timeline experiments: drive planners through churn schedules.

Where :mod:`repro.experiments.runner` answers "how many of N submitted
queries can each planner admit?" (the paper's closed-workload question),
this module answers the *open-system* question the adaptive story of §IV-B
implies: with queries arriving and leaving, hosts failing and operator
costs drifting, how many queries does each planner keep running over time?

:func:`run_churn_experiment` runs one :class:`EventSchedule` against any
set of registered planners — each on a fresh catalog built from the same
scenario, so all runs start from identical initial conditions — and
returns one :class:`~repro.sim.harness.SimulationResult` per planner.
:func:`timeline_figure` folds the results into the
:class:`~repro.experiments.figures.FigureResult` format the other figure
drivers emit, and :func:`export_metrics_json` writes the raw per-tick
metrics (the CI churn-artifact format).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.api import PlannerConfig, create_planner
from repro.exceptions import SimulationError
from repro.sim.events import EventSchedule
from repro.sim.harness import SimulationHarness, SimulationResult
from repro.workloads.churn import (
    CHURN_SCENARIOS,
    ChurnTraceConfig,
    build_churn_schedule,
    build_named_churn_schedule,
)
from repro.workloads.scenarios import Scenario


def run_churn_experiment(
    planners: Sequence[str],
    scenario: Scenario,
    trace: Optional[ChurnTraceConfig] = None,
    schedule: Optional[EventSchedule] = None,
    config: Optional[PlannerConfig] = None,
    drift_threshold: float = 0.25,
    validate_invariants: bool = True,
    record_every: int = 1,
) -> Dict[str, SimulationResult]:
    """Run one churn schedule against every planner in ``planners``.

    Exactly one of ``trace`` (a config, turned into a schedule over
    ``scenario``) or ``schedule`` (a pre-built schedule) may be given;
    omitting both uses the default :class:`ChurnTraceConfig`.  Every
    planner gets a *fresh* catalog built from ``scenario``, so results are
    comparable and runs are independent.
    """
    if trace is not None and schedule is not None:
        raise SimulationError("pass either trace or schedule, not both")
    if schedule is None:
        if trace is None:
            # Default trace: seeded from the scenario, matching the named-
            # scenario path, so sweeps over differently-seeded scenarios
            # actually vary.
            trace = ChurnTraceConfig(seed=scenario.seed)
        schedule = build_churn_schedule(scenario, trace)
    results: Dict[str, SimulationResult] = {}
    for name in planners:
        catalog = scenario.build_catalog()
        planner = create_planner(name, catalog, config=config)
        harness = SimulationHarness(
            planner,
            drift_threshold=drift_threshold,
            validate_invariants=validate_invariants,
            record_every=record_every,
        )
        results[name] = harness.run(schedule)
    return results


def run_named_churn_experiment(
    planners: Sequence[str],
    scenario: Scenario,
    scenario_name: str,
    seed: Optional[int] = None,
    **kwargs,
) -> Dict[str, SimulationResult]:
    """Run one of the named ``CHURN_SCENARIOS`` against ``planners``.

    An unknown ``scenario_name`` raises
    :class:`~repro.exceptions.WorkloadError` (from
    :func:`~repro.workloads.churn.build_named_churn_schedule`).
    """
    schedule = build_named_churn_schedule(scenario_name, scenario, seed=seed)
    return run_churn_experiment(planners, scenario, schedule=schedule, **kwargs)


def timeline_figure(results: Dict[str, SimulationResult], title: str = "churn"):
    """Fold churn results into the shared :class:`FigureResult` format.

    Series per planner: the active-query trajectory (sampled at every
    recorded tick) plus the shared time axis, mirroring how the admission
    figures expose satisfied-vs-submitted curves.
    """
    from repro.experiments.figures import FigureResult  # local: keep import light

    result = FigureResult(
        figure=f"Timeline ({title})",
        description="active queries over time under churn",
    )
    for name, sim in results.items():
        result.series[f"{name}_active"] = [float(t.active) for t in sim.ticks]
        result.series[f"{name}_mean_cpu"] = [
            float(t.mean_cpu_utilisation) for t in sim.ticks
        ]
    first = next(iter(results.values()), None)
    if first is not None:
        result.series["time"] = [float(t.time) for t in first.ticks]
    return result


def export_metrics_json(results: Dict[str, SimulationResult], path: str) -> None:
    """Write every run's metrics to ``path`` as one JSON document."""
    payload = {name: sim.to_json_dict() for name, sim in results.items()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def summarise(results: Dict[str, SimulationResult]) -> List[List[object]]:
    """Rows (planner, admitted, rejected, departed, dropped, final active)
    for :func:`repro.experiments.reporting.format_table`."""
    rows: List[List[object]] = []
    for name, sim in sorted(results.items()):
        rows.append(
            [
                name,
                sim.counters["admitted"],
                sim.counters["rejected"],
                sim.counters["departures"],
                sim.counters["dropped"],
                sim.final_active,
            ]
        )
    return rows


def _main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI used by CI: run one named churn scenario, write the metrics JSON.

    ``python -m repro.experiments.timeline --quick --out CHURN_metrics.json``
    """
    import argparse

    from repro.dsps.query import DecompositionMode
    from repro.experiments.reporting import format_table
    from repro.workloads.scenarios import (
        SimulationScenarioConfig,
        build_simulation_scenario,
    )

    parser = argparse.ArgumentParser(description="run a churn simulation")
    parser.add_argument("--scenario", default="host_flap", choices=sorted(CHURN_SCENARIOS))
    parser.add_argument("--planners", nargs="+", default=["heuristic", "soda", "optimistic", "sqpr"])
    parser.add_argument("--out", default="CHURN_metrics.json")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small catalog + solver-deterministic config (the CI mode)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        scenario = build_simulation_scenario(
            SimulationScenarioConfig(
                num_hosts=3,
                num_base_streams=8,
                host_cpu_capacity=5.0,
                host_bandwidth=150.0,
                decomposition=DecompositionMode.CANONICAL,
                seed=3,
            )
        )
        config = PlannerConfig(time_limit=None)
    else:
        scenario = build_simulation_scenario()
        config = None

    results = run_named_churn_experiment(
        args.planners, scenario, args.scenario, seed=args.seed, config=config
    )
    export_metrics_json(results, args.out)
    print(
        format_table(
            ["planner", "admitted", "rejected", "departed", "dropped", "active at end"],
            summarise(results),
            title=f"churn scenario {args.scenario!r} (metrics -> {args.out})",
        )
    )


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    _main()
