"""Experiment drivers reproducing the paper's evaluation (§V).

All drivers are planner-agnostic: they construct planners by registry name
through :func:`repro.api.create_planner`, so any registered planner can be
swapped into any figure.
"""

from repro.experiments.runner import AdmissionCurve, run_admission_experiment
from repro.experiments.metrics import (
    cdf,
    optimality_gap,
    saturation_point,
    series_is_non_decreasing,
)
from repro.experiments.reporting import format_table
from repro.experiments import figures

#: Names resolved lazily from :mod:`repro.experiments.timeline` (PEP 562),
#: so `python -m repro.experiments.timeline` does not import the module as
#: a package side effect and then execute it a second time under runpy.
_TIMELINE_EXPORTS = frozenset(
    {
        "export_metrics_json",
        "run_churn_experiment",
        "run_named_churn_experiment",
        "timeline_figure",
    }
)

#: Names resolved lazily from :mod:`repro.experiments.matrix`, for the
#: same runpy double-execution reason.
_MATRIX_EXPORTS = frozenset(
    {
        "DEFAULT_PLANNERS",
        "MatrixResult",
        "generate_golden_matrix",
        "run_matrix",
        "run_matrix_cell",
    }
)


def __getattr__(name):
    if name in _TIMELINE_EXPORTS:
        from repro.experiments import timeline

        return getattr(timeline, name)
    if name in _MATRIX_EXPORTS:
        from repro.experiments import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionCurve",
    "run_admission_experiment",
    "cdf",
    "optimality_gap",
    "saturation_point",
    "series_is_non_decreasing",
    "format_table",
    "export_metrics_json",
    "run_churn_experiment",
    "run_named_churn_experiment",
    "timeline_figure",
    "DEFAULT_PLANNERS",
    "MatrixResult",
    "generate_golden_matrix",
    "run_matrix",
    "run_matrix_cell",
    "figures",
]
