"""Experiment drivers reproducing the paper's evaluation (§V).

All drivers are planner-agnostic: they construct planners by registry name
through :func:`repro.api.create_planner`, so any registered planner can be
swapped into any figure.
"""

from repro.experiments.runner import AdmissionCurve, run_admission_experiment
from repro.experiments.metrics import (
    cdf,
    optimality_gap,
    saturation_point,
    series_is_non_decreasing,
)
from repro.experiments.reporting import format_table
from repro.experiments import figures

__all__ = [
    "AdmissionCurve",
    "run_admission_experiment",
    "cdf",
    "optimality_gap",
    "saturation_point",
    "series_is_non_decreasing",
    "format_table",
    "figures",
]
