"""Metrics shared by the experiment drivers and the benchmarks."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF of ``values``: sorted values and cumulative fractions.

    This is what Fig. 7(b)/(c) plot for per-host CPU utilisation and network
    usage.
    """
    if not values:
        return [], []
    sorted_values = sorted(float(v) for v in values)
    n = len(sorted_values)
    fractions = [(i + 1) / n for i in range(n)]
    return sorted_values, fractions


def saturation_point(submitted: Sequence[int], satisfied: Sequence[int]) -> int:
    """The number of submitted queries at which admissions stop growing.

    Returns the submitted count after which the satisfied series never
    increases again (the "saturation" visible in Fig. 4a / 7a), or the last
    submitted count when the system never saturates within the run.
    """
    if not submitted or not satisfied:
        return 0
    final = satisfied[-1]
    for sub, sat in zip(submitted, satisfied):
        if sat >= final:
            return sub
    return submitted[-1]


def optimality_gap(achieved: float, upper_bound: float) -> float:
    """Relative gap between an achieved value and an upper bound (0..1)."""
    if upper_bound <= 0:
        return 0.0
    return max(0.0, (upper_bound - achieved) / upper_bound)


def series_is_non_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """Whether a series never drops by more than ``tolerance``."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return float(np.mean(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile of ``values`` (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return float(np.percentile(values, q))
