"""Baseline planners the paper compares SQPR against.

* :class:`HeuristicPlanner` — the hand-crafted greedy-reuse heuristic of
  §V-A (inspired by source-placement approaches [15]).
* :class:`SodaPlanner` — a reimplementation of the basic functionality of
  SODA [9] as described in §V-B: template-based planning in stages
  (macroQ admission, macroW placement, miniW local improvement) with stream
  gluing for reuse and no relaying.

Both return the unified :class:`repro.api.PlanningOutcome`; the old
``HeuristicOutcome`` / ``SodaOutcome`` names are deprecated aliases of it.
"""

from repro.api.base import deprecated_outcome_getattr
from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.planner import SodaPlanner

# The deprecated outcome aliases are reachable by attribute access (via the
# module __getattr__ below) but deliberately left out of __all__ so that
# star-imports do not trigger DeprecationWarning.
__all__ = [
    "HeuristicPlanner",
    "SodaPlanner",
]

__getattr__ = deprecated_outcome_getattr(
    __name__, ("HeuristicOutcome", "SodaOutcome")
)
