"""Baseline planners the paper compares SQPR against.

* :class:`HeuristicPlanner` — the hand-crafted greedy-reuse heuristic of
  §V-A (inspired by source-placement approaches [15]).
* :class:`SodaPlanner` — a reimplementation of the basic functionality of
  SODA [9] as described in §V-B: template-based planning in stages
  (macroQ admission, macroW placement, miniW local improvement) with stream
  gluing for reuse and no relaying.
"""

from repro.baselines.heuristic import HeuristicOutcome, HeuristicPlanner
from repro.baselines.soda.planner import SodaOutcome, SodaPlanner

__all__ = [
    "HeuristicPlanner",
    "HeuristicOutcome",
    "SodaPlanner",
    "SodaOutcome",
]
