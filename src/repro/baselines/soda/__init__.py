"""A reimplementation of the basic functionality of SODA (§V-B).

SODA [9] plans queries in epochs and in stages:

* :mod:`templates` — queries arrive as fixed, user-defined operator
  templates; reuse happens by "gluing" templates so each stream is generated
  exactly once,
* :mod:`macroq` — admission control by overall resource consumption,
* :mod:`macrow` — operator placement over the admitted templates,
* :mod:`miniw` — local operator swaps improving the placement,
* :mod:`planner` — the :class:`SodaPlanner` facade.
"""

from repro.api.base import deprecated_outcome_getattr
from repro.baselines.soda.planner import SodaPlanner
from repro.baselines.soda.templates import QueryTemplate, build_template

__all__ = ["SodaPlanner", "QueryTemplate", "build_template"]


__getattr__ = deprecated_outcome_getattr(__name__, ("SodaOutcome",))
