"""SODA's macroW stage: operator placement for admitted templates.

macroW assigns each template operator to a host.  The reimplemented
behaviour follows §V-B:

* templates are placed bottom-up, respecting the fixed query structure;
* an operator that already runs somewhere (glued with another template) is
  reused as-is;
* input streams are used locally when possible, otherwise they are received
  once from their *original* host (the host that produces them or injects
  them) — SODA does not relay streams through third hosts;
* among the feasible hosts, the one minimising added network traffic first
  and the resulting CPU load second is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.soda.templates import QueryTemplate
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog


@dataclass
class PlacementResult:
    """Outcome of placing one template."""

    success: bool
    allocation: Allocation
    placed_operators: List[Tuple[int, int]]  # (host, operator) placed this round


def _origin_host(catalog: SystemCatalog, allocation: Allocation, stream_id: int) -> Optional[int]:
    """The host a stream is originally produced or injected at."""
    stream = catalog.streams.get(stream_id)
    if stream.is_base:
        hosts = catalog.base_hosts_of(stream_id)
        return min(hosts) if hosts else None
    for operator in catalog.producers_of(stream_id):
        hosts = allocation.hosts_of_operator(operator.operator_id)
        if hosts:
            return min(hosts)
    return None


def _ensure_stream_at(
    catalog: SystemCatalog, allocation: Allocation, stream_id: int, host: int
) -> Optional[float]:
    """Make ``stream_id`` available at ``host``; return added inbound rate.

    Returns ``None`` when the stream cannot be brought to the host within
    the bandwidth constraints.
    """
    if allocation.is_available(host, stream_id):
        return 0.0
    stream = catalog.streams.get(stream_id)
    if stream.is_base and host in catalog.base_hosts_of(stream_id):
        allocation.available.add((host, stream_id))
        return 0.0
    origin = _origin_host(catalog, allocation, stream_id)
    if origin is None or origin == host:
        return None
    rate = catalog.stream_rate(stream_id)
    origin_obj = catalog.hosts.get(origin)
    host_obj = catalog.hosts.get(host)
    if allocation.out_bandwidth_used(origin) + rate > origin_obj.bandwidth_capacity + 1e-9:
        return None
    if allocation.in_bandwidth_used(host) + rate > host_obj.bandwidth_capacity + 1e-9:
        return None
    if allocation.link_used(origin, host) + rate > catalog.link_capacity(origin, host) + 1e-9:
        return None
    if not allocation.is_available(origin, stream_id):
        allocation.available.add((origin, stream_id))
    allocation.flows.add((origin, host, stream_id))
    allocation.available.add((host, stream_id))
    return rate


def place_template(
    catalog: SystemCatalog,
    allocation: Allocation,
    template: QueryTemplate,
) -> PlacementResult:
    """Place ``template`` on a *copy* of ``allocation`` (macroW).

    The caller decides whether to adopt the returned allocation.
    """
    working = allocation.copy()
    placed: List[Tuple[int, int]] = []

    for operator_id in template.operators:
        operator = catalog.get_operator(operator_id)
        existing_hosts = working.hosts_of_operator(operator_id)
        if existing_hosts:
            continue  # glued with an already-running template

        best_host: Optional[int] = None
        best_key: Optional[Tuple[float, float]] = None
        best_state: Optional[Allocation] = None
        for host in catalog.host_ids:
            host_obj = catalog.hosts.get(host)
            if working.cpu_used(host) + operator.cpu_cost > host_obj.cpu_capacity + 1e-9:
                continue
            trial = working.copy()
            added_network = 0.0
            feasible = True
            for input_id in operator.input_streams:
                added = _ensure_stream_at(catalog, trial, input_id, host)
                if added is None:
                    feasible = False
                    break
                added_network += added
            if not feasible:
                continue
            trial.placements.add((host, operator_id))
            trial.available.add((host, operator.output_stream))
            key = (added_network, trial.cpu_used(host))
            if best_key is None or key < best_key:
                best_key = key
                best_host = host
                best_state = trial
        if best_host is None or best_state is None:
            return PlacementResult(success=False, allocation=allocation, placed_operators=[])
        working = best_state
        placed.append((best_host, operator_id))

    # Deliver the result stream to the client from a host that has it.
    result_stream = template.result_stream
    provider_hosts = sorted(working.hosts_with_stream(result_stream))
    rate = catalog.stream_rate(result_stream)
    provider = None
    for host in provider_hosts:
        host_obj = catalog.hosts.get(host)
        if working.out_bandwidth_used(host) + rate <= host_obj.bandwidth_capacity + 1e-9:
            provider = host
            break
    if provider is None:
        return PlacementResult(success=False, allocation=allocation, placed_operators=[])
    working.provided[result_stream] = provider
    working.admitted_queries.add(template.query.query_id)
    return PlacementResult(success=True, allocation=working, placed_operators=placed)
