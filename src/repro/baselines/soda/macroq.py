"""SODA's macroQ stage: epoch-level admission control.

macroQ decides *which* queries to admit in an epoch based on their overall
resource consumption and the remaining system capacity, before any placement
is attempted.  We reproduce the behaviour relevant to the paper's
comparison: queries are considered in rank order (submission order here,
since all queries have equal importance in the experiments), the marginal
CPU requirement of each template is computed with gluing taken into account
(operators already running are free), and a query passes admission only if
the aggregate remaining CPU in the system covers that marginal requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.baselines.soda.templates import QueryTemplate
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog


@dataclass
class AdmissionDecision:
    """macroQ's verdict for one template."""

    template: QueryTemplate
    admitted: bool
    marginal_cpu: float


def marginal_cpu_requirement(
    catalog: SystemCatalog, allocation: Allocation, template: QueryTemplate
) -> float:
    """CPU the template still needs, given operators already running."""
    total = 0.0
    for operator_id in template.operators:
        if not allocation.hosts_of_operator(operator_id):
            total += catalog.get_operator(operator_id).cpu_cost
    return total


def admit_queries(
    catalog: SystemCatalog,
    allocation: Allocation,
    templates: Sequence[QueryTemplate],
) -> List[AdmissionDecision]:
    """Run macroQ over ``templates`` in rank order."""
    decisions: List[AdmissionDecision] = []
    remaining_cpu = catalog.total_cpu_capacity() - allocation.total_cpu_used()
    pledged: Set[int] = set()  # operators already counted in this epoch
    for template in templates:
        marginal = 0.0
        newly_needed = []
        for operator_id in template.operators:
            if operator_id in pledged or allocation.hosts_of_operator(operator_id):
                continue
            marginal += catalog.get_operator(operator_id).cpu_cost
            newly_needed.append(operator_id)
        admitted = marginal <= remaining_cpu + 1e-9
        if admitted:
            remaining_cpu -= marginal
            pledged.update(newly_needed)
        decisions.append(
            AdmissionDecision(template=template, admitted=admitted, marginal_cpu=marginal)
        )
    return decisions
