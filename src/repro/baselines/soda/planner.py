"""The :class:`SodaPlanner` facade: macroQ → macroW → miniW per epoch.

SODA plans in epochs: a set of newly submitted queries is considered
together, admission is decided first (macroQ), operators of the admitted
templates are placed next (macroW), and the placement is polished with local
swaps (miniW).  Queries not placeable within the epoch are rejected; SODA
never revisits them and never restructures already-running templates.

The planner registers itself as ``"soda"``; ``submit_batch`` is an epoch.
The stage that rejected a query is recorded in the outcome's
``rejection_reason`` (and as the ``rejected_by`` extra).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.api.base import (
    Planner,
    PlannerConfig,
    PlanningOutcome,
    deprecated_outcome_getattr,
)
from repro.api.registry import register_planner
from repro.baselines.soda.macroq import admit_queries
from repro.baselines.soda.macrow import place_template
from repro.baselines.soda.miniw import improve_placement
from repro.baselines.soda.templates import build_template
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.utils.timer import Stopwatch

__all__ = ["SodaPlanner"]


__getattr__ = deprecated_outcome_getattr(__name__, ("SodaOutcome",))


@register_planner("soda")
class SodaPlanner(Planner):
    """Template-based epoch planner in the spirit of SODA [9]."""

    plans_in_epochs = True

    def __init__(
        self,
        catalog: SystemCatalog,
        *,
        config: Optional[PlannerConfig] = None,
        allocation: Optional[Allocation] = None,
        use_miniw: Optional[bool] = None,
    ) -> None:
        super().__init__(catalog, config)
        self.allocation = allocation if allocation is not None else Allocation(catalog)
        self.use_miniw = use_miniw if use_miniw is not None else self.config.use_miniw

    # ---------------------------------------------------------------- submission
    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Plan a single query (an epoch of size one)."""
        return self.submit_epoch([query])[0]

    def submit_batch(
        self, queries: Sequence[Union[Query, QueryWorkloadItem]]
    ) -> List[PlanningOutcome]:
        """Plan a group of queries; for SODA a batch *is* an epoch."""
        return self.submit_epoch(queries)

    def submit_epoch(
        self, queries: Sequence[Union[Query, QueryWorkloadItem]]
    ) -> List[PlanningOutcome]:
        """Plan one epoch of queries: macroQ, then macroW + miniW per query."""
        watch = Stopwatch()
        resolved = [self._resolve_query(q) for q in queries]
        outcomes: List[PlanningOutcome] = []

        # Duplicate queries (result stream already delivered) are free.
        to_plan: List[Query] = []
        for query in resolved:
            if self.allocation.is_provided(query.result_stream):
                self.allocation.admit_query(query.query_id)
                outcomes.append(
                    PlanningOutcome(query=query, admitted=True, duplicate=True)
                )
            else:
                to_plan.append(query)

        templates = [build_template(self.catalog, q) for q in to_plan]
        decisions = admit_queries(self.catalog, self.allocation, templates)

        for decision in decisions:
            template = decision.template
            query = template.query
            if not decision.admitted:
                outcomes.append(self._rejected(query, "macroq"))
                continue
            placement = place_template(self.catalog, self.allocation, template)
            if not placement.success:
                outcomes.append(self._rejected(query, "macrow"))
                continue
            candidate = placement.allocation
            if self.use_miniw and placement.placed_operators:
                candidate = improve_placement(
                    self.catalog, candidate, placement.placed_operators
                )
            self.allocation = candidate
            outcomes.append(
                PlanningOutcome(
                    query=query,
                    admitted=True,
                    plan=self._maybe_extract_plan(query),
                )
            )

        elapsed = watch.elapsed()
        per_query = elapsed / max(1, len(resolved))
        for outcome in outcomes:
            outcome.planning_time = per_query
        ordered = self._reorder(resolved, outcomes)
        return self._record_many(ordered)

    @staticmethod
    def _rejected(query: Query, stage: str) -> PlanningOutcome:
        return PlanningOutcome(
            query=query,
            admitted=False,
            rejection_reason=stage,
            extras={"rejected_by": stage},
        )
