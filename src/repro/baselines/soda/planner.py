"""The :class:`SodaPlanner` facade: macroQ → macroW → miniW per epoch.

SODA plans in epochs: a set of newly submitted queries is considered
together, admission is decided first (macroQ), operators of the admitted
templates are placed next (macroW), and the placement is polished with local
swaps (miniW).  Queries not placeable within the epoch are rejected; SODA
never revisits them and never restructures already-running templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.baselines.soda.macroq import admit_queries
from repro.baselines.soda.macrow import place_template
from repro.baselines.soda.miniw import improve_placement
from repro.baselines.soda.templates import QueryTemplate, build_template
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanningError
from repro.utils.timer import Stopwatch


@dataclass
class SodaOutcome:
    """Result of planning one query with SODA."""

    query: Query
    admitted: bool
    duplicate: bool = False
    planning_time: float = 0.0
    rejected_by: str = ""  # "", "macroq" or "macrow"


class SodaPlanner:
    """Template-based epoch planner in the spirit of SODA [9]."""

    name = "soda"

    def __init__(
        self,
        catalog: SystemCatalog,
        allocation: Optional[Allocation] = None,
        use_miniw: bool = True,
    ) -> None:
        self.catalog = catalog
        self.allocation = allocation if allocation is not None else Allocation(catalog)
        self.use_miniw = use_miniw
        self.outcomes: List[SodaOutcome] = []

    # ---------------------------------------------------------------- submission
    def _resolve(self, query: Union[Query, QueryWorkloadItem]) -> Query:
        if isinstance(query, QueryWorkloadItem):
            return self.catalog.register_query(query)
        if isinstance(query, Query):
            return query
        raise PlanningError(
            f"submit expects a Query or QueryWorkloadItem, got {type(query).__name__}"
        )

    def submit(self, query: Union[Query, QueryWorkloadItem]) -> SodaOutcome:
        """Plan a single query (an epoch of size one)."""
        return self.submit_epoch([query])[0]

    def submit_epoch(
        self, queries: Sequence[Union[Query, QueryWorkloadItem]]
    ) -> List[SodaOutcome]:
        """Plan one epoch of queries: macroQ, then macroW + miniW per query."""
        watch = Stopwatch()
        resolved = [self._resolve(q) for q in queries]
        outcomes: List[SodaOutcome] = []

        # Duplicate queries (result stream already delivered) are free.
        to_plan: List[Query] = []
        for query in resolved:
            if self.allocation.is_provided(query.result_stream):
                self.allocation.admit_query(query.query_id)
                outcomes.append(
                    SodaOutcome(query=query, admitted=True, duplicate=True)
                )
            else:
                to_plan.append(query)

        templates = [build_template(self.catalog, q) for q in to_plan]
        decisions = admit_queries(self.catalog, self.allocation, templates)

        for decision in decisions:
            template = decision.template
            query = template.query
            if not decision.admitted:
                outcomes.append(
                    SodaOutcome(query=query, admitted=False, rejected_by="macroq")
                )
                continue
            placement = place_template(self.catalog, self.allocation, template)
            if not placement.success:
                outcomes.append(
                    SodaOutcome(query=query, admitted=False, rejected_by="macrow")
                )
                continue
            candidate = placement.allocation
            if self.use_miniw and placement.placed_operators:
                candidate = improve_placement(
                    self.catalog, candidate, placement.placed_operators
                )
            self.allocation = candidate
            outcomes.append(SodaOutcome(query=query, admitted=True))

        elapsed = watch.elapsed()
        per_query = elapsed / max(1, len(resolved))
        for outcome in outcomes:
            outcome.planning_time = per_query
        ordered = self._reorder(resolved, outcomes)
        self.outcomes.extend(ordered)
        return ordered

    @staticmethod
    def _reorder(resolved: Sequence[Query], outcomes: Sequence[SodaOutcome]) -> List[SodaOutcome]:
        by_query = {o.query.query_id: o for o in outcomes}
        return [by_query[q.query_id] for q in resolved]

    # --------------------------------------------------------------- statistics
    @property
    def num_admitted(self) -> int:
        """Number of admitted queries so far."""
        return len(self.allocation.admitted_queries)

    @property
    def num_submitted(self) -> int:
        """Number of submitted queries so far."""
        return len(self.outcomes)
