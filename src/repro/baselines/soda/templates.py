"""Query templates and template gluing.

In SODA, users submit queries as *templates*: a fixed operator graph whose
structure the scheduler must respect in every epoch ("the SODA scheduler is
bound by the initial user-given query plan").  Reuse across templates is
achieved by gluing: when two templates contain an operator producing the same
stream, the stream is generated once and shared.

In this reproduction the template of a join query is its canonical left-deep
operator chain (the same canonical decomposition the catalog registers), so
templates of overlapping queries naturally share prefix operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, canonical_chain
from repro.exceptions import PlanningError


@dataclass(frozen=True)
class QueryTemplate:
    """The fixed operator chain of one query.

    ``operators`` is ordered bottom-up: the first operator joins the first
    two base streams, the last produces the query's result stream.
    """

    query: Query
    operators: Tuple[int, ...]

    @property
    def result_stream(self) -> int:
        """The stream the template delivers to the client."""
        return self.query.result_stream

    def total_cpu(self, catalog: SystemCatalog) -> float:
        """CPU cost of running the full template (no gluing)."""
        return sum(catalog.get_operator(o).cpu_cost for o in self.operators)


def build_template(catalog: SystemCatalog, query: Query) -> QueryTemplate:
    """Build the canonical left-deep template for ``query``.

    Works for both catalog decomposition modes: the canonical chain's
    operators are looked up among the query's candidate operators (they are
    always registered, because the exhaustive decomposition is a superset of
    the canonical one).
    """
    sorted_bases = sorted(query.base_streams)
    chain = canonical_chain(sorted_bases)
    operators: List[int] = []
    previous_stream = sorted_bases[0]
    for index, subset in enumerate(chain):
        next_base = sorted_bases[index + 1]
        output = catalog.streams.find_equivalent("join", subset)
        if output is None:
            raise PlanningError(
                f"query {query.query_id} has no registered stream for {sorted(subset)}"
            )
        wanted_inputs = frozenset({previous_stream, next_base})
        chosen = None
        for operator in catalog.producers_of(output.stream_id):
            if operator.input_streams == wanted_inputs:
                chosen = operator
                break
        if chosen is None:
            # Fall back to any candidate producer of the stream (can happen
            # for exhaustive decompositions registered by other queries).
            producers = [
                op
                for op in catalog.producers_of(output.stream_id)
                if op.operator_id in query.candidate_operators
            ]
            if not producers:
                raise PlanningError(
                    f"no producer registered for stream {output.name!r}"
                )
            chosen = producers[0]
        operators.append(chosen.operator_id)
        previous_stream = output.stream_id
    return QueryTemplate(query=query, operators=tuple(operators))
