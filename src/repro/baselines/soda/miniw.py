"""SODA's miniW stage: local operator swaps.

After macroW has produced a feasible placement, miniW tries to improve it by
moving single operators between hosts.  A move is accepted when the
resulting allocation is still feasible and strictly reduces the maximum
per-host CPU load (the load-balancing objective used in the cluster
experiments of §V-B).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog


def _rebuild_flows_for_move(
    catalog: SystemCatalog,
    allocation: Allocation,
    operator_id: int,
    old_host: int,
    new_host: int,
) -> None:
    """Adjust flows after moving ``operator_id`` from ``old_host`` to ``new_host``.

    Input streams are re-fetched from their original hosts; the operator's
    output is re-exported to every host that was receiving it from
    ``old_host``.  The adjustment is structural only — feasibility is checked
    afterwards with :meth:`Allocation.validate`.
    """
    operator = catalog.get_operator(operator_id)

    # Remove the old placement and its local availability if nothing else
    # produces the output there.
    allocation.placements.discard((old_host, operator_id))
    still_produced = any(
        catalog.get_operator(o).output_stream == operator.output_stream
        for (h, o) in allocation.placements
        if h == old_host
    )
    if not still_produced:
        allocation.available.discard((old_host, operator.output_stream))

    allocation.placements.add((new_host, operator_id))
    allocation.available.add((new_host, operator.output_stream))

    # Bring inputs to the new host.
    for input_id in operator.input_streams:
        if allocation.is_available(new_host, input_id):
            continue
        stream = catalog.streams.get(input_id)
        if stream.is_base and new_host in catalog.base_hosts_of(input_id):
            allocation.available.add((new_host, input_id))
            continue
        candidates = sorted(allocation.hosts_with_stream(input_id))
        if candidates:
            source = candidates[0]
            allocation.flows.add((source, new_host, input_id))
            allocation.available.add((new_host, input_id))

    # Re-route flows of the output stream that used to leave the old host.
    rerouted = []
    for flow in list(allocation.flows):
        src, dst, stream_id = flow
        if src == old_host and stream_id == operator.output_stream and not still_produced:
            allocation.flows.discard(flow)
            if dst != new_host:
                rerouted.append((new_host, dst, stream_id))
    allocation.flows.update(rerouted)

    # Re-home the client delivery if the old host was providing the output.
    if allocation.provided.get(operator.output_stream) == old_host and not still_produced:
        allocation.provided[operator.output_stream] = new_host


def improve_placement(
    catalog: SystemCatalog,
    allocation: Allocation,
    movable: Iterable[Tuple[int, int]],
) -> Allocation:
    """Hill-climb over single-operator moves; return the improved allocation."""
    current = allocation
    improved = True
    movable = list(movable)
    while improved:
        improved = False
        current_max = current.max_cpu_used()
        for index, (host, operator_id) in enumerate(movable):
            if (host, operator_id) not in current.placements:
                continue
            for target in catalog.host_ids:
                if target == host:
                    continue
                trial = current.copy()
                _rebuild_flows_for_move(catalog, trial, operator_id, host, target)
                if trial.validate():
                    continue
                if trial.max_cpu_used() < current_max - 1e-9:
                    current = trial
                    movable[index] = (target, operator_id)
                    improved = True
                    current_max = current.max_cpu_used()
                    break
            if improved:
                break
    return current
