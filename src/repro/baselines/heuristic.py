"""The hand-crafted heuristic planner of §V-A.

For every submitted query the heuristic

1. enumerates the abstract query plans (operator trees that produce the
   query's result stream from base streams),
2. for every abstract plan and every host ``h`` tries to implement the plan
   *at host h*: streams that already exist anywhere in the system are pulled
   to ``h`` over the network (aggressively favouring complete sub-queries
   over base streams), everything else is computed locally at ``h``,
3. scores every feasible candidate with the same weighted objective SQPR
   uses, and deploys the best one.

Crucially — and this is why SQPR beats it — the heuristic never reconsiders
previous allocation decisions and never spreads a single query plan over
multiple hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Union

from repro.api.base import (
    Planner,
    PlannerConfig,
    PlanningOutcome,
    deprecated_outcome_getattr,
)
from repro.api.registry import register_planner
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.utils.timer import Stopwatch

__all__ = ["HeuristicPlanner"]


__getattr__ = deprecated_outcome_getattr(__name__, ("HeuristicOutcome",))


@dataclass
class _Candidate:
    """One (abstract plan, host) placement candidate."""

    delta: PlacementDelta
    score: float
    host: int


@register_planner("heuristic")
class HeuristicPlanner(Planner):
    """Greedy reuse heuristic with exhaustive abstract-plan enumeration."""

    def __init__(
        self,
        catalog: SystemCatalog,
        *,
        config: Optional[PlannerConfig] = None,
        weights: Optional[ObjectiveWeights] = None,
        allocation: Optional[Allocation] = None,
        max_abstract_plans: Optional[int] = None,
    ) -> None:
        super().__init__(catalog, config)
        self.weights = weights or ObjectiveWeights.paper_default(catalog)
        self.allocation = allocation if allocation is not None else Allocation(catalog)
        self.max_abstract_plans = (
            max_abstract_plans
            if max_abstract_plans is not None
            else self.config.max_abstract_plans
        )

    # ------------------------------------------------------------- abstract plans
    def _abstract_plans(self, query: Query) -> List[FrozenSet[int]]:
        """Enumerate operator sets that can produce the query's result stream."""
        catalog = self.catalog
        plans: List[FrozenSet[int]] = []

        def expand(stream_id: int) -> List[FrozenSet[int]]:
            stream = catalog.streams.get(stream_id)
            if stream.is_base:
                return [frozenset()]
            alternatives: List[FrozenSet[int]] = []
            for operator in catalog.producers_of(stream_id):
                if operator.operator_id not in query.candidate_operators:
                    continue
                partials: List[FrozenSet[int]] = [frozenset({operator.operator_id})]
                for input_id in operator.input_streams:
                    sub_plans = expand(input_id)
                    combined: List[FrozenSet[int]] = []
                    for partial in partials:
                        for sub in sub_plans:
                            combined.append(partial | sub)
                            if len(combined) >= self.max_abstract_plans:
                                break
                        if len(combined) >= self.max_abstract_plans:
                            break
                    partials = combined
                alternatives.extend(partials)
                if len(alternatives) >= self.max_abstract_plans:
                    break
            return alternatives[: self.max_abstract_plans]

        plans = expand(query.result_stream)
        return plans[: self.max_abstract_plans]

    # ----------------------------------------------------------------- placement
    def _try_place(
        self, query: Query, operators: FrozenSet[int], host: int
    ) -> Optional[_Candidate]:
        """Try to implement the abstract plan ``operators`` at ``host``."""
        catalog = self.catalog
        allocation = self.allocation
        host_obj = catalog.hosts.get(host)

        delta = PlacementDelta()
        delta.admit_queries.add(query.query_id)
        new_cpu = 0.0
        inbound: Dict[int, float] = {}  # src host -> added rate into `host`
        needed: List[int] = [query.result_stream]
        computed_here: Set[int] = set()
        pulled: Set[int] = set()
        by_output = {
            catalog.get_operator(o).output_stream: catalog.get_operator(o)
            for o in operators
        }

        while needed:
            stream_id = needed.pop()
            stream = catalog.streams.get(stream_id)
            if allocation.is_available(host, stream_id) or (host, stream_id) in delta.add_available:
                continue
            if stream.is_base and host in catalog.base_hosts_of(stream_id):
                delta.add_available.add((host, stream_id))
                continue
            # Aggressive reuse: pull the stream from any host that has it.
            existing_hosts = allocation.hosts_with_stream(stream_id)
            if existing_hosts and stream_id != query.result_stream:
                source = min(existing_hosts)
                delta.add_flows.add((source, host, stream_id))
                delta.add_available.add((host, stream_id))
                inbound[source] = inbound.get(source, 0.0) + catalog.stream_rate(stream_id)
                pulled.add(stream_id)
                continue
            # Base stream not present here and not yet in the system: pull it
            # from one of its injection points.
            if stream.is_base:
                base_hosts = catalog.base_hosts_of(stream_id)
                if not base_hosts:
                    return None
                source = min(base_hosts)
                delta.add_flows.add((source, host, stream_id))
                delta.add_available.add((host, stream_id))
                delta.add_available.add((source, stream_id))
                inbound[source] = inbound.get(source, 0.0) + catalog.stream_rate(stream_id)
                continue
            # Otherwise compute it locally with the plan's operator.
            operator = by_output.get(stream_id)
            if operator is None:
                return None
            if operator.operator_id in computed_here:
                continue
            computed_here.add(operator.operator_id)
            delta.add_placements.add((host, operator.operator_id))
            delta.add_available.add((host, stream_id))
            new_cpu += operator.cpu_cost
            needed.extend(operator.input_streams)

        delta.set_provided[query.result_stream] = host
        delta.add_available.add((host, query.result_stream))

        # ------------------------------------------------------- feasibility check
        if allocation.cpu_used(host) + new_cpu > host_obj.cpu_capacity + 1e-9:
            return None
        added_in = sum(inbound.values())
        if allocation.in_bandwidth_used(host) + added_in > host_obj.bandwidth_capacity + 1e-9:
            return None
        result_rate = catalog.stream_rate(query.result_stream)
        if (
            allocation.out_bandwidth_used(host) + result_rate
            > host_obj.bandwidth_capacity + 1e-9
        ):
            return None
        for source, added_rate in inbound.items():
            source_obj = catalog.hosts.get(source)
            if (
                allocation.out_bandwidth_used(source) + added_rate
                > source_obj.bandwidth_capacity + 1e-9
            ):
                return None
            if allocation.link_used(source, host) + added_rate > catalog.link_capacity(
                source, host
            ) + 1e-9:
                return None
        if catalog.num_sites > 1:
            # Shared WAN gateways: all new cross-site flows of this candidate
            # must fit the remaining budget of their site pair jointly.
            wan_added: Dict[tuple, float] = {}
            for src, dst, stream_id in delta.add_flows:
                src_site = catalog.site_of_host(src)
                dst_site = catalog.site_of_host(dst)
                if src_site != dst_site:
                    pair = (src_site, dst_site)
                    wan_added[pair] = wan_added.get(pair, 0.0) + catalog.stream_rate(
                        stream_id
                    )
            for (src_site, dst_site), added in wan_added.items():
                effective = catalog.effective_wan_capacity(src_site, dst_site)
                if effective is None:
                    continue
                if allocation.wan_used(src_site, dst_site) + added > effective + 1e-9:
                    return None

        # ------------------------------------------------------------------- score
        network_added = added_in
        max_load_after = max(
            allocation.cpu_used(h) + (new_cpu if h == host else 0.0)
            for h in catalog.host_ids
        )
        score = (
            self.weights.admission
            - self.weights.network * network_added
            - self.weights.cpu * new_cpu
            - self.weights.balance * max_load_after
        )
        return _Candidate(delta=delta, score=score, host=host)

    # ---------------------------------------------------------------- submission
    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Plan a single query and return the outcome."""
        watch = Stopwatch()
        query = self._resolve_query(query)

        if self.allocation.is_provided(query.result_stream):
            self.allocation.admit_query(query.query_id)
            outcome = PlanningOutcome(
                query=query, admitted=True, duplicate=True, planning_time=watch.elapsed()
            )
            return self._record(outcome)

        # Direct reuse shortcut: the result stream already exists somewhere
        # (as an intermediate of another query); providing it only costs
        # client-delivery bandwidth at that host.
        existing_hosts = self.allocation.hosts_with_stream(query.result_stream)
        result_rate = self.catalog.stream_rate(query.result_stream)
        for host in sorted(existing_hosts):
            host_obj = self.catalog.hosts.get(host)
            if (
                self.allocation.out_bandwidth_used(host) + result_rate
                <= host_obj.bandwidth_capacity + 1e-9
            ):
                delta = PlacementDelta()
                delta.set_provided[query.result_stream] = host
                delta.admit_queries.add(query.query_id)
                self.allocation.apply(delta)
                outcome = PlanningOutcome(
                    query=query,
                    admitted=True,
                    planning_time=watch.elapsed(),
                    plan=self._maybe_extract_plan(query),
                    delta=delta,
                    extras={"host": host},
                )
                return self._record(outcome)

        best: Optional[_Candidate] = None
        plans = self._abstract_plans(query)
        for operators in plans:
            for host in self.catalog.host_ids:
                candidate = self._try_place(query, operators, host)
                if candidate is not None and (best is None or candidate.score > best.score):
                    best = candidate

        admitted = best is not None
        if best is not None:
            self.allocation.apply(best.delta)
        outcome = PlanningOutcome(
            query=query,
            admitted=admitted,
            planning_time=watch.elapsed(),
            plan=self._maybe_extract_plan(query) if admitted else None,
            delta=best.delta if best else None,
            objective_value=best.score if best else None,
            rejection_reason="" if admitted else "no-feasible-placement",
            extras={
                "host": best.host if best else None,
                "plans_considered": len(plans),
            },
        )
        return self._record(outcome)
