"""Continuous queries and their decomposition into operators and streams.

A query in this reproduction is a request for the result stream of a k-way
join over a set of base streams (the workload used throughout the paper's
evaluation: equal parts two-, three- and four-way joins).  Submitting a query
to a catalog registers

* the composite streams of its decomposition (shared with other queries via
  stream equivalence), and
* the candidate operators that may produce those streams.

Two decomposition modes are supported:

``canonical``
    A single left-deep join tree over the base streams sorted by id.  Shared
    prefixes of sorted base sets yield shared sub-streams.
``exhaustive``
    Every bushy decomposition: a candidate stream for every subset of the
    base set (size >= 2) and a candidate operator for every way of splitting
    a subset into two parts.  This gives the MILP full freedom to choose the
    join order, at the price of a larger model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import CatalogError


class DecompositionMode(enum.Enum):
    """How a k-way join query is decomposed into binary operators."""

    CANONICAL = "canonical"
    EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class QueryWorkloadItem:
    """A query as produced by the workload generator, before registration.

    Attributes
    ----------
    base_names:
        Names of the base streams joined by the query.
    arity:
        Number of base streams (2 for a two-way join, etc.).
    """

    base_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.base_names) < 2:
            raise CatalogError("a join query needs at least two base streams")
        if len(set(self.base_names)) != len(self.base_names):
            raise CatalogError("a join query must reference distinct base streams")

    @property
    def arity(self) -> int:
        """Number of base streams joined."""
        return len(self.base_names)


@dataclass(frozen=True)
class Query:
    """A registered continuous query.

    Attributes
    ----------
    query_id:
        Dense id assigned by the catalog at registration time.
    result_stream:
        Id of the requested result stream (the stream with δ_s = 1).
    base_streams:
        Ids of the base streams the query joins.
    candidate_streams:
        S(q): every stream id that can appear in some plan for this query
        (base streams, intermediate composites, and the result stream).
    candidate_operators:
        O(q): every operator id that can appear in some plan for this query.
    """

    query_id: int
    result_stream: int
    base_streams: FrozenSet[int]
    candidate_streams: FrozenSet[int]
    candidate_operators: FrozenSet[int]

    @property
    def arity(self) -> int:
        """Number of base streams joined."""
        return len(self.base_streams)

    def overlaps(self, other: "Query") -> bool:
        """Whether the two queries share any candidate stream.

        This is the sharing relation SQPR uses to decide which admitted
        queries to include in the re-planning scope (§IV-A).
        """
        return bool(self.candidate_streams & other.candidate_streams)

    def __repr__(self) -> str:
        return (
            f"Query({self.query_id}, result={self.result_stream}, "
            f"arity={self.arity})"
        )


def enumerate_subsets(base_set: Sequence[int], min_size: int = 2) -> List[FrozenSet[int]]:
    """All subsets of ``base_set`` with at least ``min_size`` members.

    Ordered by size so that callers can build streams bottom-up.
    """
    items = sorted(set(int(b) for b in base_set))
    subsets: List[FrozenSet[int]] = []
    for size in range(min_size, len(items) + 1):
        for combo in itertools.combinations(items, size):
            subsets.append(frozenset(combo))
    return subsets


def enumerate_splits(subset: FrozenSet[int]) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """All unordered two-way splits of ``subset`` into non-empty parts."""
    items = sorted(subset)
    splits: List[Tuple[FrozenSet[int], FrozenSet[int]]] = []
    n = len(items)
    # Fix the first element in the left part to avoid double-counting.
    first, rest = items[0], items[1:]
    for size in range(0, len(rest) + 1):
        for combo in itertools.combinations(rest, size):
            left = frozenset((first,) + combo)
            right = subset - left
            if right:
                splits.append((left, right))
    return splits


def canonical_chain(base_set: Sequence[int]) -> List[FrozenSet[int]]:
    """The prefixes (size >= 2) of the sorted base set — the left-deep chain."""
    items = sorted(set(int(b) for b in base_set))
    return [frozenset(items[: k + 1]) for k in range(1, len(items))]
