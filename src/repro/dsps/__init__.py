"""The distributed stream processing system (DSPS) substrate.

This subpackage models everything the SQPR planner plans *over*:

* hosts with CPU and network-interface capacities (:mod:`hosts`),
* the pairwise network topology (:mod:`network`),
* base and composite streams with equivalence-based identity (:mod:`stream`),
* query operators, including the relay operator µ (:mod:`operators`),
* continuous queries built from k-way joins (:mod:`query`),
* a linear cost model for CPU and rate propagation (:mod:`cost_model`),
* query-plan trees and their validity conditions C1–C4 (:mod:`plan`),
* the live allocation state with exact resource accounting
  (:mod:`allocation`),
* resource monitors with configurable drift (:mod:`resource_monitor`), and
* a simulated DISSP-like cluster engine (:mod:`engine`).
"""

from repro.dsps.stream import Stream, StreamKind, StreamRegistry
from repro.dsps.operators import Operator, OperatorKind, RELAY_OPERATOR_NAME
from repro.dsps.hosts import Host
from repro.dsps.network import NetworkTopology
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.plan import PlanNode, QueryPlan
from repro.dsps.allocation import (
    Allocation,
    PlacementDelta,
    delta_touched_sets,
    touched_between,
)
from repro.dsps.resource_monitor import ResourceMonitor, ResourceSample
from repro.dsps.engine import ClusterEngine, DeploymentReport
from repro.dsps.subplan import (
    ReuseMatch,
    SubPlanIndex,
    SubPlanRecord,
    resolve_reuse_matches,
)

__all__ = [
    "Stream",
    "StreamKind",
    "StreamRegistry",
    "Operator",
    "OperatorKind",
    "RELAY_OPERATOR_NAME",
    "Host",
    "NetworkTopology",
    "SystemCatalog",
    "Query",
    "QueryWorkloadItem",
    "LinearCostModel",
    "PlanNode",
    "QueryPlan",
    "Allocation",
    "PlacementDelta",
    "delta_touched_sets",
    "touched_between",
    "ResourceMonitor",
    "ResourceSample",
    "ClusterEngine",
    "DeploymentReport",
    "ReuseMatch",
    "SubPlanIndex",
    "SubPlanRecord",
    "resolve_reuse_matches",
]
