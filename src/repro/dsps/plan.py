"""Query-plan trees and the paper's structural conditions C1–C4 (§III-A).

A query plan is a tree whose nodes are labelled ⟨host, operator⟩ (the
operator may be the relay µ) and whose arcs are labelled by streams.  Data
flows from the leaves towards the root; the root's outgoing arc carries the
query's result stream to the client.

:class:`QueryPlan` offers validation of the four conditions of §III-A and a
resource-summary helper.  :func:`extract_plan` reconstructs a plan tree from
a global :class:`~repro.dsps.allocation.Allocation`, which is how the
examples and the test-suite verify that the MILP solutions decoded by the
planner correspond to real, causal plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dsps.catalog import SystemCatalog
from repro.exceptions import PlanError


@dataclass
class PlanNode:
    """A node ⟨host, operator⟩ of a query plan.

    ``operator_id`` is ``None`` for a relay node (the µ operator of §II-C).
    ``children`` are the sub-plans providing this node's non-local inputs;
    ``local_inputs`` are base streams read directly at this node's host
    (the leaf arcs of condition C4).
    """

    host: int
    operator_id: Optional[int]
    output_stream: int
    children: List["PlanNode"] = field(default_factory=list)
    local_inputs: FrozenSet[int] = frozenset()

    @property
    def is_relay(self) -> bool:
        """Whether this node relays a stream rather than computing one."""
        return self.operator_id is None

    def iter_nodes(self) -> List["PlanNode"]:
        """All nodes of the subtree rooted here (pre-order)."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.iter_nodes())
        return nodes

    def __repr__(self) -> str:
        kind = "relay" if self.is_relay else f"op{self.operator_id}"
        return f"PlanNode(h{self.host}, {kind}, out={self.output_stream})"


@dataclass
class QueryPlan:
    """A complete plan for one query: a root node plus the query stream."""

    query_stream: int
    root: PlanNode

    # ------------------------------------------------------------------ structure
    def nodes(self) -> List[PlanNode]:
        """All nodes in the plan (pre-order)."""
        return self.root.iter_nodes()

    def hosts_used(self) -> FrozenSet[int]:
        """The hosts that appear in the plan."""
        return frozenset(node.host for node in self.nodes())

    def operators_used(self) -> FrozenSet[int]:
        """The (non-relay) operator ids that appear in the plan."""
        return frozenset(
            node.operator_id for node in self.nodes() if node.operator_id is not None
        )

    def num_relays(self) -> int:
        """Number of relay nodes in the plan."""
        return sum(1 for node in self.nodes() if node.is_relay)

    # ----------------------------------------------------------------- validation
    def validate(self, catalog: SystemCatalog) -> List[str]:
        """Check conditions C1–C4; return a list of violation messages."""
        violations: List[str] = []

        # C1: the arc emanating from the root carries the query stream.
        if self.root.output_stream != self.query_stream:
            violations.append(
                f"C1: root outputs stream {self.root.output_stream}, "
                f"expected query stream {self.query_stream}"
            )

        for node in self.nodes():
            child_streams = {child.output_stream for child in node.children}
            incoming = child_streams | set(node.local_inputs)

            if node.is_relay:
                # C3: a relay has exactly one incoming arc with the same label
                # as its outgoing arc.
                if len(incoming) != 1 or node.output_stream not in incoming:
                    violations.append(
                        f"C3: relay at host {node.host} must have exactly one "
                        f"incoming arc labelled {node.output_stream}, got {sorted(incoming)}"
                    )
            else:
                operator = catalog.get_operator(node.operator_id)
                # C2: incoming arcs form a superset of S_o; outgoing arc is s_o.
                if not set(operator.input_streams) <= incoming:
                    missing = set(operator.input_streams) - incoming
                    violations.append(
                        f"C2: operator {operator.name} at host {node.host} is "
                        f"missing inputs {sorted(missing)}"
                    )
                if node.output_stream != operator.output_stream:
                    violations.append(
                        f"C2: operator {operator.name} outputs stream "
                        f"{operator.output_stream}, node claims {node.output_stream}"
                    )

            # C4: base streams read locally must actually be injected there.
            for base_id in node.local_inputs:
                stream = catalog.streams.get(base_id)
                if not stream.is_base:
                    violations.append(
                        f"C4: node at host {node.host} reads non-base stream "
                        f"{stream.name} as a local input"
                    )
                elif node.host not in catalog.base_hosts_of(base_id):
                    violations.append(
                        f"C4: base stream {stream.name} is not available at "
                        f"host {node.host}"
                    )
        return violations

    def is_valid(self, catalog: SystemCatalog) -> bool:
        """Whether the plan satisfies all of C1–C4."""
        return not self.validate(catalog)

    # -------------------------------------------------------------------- costs
    def total_cpu(self, catalog: SystemCatalog) -> float:
        """Sum of γ_o over the plan's operator nodes (relays are free)."""
        return sum(
            catalog.get_operator(node.operator_id).cpu_cost
            for node in self.nodes()
            if node.operator_id is not None
        )

    def network_traffic(self, catalog: SystemCatalog) -> float:
        """Total rate shipped across hosts inside the plan (excludes client arc)."""
        traffic = 0.0
        for node in self.nodes():
            for child in node.children:
                if child.host != node.host:
                    traffic += catalog.stream_rate(child.output_stream)
        return traffic


def extract_plan(
    catalog: SystemCatalog,
    allocation,
    query_stream: int,
    read_log: Optional[Set[Tuple[int, int]]] = None,
) -> QueryPlan:
    """Reconstruct a :class:`QueryPlan` for ``query_stream`` from an allocation.

    The reconstruction prefers (in order) reading a base stream locally,
    using an operator placed at the host, and finally pulling the stream over
    a flow from another host (which materialises a relay node).  Raises
    :class:`PlanError` if the allocation does not actually provide the
    stream.

    ``read_log``, when given, accumulates every ``(host, stream)`` point of
    the allocation the reconstruction consulted — positively *or*
    negatively (an input checked and found missing is recorded too).  The
    sub-plan index keys cached plans on exactly these points: the extracted
    plan can only change if the allocation changes at a logged point, so
    re-extraction after a delta is limited to the plans whose logged points
    the delta touched.  (Placement lookups are covered by the producing
    stream's point; base-injection lookups read the catalog, not the
    allocation, and are handled by topology-change invalidation.)
    """
    from repro.dsps.allocation import Allocation  # local import to avoid a cycle

    if not isinstance(allocation, Allocation):
        raise PlanError("extract_plan expects an Allocation")
    provider = allocation.provider_of(query_stream)
    if provider is None:
        raise PlanError(f"stream {query_stream} is not provided by any host")

    def resolve(host: int, stream_id: int, visiting: Set[Tuple[int, int]]) -> PlanNode:
        key = (host, stream_id)
        if key in visiting:
            raise PlanError(
                f"cycle while resolving stream {stream_id} at host {host}"
            )
        visiting = visiting | {key}
        if read_log is not None:
            read_log.add(key)
        stream = catalog.streams.get(stream_id)

        # Prefer an operator placed at this host that produces the stream.
        if stream.is_composite:
            for operator in catalog.producers_of(stream_id):
                if allocation.has_placement(host, operator.operator_id):
                    children = []
                    local_inputs = set()
                    ok = True
                    for input_id in operator.input_streams:
                        input_stream = catalog.streams.get(input_id)
                        if read_log is not None:
                            read_log.add((host, input_id))
                        if (
                            input_stream.is_base
                            and host in catalog.base_hosts_of(input_id)
                        ):
                            local_inputs.add(input_id)
                        elif allocation.is_available(host, input_id):
                            children.append(resolve(host, input_id, visiting))
                        else:
                            ok = False
                            break
                    if ok:
                        return PlanNode(
                            host=host,
                            operator_id=operator.operator_id,
                            output_stream=stream_id,
                            children=children,
                            local_inputs=frozenset(local_inputs),
                        )

        # A base stream injected here is a leaf relay-free consumption point;
        # represent it as a relay node with a local input so the arc labels
        # remain explicit.
        if stream.is_base and host in catalog.base_hosts_of(stream_id):
            return PlanNode(
                host=host,
                operator_id=None,
                output_stream=stream_id,
                children=[],
                local_inputs=frozenset({stream_id}),
            )

        # Otherwise the stream must be flowing in from another host.
        for source in allocation.flow_sources(host, stream_id):
            child = resolve(source, stream_id, visiting)
            return PlanNode(
                host=host,
                operator_id=None,
                output_stream=stream_id,
                children=[child],
                local_inputs=frozenset(),
            )

        raise PlanError(
            f"allocation provides no way to obtain stream {stream_id} at host {host}"
        )

    root = resolve(provider, query_stream, set())
    return QueryPlan(query_stream=query_stream, root=root)


def rebuild_minimal_allocation(catalog: SystemCatalog, allocation) -> "Allocation":
    """Rebuild an allocation containing only what admitted queries need.

    For every admitted query one concrete plan is extracted from the current
    allocation and its structures (operator placements, flows, availability,
    client delivery) are copied into a fresh allocation.  Structures that no
    admitted query relies on — e.g. redundant placements left behind by a
    timed-out solver incumbent or by a removed query — are dropped.  The
    result is always a subset of the input, so it can never violate resource
    capacities the input satisfied.
    """
    from repro.dsps.allocation import Allocation  # local import to avoid a cycle

    rebuilt = Allocation(catalog)
    for query_id in sorted(allocation.admitted_queries):
        query = catalog.get_query(query_id)
        provider = allocation.provider_of(query.result_stream)
        if provider is None:
            # Admitted queries always have a provider; tolerate the
            # inconsistency rather than fail the whole rebuild.
            continue
        plan = extract_plan(catalog, allocation, query.result_stream)
        rebuilt.admitted_queries.add(query_id)
        rebuilt.provided[query.result_stream] = provider
        for node in plan.nodes():
            rebuilt.available.add((node.host, node.output_stream))
            if node.operator_id is not None:
                rebuilt.placements.add((node.host, node.operator_id))
                operator = catalog.get_operator(node.operator_id)
                for input_id in operator.input_streams:
                    rebuilt.available.add((node.host, input_id))
            for child in node.children:
                if child.host != node.host:
                    rebuilt.flows.add((child.host, node.host, child.output_stream))
                    rebuilt.available.add((node.host, child.output_stream))
    # Seed the rebuilt allocation's touched tracking with the net change
    # against its source (plus the source's own pending touches), so delta
    # validation of the successor object covers the whole event even across
    # the object replacement this rebuild performs.
    rebuilt.inherit_touched(allocation)
    return rebuilt
