"""A simulated DISSP-like cluster engine.

The engine stands in for the Java DISSP prototype of §IV-C: it owns the
catalog and the live allocation, lets a planner "deploy" placement deltas,
and reports the per-host CPU-utilisation and network-usage distributions that
the cluster experiments of §V-B plot as CDFs.

The engine deliberately does not simulate individual tuples: the paper's
cluster results are resource-level (admitted queries, CPU/network
distributions), and those are fully determined by the allocation plus the
cost model.  Operator-level drift is handled by
:class:`~repro.dsps.resource_monitor.ResourceMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dsps.allocation import Allocation, PlacementDelta, delta_touched_sets
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import extract_plan, rebuild_minimal_allocation
from repro.dsps.resource_monitor import ResourceMonitor, ResourceSample
from repro.exceptions import AllocationError, CatalogError, PlanError


@dataclass
class DeploymentReport:
    """Cluster-wide state snapshot after a deployment round."""

    num_admitted_queries: int
    cpu_utilisation: List[float]
    network_usage: List[float]
    violations: List[str] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        """Whether the deployed allocation satisfies every constraint."""
        return not self.violations

    @property
    def mean_cpu_utilisation(self) -> float:
        """Average CPU utilisation across hosts."""
        if not self.cpu_utilisation:
            return 0.0
        return sum(self.cpu_utilisation) / len(self.cpu_utilisation)

    @property
    def max_cpu_utilisation(self) -> float:
        """Maximum CPU utilisation across hosts (load-balance indicator)."""
        return max(self.cpu_utilisation, default=0.0)


@dataclass
class HostChangeReport:
    """Outcome of a host failure/recovery applied to the engine.

    ``victims`` are the admitted queries that were running (in whole or in
    part) on the affected host and had to be evicted; re-submitting them
    through a planner is the caller's job (the simulation harness does so).
    ``violations`` is the re-validation result of the surviving allocation
    and is empty in normal operation.
    """

    host: int
    victims: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the surviving allocation re-validated with no violations."""
        return not self.violations


@dataclass
class SiteChangeReport:
    """Outcome of a WAN-level event (site partition/recovery, WAN drift).

    ``site`` is the affected site id, or ``-1`` for events touching every
    gateway at once (WAN drift).  ``victims`` are the admitted queries whose
    plans crossed a now-unusable gateway and had to be evicted; re-admitting
    them (possibly confined to one side of the partition) is the caller's
    job.
    """

    site: int
    victims: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the surviving allocation re-validated with no violations."""
        return not self.violations


class ClusterEngine:
    """Owns the live allocation and applies planner decisions to it."""

    def __init__(
        self,
        catalog: SystemCatalog,
        monitor: Optional[ResourceMonitor] = None,
        strict: bool = True,
    ) -> None:
        self.catalog = catalog
        self.allocation = Allocation(catalog)
        self.monitor = monitor or ResourceMonitor(catalog)
        self.strict = strict
        self._deploy_log: List[PlacementDelta] = []
        # Whether the live allocation is known feasible.  A fresh (empty)
        # allocation trivially is; adopt() takes arbitrary external state,
        # so the first strict deploy after an adoption falls back to a full
        # validation before delta checks can be trusted again.
        self._base_validated = True

    # --------------------------------------------------------------- deployment
    def deploy(self, delta: PlacementDelta) -> None:
        """Apply a placement delta produced by a planner.

        With ``strict=True`` (the default) the engine refuses deltas that
        would leave the allocation in an infeasible state, mirroring a real
        DSPS that would fail to instantiate an over-committed plan.  The
        check is delta-based once the live allocation is known feasible:
        only the entities the delta touches need re-validation
        (:func:`~repro.dsps.allocation.delta_touched_sets`).  The first
        strict deploy after :meth:`adopt` — whose input is arbitrary
        external state — runs one full validation to (re-)establish that
        baseline.
        """
        candidate = self.allocation.copy()
        candidate.apply(delta)
        if self.strict:
            if self._base_validated:
                violations = candidate.validate_delta(
                    *delta_touched_sets(delta, self.catalog)
                )
            else:
                violations = candidate.validate()
            if violations:
                raise AllocationError(
                    "refusing to deploy an infeasible delta: " + "; ".join(violations[:5])
                )
            self._base_validated = True
        else:
            # Non-strict deploys apply the delta unchecked, so the live
            # allocation's feasibility is unknown from here on; the next
            # host-change report or strict deploy runs the full oracle.
            self._base_validated = False
        self.allocation = candidate
        self._deploy_log.append(delta)

    @property
    def num_deployments(self) -> int:
        """How many deltas have been deployed."""
        return len(self._deploy_log)

    def adopt(self, allocation: Allocation, trusted: bool = False) -> None:
        """Make ``allocation`` the engine's live allocation.

        The simulation harness keeps a planner's live allocation and the
        engine's in sync through this method: planners with allocation state
        replace (not mutate) their allocation object on garbage collection,
        so sharing by identity is not possible.

        Adoption performs no validation of its own — the adopted object
        carries its incremental indexes and touched tracking with it, so the
        caller (the harness) validates exactly what the surrounding event
        touched instead of the engine re-scanning the whole allocation here.

        ``trusted=True`` declares the adopted state already known feasible
        (the harness validates after every event, so what it hands back is
        exactly what it last checked); the engine then keeps using
        delta-based checks.  Untrusted adoptions make the next strict
        deploy / host-change report fall back to one full validation.
        """
        if allocation.catalog is not self.catalog:
            raise AllocationError(
                "cannot adopt an allocation built on a different catalog"
            )
        self.allocation = allocation
        self._base_validated = bool(trusted)

    # ------------------------------------------------------------ host lifecycle
    @property
    def active_hosts(self) -> List[int]:
        """Ids of hosts currently online."""
        return self.catalog.host_ids

    def add_host(
        self,
        cpu_capacity: float,
        bandwidth_capacity: float,
        name: Optional[str] = None,
        site: int = 0,
    ) -> int:
        """Provision a brand-new host (a host-join event) and return its id.

        On federated catalogs ``site`` places the host in an existing or
        brand-new resource site; planners learn about it through their next
        ``on_topology_change()``.
        """
        return self.catalog.add_host(
            cpu_capacity, bandwidth_capacity, name, site=site
        ).host_id

    def victims_of_host(self, host_id: int) -> List[int]:
        """Admitted queries that depend on ``host_id`` in the live allocation.

        A query is a victim when its result stream is served from the host,
        when its extracted plan touches the host, or when its plan can no
        longer be extracted at all (e.g. the host sourced one of its base
        streams).
        """
        victims: List[int] = []
        for query_id in sorted(self.allocation.admitted_queries):
            query = self.catalog.get_query(query_id)
            if self.allocation.provider_of(query.result_stream) == host_id:
                victims.append(query_id)
                continue
            try:
                plan = extract_plan(self.catalog, self.allocation, query.result_stream)
            except PlanError:
                victims.append(query_id)
                continue
            if host_id in plan.hosts_used():
                victims.append(query_id)
        return victims

    def fail_host(self, host_id: int) -> HostChangeReport:
        """Take ``host_id`` offline and evict every query depending on it.

        The host is deactivated in the catalog (planners stop considering
        it and its base-stream injections disappear), the victim queries are
        removed with garbage collection, and the surviving allocation is
        re-validated.  The report lists the victims so the caller can try to
        re-admit them elsewhere.
        """
        if not self.catalog.is_host_active(host_id):
            raise CatalogError(f"host {host_id} is already offline")
        self.catalog.deactivate_host(host_id)
        previous = self.allocation
        victims = self.victims_of_host(host_id)
        if victims:
            self.allocation = previous.without_queries(victims)
        else:
            # Even with no victims the allocation may carry redundant
            # structures on the dead host that no extracted plan uses (a
            # timed-out incumbent with garbage collection disabled leaves
            # such residue); rebuild so nothing references the host.
            self.allocation = rebuild_minimal_allocation(
                self.catalog, self.allocation
            )
        # Re-validate only what the failure touched: the structures dropped
        # by garbage collection plus the failed host itself.  The rebuilt
        # allocation's pending accumulator already holds the ground-truth
        # diff (seeded by inherit_touched); peek at it instead of
        # re-diffing, and leave it in place for the harness's own check.
        # A base of unknown feasibility (untrusted adopt) gets the full
        # oracle instead, since delta checks cannot see its prior state.
        if self._base_validated:
            hosts, streams, operators = self.allocation.peek_touched()
            hosts.add(host_id)
            violations = self.allocation.validate_delta(hosts, streams, operators)
        else:
            violations = self.allocation.validate()
        # Either way, a report with violations means the base can no longer
        # be trusted for delta-only checks.
        self._base_validated = not violations
        return HostChangeReport(
            host=host_id, victims=victims, violations=violations
        )

    # ------------------------------------------------------------ site lifecycle
    def _plan_site_pairs(self, plan) -> List[tuple]:
        """Ordered site pairs crossed by a plan's inter-host arcs."""
        catalog = self.catalog
        pairs = []
        for node in plan.nodes():
            for child in node.children:
                if child.host != node.host:
                    src_site = catalog.site_of_host(child.host)
                    dst_site = catalog.site_of_host(node.host)
                    if src_site != dst_site:
                        pairs.append((src_site, dst_site))
        return pairs

    def victims_of_site_boundary(self, site: int) -> List[int]:
        """Admitted queries whose plan crosses the boundary of ``site``.

        A query is a victim when its plan spans hosts inside *and* outside
        the site (the plan tree is connected, so spanning implies at least
        one arc crossing the gateway) or when its plan can no longer be
        extracted at all.
        """
        site_hosts = set(self.catalog.hosts_in_site(site))
        victims: List[int] = []
        for query_id in sorted(self.allocation.admitted_queries):
            query = self.catalog.get_query(query_id)
            try:
                plan = extract_plan(self.catalog, self.allocation, query.result_stream)
            except PlanError:
                victims.append(query_id)
                continue
            used = set(plan.hosts_used())
            if used & site_hosts and used - site_hosts:
                victims.append(query_id)
        return victims

    def _evict_and_revalidate(self, victims: List[int], touch_hosts) -> List[str]:
        """Shared tail of the site-level events: drop the victims, then
        re-validate the touched slice (or the full oracle on an untrusted
        base)."""
        if victims:
            self.allocation = self.allocation.without_queries(victims)
        else:
            self.allocation = rebuild_minimal_allocation(self.catalog, self.allocation)
        if self._base_validated:
            hosts, streams, operators = self.allocation.peek_touched()
            hosts.update(touch_hosts)
            violations = self.allocation.validate_delta(hosts, streams, operators)
        else:
            violations = self.allocation.validate()
        self._base_validated = not violations
        return violations

    def partition_site(self, site: int) -> SiteChangeReport:
        """Cut ``site`` off the WAN and evict every query straddling it.

        The site's hosts keep running (site-local queries survive), but any
        admitted query whose plan crossed the site's gateway is evicted;
        the report lists them so the caller can try re-admitting each one —
        a federated planner may then fit it entirely inside one side of the
        partition.
        """
        if self.catalog.is_site_partitioned(site):
            raise CatalogError(f"site {site} is already partitioned")
        self.catalog.partition_site(site)
        victims = self.victims_of_site_boundary(site)
        violations = self._evict_and_revalidate(
            victims, self.catalog.hosts_in_site(site)
        )
        return SiteChangeReport(site=site, victims=victims, violations=violations)

    def heal_site(self, site: int) -> SiteChangeReport:
        """Re-attach a partitioned site to the WAN (gateways come back)."""
        if not self.catalog.is_site_partitioned(site):
            raise CatalogError(f"site {site} is not partitioned")
        self.catalog.heal_site(site)
        # Healing only adds capacity; the allocation is unchanged, so only
        # the site's own constraints need a look on a trusted base.
        if self._base_validated:
            violations = self.allocation.validate_delta(
                set(self.catalog.hosts_in_site(site))
            )
        else:
            violations = self.allocation.validate()
        self._base_validated = not violations
        return SiteChangeReport(site=site, violations=violations)

    def apply_wan_drift(self, factor: float) -> SiteChangeReport:
        """Scale every WAN gateway capacity by ``factor`` and evict the
        queries whose gateways no longer fit.

        After the capacity change, every ordered site pair whose current
        WAN usage exceeds the new effective capacity is drained: all
        admitted queries with a plan arc on an overloaded gateway are
        evicted in one pass (survivors, by construction, put no traffic on
        those gateways).  The report lists the victims for re-admission.
        """
        self.catalog.set_wan_drift(factor)
        overloaded = set()
        for (src_site, dst_site), used in sorted(self.allocation.wan_usage().items()):
            capacity = self.catalog.effective_wan_capacity(src_site, dst_site)
            if capacity is not None and used > capacity + 1e-6:
                overloaded.add((src_site, dst_site))
        if not overloaded:
            # Capacities changed but every gateway still fits: the
            # allocation is untouched, so a trusted base stays trusted.
            violations = [] if self._base_validated else self.allocation.validate()
            self._base_validated = not violations
            return SiteChangeReport(site=-1, violations=violations)
        victims: List[int] = []
        for query_id in sorted(self.allocation.admitted_queries):
            query = self.catalog.get_query(query_id)
            try:
                plan = extract_plan(
                    self.catalog, self.allocation, query.result_stream
                )
            except PlanError:
                victims.append(query_id)
                continue
            if overloaded & set(self._plan_site_pairs(plan)):
                victims.append(query_id)
        touch_hosts = set()
        for src_site, dst_site in overloaded:
            touch_hosts.update(self.catalog.hosts_in_site(src_site))
            touch_hosts.update(self.catalog.hosts_in_site(dst_site))
        violations = self._evict_and_revalidate(victims, touch_hosts)
        return SiteChangeReport(site=-1, victims=victims, violations=violations)

    def restore_host(self, host_id: int) -> HostChangeReport:
        """Bring a failed host back online (its base streams reappear)."""
        if self.catalog.is_host_active(host_id):
            raise CatalogError(f"host {host_id} is already online")
        self.catalog.activate_host(host_id)
        # Recovery only adds capacity and base-stream injection points; the
        # allocation itself is unchanged, so only the host's own constraints
        # need a look — unless the base came from an untrusted adopt, in
        # which case the full oracle (re-)establishes feasibility.
        if self._base_validated:
            violations = self.allocation.validate_delta({host_id})
        else:
            violations = self.allocation.validate()
        self._base_validated = not violations
        return HostChangeReport(host=host_id, violations=violations)

    # ---------------------------------------------------------------- reporting
    def report(self) -> DeploymentReport:
        """Snapshot the cluster state (per-host utilisation distributions)."""
        cpu = [self.allocation.cpu_utilisation(h) for h in self.catalog.host_ids]
        net = [self.allocation.network_usage(h) for h in self.catalog.host_ids]
        return DeploymentReport(
            num_admitted_queries=len(self.allocation.admitted_queries),
            cpu_utilisation=cpu,
            network_usage=net,
            violations=self.allocation.validate(),
        )

    def samples(self) -> List[ResourceSample]:
        """Observed per-host samples from the resource monitor."""
        return self.monitor.sample_all(self.allocation)

    def reset(self) -> None:
        """Drop all deployed queries (used between experiment repetitions).

        Also clears any operator drift injected into the shared
        :class:`ResourceMonitor` — without this a later repetition would
        observe phantom drift from the previous one — and brings every
        failed host back online so repetitions start from identical state.
        """
        self.allocation = Allocation(self.catalog)
        self._base_validated = True
        self._deploy_log.clear()
        self.monitor.reset_drift()
        for host_id in self.catalog.hosts.offline_ids:
            self.catalog.activate_host(host_id)
        for site in self.catalog.partitioned_sites:
            self.catalog.heal_site(site)
        self.catalog.set_wan_drift(1.0)
