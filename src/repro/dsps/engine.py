"""A simulated DISSP-like cluster engine.

The engine stands in for the Java DISSP prototype of §IV-C: it owns the
catalog and the live allocation, lets a planner "deploy" placement deltas,
and reports the per-host CPU-utilisation and network-usage distributions that
the cluster experiments of §V-B plot as CDFs.

The engine deliberately does not simulate individual tuples: the paper's
cluster results are resource-level (admitted queries, CPU/network
distributions), and those are fully determined by the allocation plus the
cost model.  Operator-level drift is handled by
:class:`~repro.dsps.resource_monitor.ResourceMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import SystemCatalog
from repro.dsps.resource_monitor import ResourceMonitor, ResourceSample
from repro.exceptions import AllocationError


@dataclass
class DeploymentReport:
    """Cluster-wide state snapshot after a deployment round."""

    num_admitted_queries: int
    cpu_utilisation: List[float]
    network_usage: List[float]
    violations: List[str] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        """Whether the deployed allocation satisfies every constraint."""
        return not self.violations

    @property
    def mean_cpu_utilisation(self) -> float:
        """Average CPU utilisation across hosts."""
        if not self.cpu_utilisation:
            return 0.0
        return sum(self.cpu_utilisation) / len(self.cpu_utilisation)

    @property
    def max_cpu_utilisation(self) -> float:
        """Maximum CPU utilisation across hosts (load-balance indicator)."""
        return max(self.cpu_utilisation, default=0.0)


class ClusterEngine:
    """Owns the live allocation and applies planner decisions to it."""

    def __init__(
        self,
        catalog: SystemCatalog,
        monitor: Optional[ResourceMonitor] = None,
        strict: bool = True,
    ) -> None:
        self.catalog = catalog
        self.allocation = Allocation(catalog)
        self.monitor = monitor or ResourceMonitor(catalog)
        self.strict = strict
        self._deploy_log: List[PlacementDelta] = []

    # --------------------------------------------------------------- deployment
    def deploy(self, delta: PlacementDelta) -> None:
        """Apply a placement delta produced by a planner.

        With ``strict=True`` (the default) the engine refuses deltas that
        would leave the allocation in an infeasible state, mirroring a real
        DSPS that would fail to instantiate an over-committed plan.
        """
        candidate = self.allocation.copy()
        candidate.apply(delta)
        if self.strict:
            violations = candidate.validate()
            if violations:
                raise AllocationError(
                    "refusing to deploy an infeasible delta: " + "; ".join(violations[:5])
                )
        self.allocation = candidate
        self._deploy_log.append(delta)

    @property
    def num_deployments(self) -> int:
        """How many deltas have been deployed."""
        return len(self._deploy_log)

    # ---------------------------------------------------------------- reporting
    def report(self) -> DeploymentReport:
        """Snapshot the cluster state (per-host utilisation distributions)."""
        cpu = [self.allocation.cpu_utilisation(h) for h in self.catalog.host_ids]
        net = [self.allocation.network_usage(h) for h in self.catalog.host_ids]
        return DeploymentReport(
            num_admitted_queries=len(self.allocation.admitted_queries),
            cpu_utilisation=cpu,
            network_usage=net,
            violations=self.allocation.validate(),
        )

    def samples(self) -> List[ResourceSample]:
        """Observed per-host samples from the resource monitor."""
        return self.monitor.sample_all(self.allocation)

    def reset(self) -> None:
        """Drop all deployed queries (used between experiment repetitions)."""
        self.allocation = Allocation(self.catalog)
        self._deploy_log.clear()
