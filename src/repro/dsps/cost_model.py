"""The linear cost model of §II-B.

The paper assumes "a simple cost model where the required processing
resources for operators and the output stream network consumptions are
linear functions of the rates of input streams".  This module implements
exactly that:

* the CPU cost of an operator is ``cpu_fixed + cpu_per_rate * sum(input rates)``,
* the output rate of an operator is ``selectivity * sum(input rates)``.

Selectivities are a property of the *result stream* (not of the submitting
query): the paper draws join selectivities from a range (0.1 %–0.5 % on
tuple counts; we use a rate-domain range, see DESIGN.md), and stream
equivalence requires that two equivalent streams have one well-defined rate.
We therefore derive the selectivity of a composite stream deterministically
from the set of base streams it covers, using a seeded hash into the
configured range.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.utils.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class LinearCostModel:
    """Linear CPU-and-rate cost model (see module docstring).

    Parameters
    ----------
    cpu_per_rate:
        CPU units consumed per unit of summed input rate.
    cpu_fixed:
        Fixed per-operator CPU overhead.
    selectivity_low, selectivity_high:
        Range from which per-stream selectivities are drawn.
    seed:
        Seed mixed into the deterministic selectivity hash, so different
        scenarios can use different (but reproducible) selectivity draws.
    """

    cpu_per_rate: float = 0.05
    cpu_fixed: float = 0.1
    selectivity_low: float = 0.2
    selectivity_high: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_non_negative("cpu_per_rate", self.cpu_per_rate)
        check_non_negative("cpu_fixed", self.cpu_fixed)
        check_positive("selectivity_low", self.selectivity_low)
        check_in_range("selectivity_high", self.selectivity_high, self.selectivity_low, 10.0)

    # ----------------------------------------------------------------- selectivity
    def selectivity(self, base_set: Iterable[int]) -> float:
        """Deterministic selectivity for the stream covering ``base_set``."""
        key = ",".join(str(b) for b in sorted(set(int(b) for b in base_set)))
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("ascii")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(2**64)
        return self.selectivity_low + fraction * (self.selectivity_high - self.selectivity_low)

    # ----------------------------------------------------------------------- rates
    def output_rate(self, input_rates: Sequence[float], base_set: Iterable[int]) -> float:
        """Rate of the stream produced from inputs with the given rates."""
        total_in = float(sum(input_rates))
        return self.selectivity(base_set) * total_in

    # ------------------------------------------------------------------------ CPU
    def operator_cpu_cost(self, input_rates: Sequence[float]) -> float:
        """γ_o for an operator consuming inputs with the given rates."""
        return self.cpu_fixed + self.cpu_per_rate * float(sum(input_rates))

    # ------------------------------------------------------------------ estimation
    def estimate_with_error(
        self, true_value: float, relative_error: float
    ) -> float:
        """Apply a relative estimation error (used by adaptive re-planning tests)."""
        return max(0.0, true_value * (1.0 + relative_error))
