"""The network topology: pairwise link capacities κ(h, m).

The evaluation scenarios in the paper use a flat data-centre LAN (every pair
of hosts connected with the same capacity), but the model supports arbitrary
per-pair capacities, so heterogeneous topologies (e.g. oversubscribed racks)
can be expressed as well.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import CatalogError
from repro.utils.validation import check_non_negative, check_positive


class NetworkTopology:
    """Directed link capacities between hosts.

    Capacities are stored per ordered pair ``(src, dst)``.  A default
    capacity applies to every pair that has not been set explicitly; a
    capacity of zero means the two hosts cannot exchange streams directly.
    """

    def __init__(self, num_hosts: int, default_capacity: float) -> None:
        if num_hosts <= 0:
            raise CatalogError("topology needs at least one host")
        check_non_negative("default link capacity", default_capacity)
        self._num_hosts = int(num_hosts)
        self._default = float(default_capacity)
        self._overrides: Dict[Tuple[int, int], float] = {}

    @property
    def num_hosts(self) -> int:
        """Number of hosts the topology spans."""
        return self._num_hosts

    @property
    def default_capacity(self) -> float:
        """Capacity used for pairs without an explicit override."""
        return self._default

    def _check_pair(self, src: int, dst: int) -> None:
        for h in (src, dst):
            if not 0 <= h < self._num_hosts:
                raise CatalogError(f"host id {h} outside topology of {self._num_hosts} hosts")

    def set_capacity(self, src: int, dst: int, capacity: float, symmetric: bool = True) -> None:
        """Set the capacity of link ``src -> dst`` (and the reverse link)."""
        self._check_pair(src, dst)
        check_non_negative("link capacity", capacity)
        self._overrides[(src, dst)] = float(capacity)
        if symmetric:
            self._overrides[(dst, src)] = float(capacity)

    def capacity(self, src: int, dst: int) -> float:
        """κ(src, dst); zero for the self-loop (no network needed locally)."""
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        return self._overrides.get((src, dst), self._default)

    def scaled(self, factor: float) -> "NetworkTopology":
        """Return a copy with every capacity multiplied by ``factor``."""
        check_positive("scale factor", factor)
        clone = NetworkTopology(self._num_hosts, self._default * factor)
        for (src, dst), cap in self._overrides.items():
            clone._overrides[(src, dst)] = cap * factor
        return clone

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All ordered pairs of distinct hosts."""
        for src in range(self._num_hosts):
            for dst in range(self._num_hosts):
                if src != dst:
                    yield (src, dst)
