"""The network topology: pairwise link capacities κ(h, m) plus sites.

The evaluation scenarios in the paper use a flat data-centre LAN (every pair
of hosts connected with the same capacity), but the model supports arbitrary
per-pair capacities, so heterogeneous topologies (e.g. oversubscribed racks)
can be expressed as well.

Federated deployments add a second, hierarchical layer: hosts belong to
*sites*, pairs of sites are connected by WAN gateway links, and the gateway
capacity is *shared* by every host-pair flow crossing that site pair.  WAN
links are directed, so asymmetric up/down provisioning (a common property
of wide-area links) is expressible; :meth:`set_wan_capacity` defaults to
symmetric for convenience.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.exceptions import CatalogError
from repro.utils.validation import check_non_negative, check_positive


class NetworkTopology:
    """Directed link capacities between hosts, optionally grouped into sites.

    Capacities are stored per ordered pair ``(src, dst)``.  A default
    capacity applies to every pair that has not been set explicitly; a
    capacity of zero means the two hosts cannot exchange streams directly.

    When a site assignment is given, the topology is *hierarchical*: the
    per-pair capacities describe the intra-site (or point-to-point) links,
    while :meth:`wan_capacity` describes the shared gateway capacity between
    two sites.  A WAN capacity of ``None`` means the gateway is
    unconstrained (the flat-cluster behaviour).
    """

    def __init__(
        self,
        num_hosts: int,
        default_capacity: float,
        sites: Optional[Sequence[int]] = None,
        default_wan_capacity: Optional[float] = None,
    ) -> None:
        if num_hosts <= 0:
            raise CatalogError("topology needs at least one host")
        check_non_negative("default link capacity", default_capacity)
        self._num_hosts = int(num_hosts)
        self._default = float(default_capacity)
        self._overrides: Dict[Tuple[int, int], float] = {}
        if sites is None:
            self._sites = [0] * self._num_hosts
        else:
            if len(sites) != self._num_hosts:
                raise CatalogError(
                    f"site assignment covers {len(sites)} hosts, "
                    f"topology has {self._num_hosts}"
                )
            self._sites = [int(s) for s in sites]
            if any(s < 0 for s in self._sites):
                raise CatalogError("site ids must be non-negative")
        if default_wan_capacity is not None:
            check_non_negative("default WAN capacity", default_wan_capacity)
            default_wan_capacity = float(default_wan_capacity)
        self._default_wan = default_wan_capacity
        self._wan_overrides: Dict[Tuple[int, int], float] = {}

    @property
    def num_hosts(self) -> int:
        """Number of hosts the topology spans."""
        return self._num_hosts

    @property
    def default_capacity(self) -> float:
        """Capacity used for pairs without an explicit override."""
        return self._default

    def _check_pair(self, src: int, dst: int) -> None:
        for h in (src, dst):
            if not 0 <= h < self._num_hosts:
                raise CatalogError(f"host id {h} outside topology of {self._num_hosts} hosts")

    def set_capacity(self, src: int, dst: int, capacity: float, symmetric: bool = True) -> None:
        """Set the capacity of link ``src -> dst`` (and, by default, the
        reverse link; pass ``symmetric=False`` for asymmetric links)."""
        self._check_pair(src, dst)
        check_non_negative("link capacity", capacity)
        self._overrides[(src, dst)] = float(capacity)
        if symmetric:
            self._overrides[(dst, src)] = float(capacity)

    def capacity(self, src: int, dst: int) -> float:
        """κ(src, dst); zero for the self-loop (no network needed locally)."""
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        return self._overrides.get((src, dst), self._default)

    # ---------------------------------------------------------------- sites/WAN
    @property
    def sites(self) -> Tuple[int, ...]:
        """Sorted distinct site ids of the topology."""
        return tuple(sorted(set(self._sites)))

    @property
    def num_sites(self) -> int:
        """Number of distinct sites (1 for a flat cluster)."""
        return len(set(self._sites))

    def site_of(self, host: int) -> int:
        """The site ``host`` belongs to."""
        self._check_pair(host, host)
        return self._sites[host]

    def hosts_in_site(self, site: int) -> Tuple[int, ...]:
        """All host ids assigned to ``site``, in id order."""
        return tuple(h for h, s in enumerate(self._sites) if s == site)

    def _check_site_pair(self, src_site: int, dst_site: int) -> None:
        known = set(self._sites)
        for s in (src_site, dst_site):
            if s not in known:
                raise CatalogError(f"unknown site id {s}; sites: {sorted(known)}")

    def set_wan_capacity(
        self,
        src_site: int,
        dst_site: int,
        capacity: float,
        symmetric: bool = True,
    ) -> None:
        """Set the shared gateway capacity ``src_site -> dst_site``.

        WAN links are directed; ``symmetric=False`` expresses the common
        asymmetric up/down provisioning of wide-area links.
        """
        self._check_site_pair(src_site, dst_site)
        if src_site == dst_site:
            raise CatalogError("WAN capacity applies to distinct site pairs")
        check_non_negative("WAN capacity", capacity)
        self._wan_overrides[(src_site, dst_site)] = float(capacity)
        if symmetric:
            self._wan_overrides[(dst_site, src_site)] = float(capacity)

    def wan_capacity(self, src_site: int, dst_site: int) -> Optional[float]:
        """Shared gateway capacity ``src_site -> dst_site``.

        ``None`` means unconstrained; the intra-site "pair" returns ``None``
        as well because traffic inside a site never crosses a gateway.
        """
        self._check_site_pair(src_site, dst_site)
        if src_site == dst_site:
            return None
        return self._wan_overrides.get((src_site, dst_site), self._default_wan)

    def site_pairs(self) -> Iterable[Tuple[int, int]]:
        """All ordered pairs of distinct sites."""
        sites = self.sites
        for src in sites:
            for dst in sites:
                if src != dst:
                    yield (src, dst)

    # ----------------------------------------------------------------- copying
    def scaled(self, factor: float) -> "NetworkTopology":
        """Return a copy with every capacity (links *and* WAN gateways)
        multiplied by ``factor``; the site assignment is preserved."""
        check_positive("scale factor", factor)
        clone = NetworkTopology(
            self._num_hosts,
            self._default * factor,
            sites=list(self._sites),
            default_wan_capacity=(
                None if self._default_wan is None else self._default_wan * factor
            ),
        )
        for (src, dst), cap in self._overrides.items():
            clone._overrides[(src, dst)] = cap * factor
        for (src, dst), cap in self._wan_overrides.items():
            clone._wan_overrides[(src, dst)] = cap * factor
        return clone

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All ordered pairs of distinct hosts."""
        for src in range(self._num_hosts):
            for dst in range(self._num_hosts):
                if src != dst:
                    yield (src, dst)
