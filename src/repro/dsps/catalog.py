"""The system catalog: hosts, network, streams, operators and queries.

The catalog is the single source of truth the planners operate on.  It owns

* the set of hosts and the network topology (resource capacities),
* the stream registry (with equivalence-based identity),
* the operator universe (deduplicated by signature),
* the placement of base streams on hosts (S0h), and
* the registered queries with their candidate streams S(q) and operators
  O(q), which drive SQPR's problem-reduction step.

Registering a query is idempotent with respect to stream/operator creation:
overlapping queries share composite streams and operators, which is exactly
what makes reuse possible.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dsps.cost_model import LinearCostModel
from repro.dsps.hosts import Host, HostSet
from repro.dsps.network import NetworkTopology
from repro.dsps.operators import Operator, OperatorKind
from repro.dsps.query import (
    DecompositionMode,
    Query,
    QueryWorkloadItem,
    canonical_chain,
    enumerate_splits,
    enumerate_subsets,
)
from repro.dsps.stream import Stream, StreamRegistry
from repro.exceptions import CatalogError
from repro.utils.validation import check_positive


class SystemCatalog:
    """Hosts, streams, operators and queries of one DSPS instance."""

    def __init__(
        self,
        cost_model: Optional[LinearCostModel] = None,
        decomposition: DecompositionMode = DecompositionMode.CANONICAL,
        default_link_capacity: float = 1000.0,
        default_wan_capacity: Optional[float] = None,
    ) -> None:
        self.cost_model = cost_model or LinearCostModel()
        self.decomposition = decomposition
        self.hosts = HostSet()
        self.streams = StreamRegistry()
        self._default_link_capacity = check_positive(
            "default link capacity", default_link_capacity
        )
        self._link_overrides: Dict[Tuple[int, int], float] = {}
        if default_wan_capacity is not None:
            default_wan_capacity = float(default_wan_capacity)
            if default_wan_capacity < 0:
                raise CatalogError("default WAN capacity must be non-negative")
        self._default_wan_capacity = default_wan_capacity
        self._wan_overrides: Dict[Tuple[int, int], float] = {}
        self._wan_drift = 1.0
        self._partitioned_sites: Set[int] = set()
        self._operators: List[Operator] = []
        self._operators_by_signature: Dict[Tuple, Operator] = {}
        self._producers: Dict[int, List[Operator]] = {}
        self._base_hosts: Dict[int, Set[int]] = {}
        self._base_at_host: Dict[int, Set[int]] = {}
        self._queries: List[Query] = []
        self._queries_by_result: Dict[int, List[Query]] = {}
        #: Every registered workload item in registration order.  Query,
        #: stream and operator ids are deterministic functions of the
        #: catalog state and the item sequence, so replaying a suffix of
        #: this log on a catalog replica (a federated process worker)
        #: reproduces the parent's ids exactly — the log *is* the
        #: registration wire format.
        self._registration_log: List[QueryWorkloadItem] = []

    # ------------------------------------------------------------------ hosts
    def add_host(
        self,
        cpu_capacity: float,
        bandwidth_capacity: float,
        name: Optional[str] = None,
        site: int = 0,
    ) -> Host:
        """Register a host with the given CPU and NIC capacities.

        ``site`` assigns the host to a resource site; the default keeps
        every host in site 0 (a flat cluster).
        """
        name = name or f"host{len(self.hosts)}"
        return self.hosts.add(name, cpu_capacity, bandwidth_capacity, site=site)

    @property
    def num_hosts(self) -> int:
        """Number of registered hosts (online or not; ids stay dense)."""
        return len(self.hosts)

    @property
    def host_ids(self) -> List[int]:
        """Active host ids in order.

        Every placement decision in the library iterates this view, so
        deactivating a host removes it from consideration by all planners
        at once.
        """
        return self.hosts.ids

    # ------------------------------------------------------------ host lifecycle
    def deactivate_host(self, host_id: int) -> None:
        """Take a host offline (a failure): planners stop seeing it and base
        streams injected there become unavailable until reactivation."""
        self.hosts.deactivate(host_id)

    def activate_host(self, host_id: int) -> None:
        """Bring a failed host back online (a host join/recovery)."""
        self.hosts.activate(host_id)

    def is_host_active(self, host_id: int) -> bool:
        """Whether ``host_id`` is currently online."""
        return self.hosts.is_active(host_id)

    # -------------------------------------------------------------------- sites
    def site_of_host(self, host_id: int) -> int:
        """The resource site ``host_id`` belongs to."""
        return self.hosts.site_of(host_id)

    @property
    def sites(self) -> List[int]:
        """Sorted distinct site ids over the registered hosts."""
        return self.hosts.sites

    @property
    def num_sites(self) -> int:
        """Number of distinct resource sites (1 for a flat cluster)."""
        return self.hosts.num_sites

    def hosts_in_site(self, site: int) -> List[int]:
        """All registered host ids of ``site`` (online or not)."""
        return self.hosts.ids_in_site(site)

    def active_hosts_in_site(self, site: int) -> List[int]:
        """Online host ids of ``site``."""
        return self.hosts.active_ids_in_site(site)

    # ------------------------------------------------------------ site lifecycle
    def partition_site(self, site: int) -> None:
        """Cut ``site`` off the WAN: its hosts keep running and can plan
        site-locally, but no stream may cross its gateway until
        :meth:`heal_site`."""
        if site not in set(self.hosts.sites):
            raise CatalogError(f"unknown site id {site}")
        self._partitioned_sites.add(site)

    def heal_site(self, site: int) -> None:
        """Re-attach a partitioned site to the WAN."""
        if site not in set(self.hosts.sites):
            raise CatalogError(f"unknown site id {site}")
        self._partitioned_sites.discard(site)

    def is_site_partitioned(self, site: int) -> bool:
        """Whether ``site`` is currently cut off the WAN."""
        return site in self._partitioned_sites

    @property
    def partitioned_sites(self) -> List[int]:
        """Ids of sites currently partitioned, sorted."""
        return sorted(self._partitioned_sites)

    # ---------------------------------------------------------------- topology
    def set_link_capacity(
        self, src: int, dst: int, capacity: float, symmetric: bool = True
    ) -> None:
        """Override the capacity of the link ``src -> dst``.

        By default the reverse link gets the same capacity; pass
        ``symmetric=False`` for asymmetric links (WAN up/down capacities
        commonly differ).
        """
        self._link_overrides[(src, dst)] = float(capacity)
        if symmetric:
            self._link_overrides[(dst, src)] = float(capacity)

    def link_capacity(self, src: int, dst: int) -> float:
        """κ(src, dst); zero on the self-loop.

        On federated topologies a cross-site pair is additionally capped at
        the current *effective* WAN gateway capacity of its site pair (zero
        across a partition, scaled under WAN drift) — no single host-pair
        link can offer more than the gateway it runs through, and the cap
        is what makes every planner decline unroutable cross-site flows.
        The *shared* gateway budget across host pairs is enforced by
        :meth:`Allocation.validate` and the planners' own WAN checks.
        """
        if src == dst:
            return 0.0
        capacity = self._link_overrides.get((src, dst), self._default_link_capacity)
        if self.hosts.num_sites > 1:
            src_site = self.hosts.site_of(src)
            dst_site = self.hosts.site_of(dst)
            if src_site != dst_site:
                effective = self.effective_wan_capacity(src_site, dst_site)
                if effective is not None:
                    capacity = min(capacity, effective)
        return capacity

    # -------------------------------------------------------------- WAN gateways
    def set_wan_capacity(
        self,
        src_site: int,
        dst_site: int,
        capacity: float,
        symmetric: bool = True,
    ) -> None:
        """Set the shared gateway capacity of the WAN link ``src_site ->
        dst_site`` (and, by default, the reverse direction).

        Unlike per-host-pair link capacities, the WAN capacity is shared by
        *every* flow crossing that site pair — the defining constraint of
        federated deployments.
        """
        known = set(self.hosts.sites)
        for s in (src_site, dst_site):
            if s not in known:
                raise CatalogError(f"unknown site id {s}; sites: {sorted(known)}")
        if src_site == dst_site:
            raise CatalogError("WAN capacity applies to distinct site pairs")
        if capacity < 0:
            raise CatalogError("WAN capacity must be non-negative")
        self._wan_overrides[(src_site, dst_site)] = float(capacity)
        if symmetric:
            self._wan_overrides[(dst_site, src_site)] = float(capacity)

    def wan_capacity(self, src_site: int, dst_site: int) -> Optional[float]:
        """Configured gateway capacity ``src_site -> dst_site``.

        ``None`` means unconstrained (also for the intra-site "pair"), which
        keeps single-site catalogs byte-compatible with the flat model.
        """
        if src_site == dst_site:
            return None
        return self._wan_overrides.get(
            (src_site, dst_site), self._default_wan_capacity
        )

    def effective_wan_capacity(self, src_site: int, dst_site: int) -> Optional[float]:
        """The capacity :meth:`Allocation.validate` enforces right now.

        A partitioned endpoint forces the gateway to zero; otherwise the
        configured capacity is scaled by the current WAN drift factor
        (``None`` stays unconstrained).
        """
        if src_site == dst_site:
            return None
        if src_site in self._partitioned_sites or dst_site in self._partitioned_sites:
            return 0.0
        capacity = self.wan_capacity(src_site, dst_site)
        if capacity is None:
            return None
        return capacity * self._wan_drift

    @property
    def wan_drift(self) -> float:
        """Current multiplicative WAN drift factor (1.0 = nominal)."""
        return self._wan_drift

    def set_wan_drift(self, factor: float) -> None:
        """Scale every WAN gateway capacity by ``factor`` (congestion when
        below 1.0); the configured capacities themselves are untouched."""
        check_positive("WAN drift factor", factor)
        self._wan_drift = float(factor)

    def topology(self) -> NetworkTopology:
        """Materialise the current topology as a :class:`NetworkTopology`."""
        topo = NetworkTopology(
            max(1, self.num_hosts),
            self._default_link_capacity,
            sites=[self.hosts.site_of(h) for h in self.hosts.all_ids] or None,
            default_wan_capacity=self._default_wan_capacity,
        )
        for (src, dst), capacity in self._link_overrides.items():
            topo.set_capacity(src, dst, capacity, symmetric=False)
        for (src_site, dst_site), capacity in self._wan_overrides.items():
            topo.set_wan_capacity(src_site, dst_site, capacity, symmetric=False)
        return topo

    # ----------------------------------------------------------------- streams
    def add_base_stream(self, name: str, rate: float, host_id: int) -> Stream:
        """Register a base stream available at ``host_id``."""
        self.hosts.get(host_id)  # validates the id
        stream = self.streams.add_base_stream(name, rate)
        self._base_hosts.setdefault(stream.stream_id, set()).add(host_id)
        self._base_at_host.setdefault(host_id, set()).add(stream.stream_id)
        return stream

    def add_base_stream_location(self, stream_id: int, host_id: int) -> None:
        """Make an existing base stream also available at ``host_id``."""
        stream = self.streams.get(stream_id)
        if not stream.is_base:
            raise CatalogError(f"stream {stream.name!r} is not a base stream")
        self.hosts.get(host_id)
        self._base_hosts.setdefault(stream_id, set()).add(host_id)
        self._base_at_host.setdefault(host_id, set()).add(stream_id)

    def base_hosts_of(self, stream_id: int) -> FrozenSet[int]:
        """*Active* hosts at which the given base stream is injected.

        Injection points on offline hosts are hidden — a failed host stops
        sourcing its base streams — and reappear when the host is
        reactivated.
        """
        return frozenset(
            h
            for h in self._base_hosts.get(stream_id, set())
            if self.hosts.is_active(h)
        )

    def base_streams_at(self, host_id: int) -> FrozenSet[int]:
        """S0h — base streams available at ``host_id`` (empty when offline)."""
        if not self.hosts.is_active(host_id):
            return frozenset()
        return frozenset(self._base_at_host.get(host_id, set()))

    def base_streams_registered_at(self, host_id: int) -> FrozenSet[int]:
        """Base streams whose injection point is ``host_id``, alive or not.

        Unlike :meth:`base_streams_at` this ignores liveness: delta
        validation uses it to learn which streams *lost* a source when a
        host went offline, so their flow graphs can be re-checked.
        """
        return frozenset(self._base_at_host.get(host_id, set()))

    def stream_rate(self, stream_id: int) -> float:
        """ϱ_s for any registered stream."""
        return self.streams.get(stream_id).rate

    # --------------------------------------------------------------- operators
    def _register_operator(
        self,
        kind: OperatorKind,
        input_streams: Iterable[int],
        output_stream: int,
        cpu_cost: float,
        name: Optional[str] = None,
    ) -> Operator:
        inputs = frozenset(int(s) for s in input_streams)
        signature = (kind.value, inputs, int(output_stream))
        existing = self._operators_by_signature.get(signature)
        if existing is not None:
            return existing
        operator = Operator(
            operator_id=len(self._operators),
            name=name or f"{kind.value}_op_{len(self._operators)}",
            kind=kind,
            input_streams=inputs,
            output_stream=int(output_stream),
            cpu_cost=float(cpu_cost),
        )
        self._operators.append(operator)
        self._operators_by_signature[signature] = operator
        self._producers.setdefault(operator.output_stream, []).append(operator)
        return operator

    def get_operator(self, operator_id: int) -> Operator:
        """Look up an operator by id."""
        try:
            return self._operators[operator_id]
        except IndexError:
            raise CatalogError(f"unknown operator id {operator_id}") from None

    @property
    def operators(self) -> List[Operator]:
        """All operators in id order."""
        return list(self._operators)

    @property
    def num_operators(self) -> int:
        """Number of registered operators."""
        return len(self._operators)

    def producers_of(self, stream_id: int) -> List[Operator]:
        """All operators whose output stream is ``stream_id``."""
        return list(self._producers.get(stream_id, []))

    # ------------------------------------------------------- composite streams
    def _ensure_composite_stream(self, base_set: FrozenSet[int]) -> Stream:
        """Create (or fetch) the join stream covering ``base_set``."""
        existing = self.streams.find_equivalent("join", base_set)
        if existing is not None:
            return existing
        rates = [self.streams.get(b).rate for b in base_set]
        rate = self.cost_model.output_rate(rates, base_set)
        return self.streams.add_composite_stream("join", base_set, rate)

    def _stream_for_subset(self, subset: FrozenSet[int]) -> Stream:
        """The stream covering ``subset`` — a base stream or a join stream."""
        if len(subset) == 1:
            (only,) = subset
            return self.streams.get(only)
        return self._ensure_composite_stream(subset)

    # ------------------------------------------------------------------ queries
    def register_query(self, item: QueryWorkloadItem) -> Query:
        """Register a join query and return its :class:`Query` descriptor.

        Creates (or reuses) the composite streams and candidate operators of
        the query's decomposition according to the catalog's
        :class:`DecompositionMode`.
        """
        base_ids = []
        for name in item.base_names:
            stream = self.streams.get_by_name(name)
            if not stream.is_base:
                raise CatalogError(f"query references non-base stream {name!r}")
            base_ids.append(stream.stream_id)
        base_set = frozenset(base_ids)
        if len(base_set) != len(base_ids):
            raise CatalogError("query references duplicate base streams")

        candidate_streams: Set[int] = set(base_set)
        candidate_operators: Set[int] = set()

        if self.decomposition is DecompositionMode.CANONICAL:
            chain = canonical_chain(sorted(base_set))
            previous: Stream = self.streams.get(min(base_set))
            sorted_bases = sorted(base_set)
            previous = self.streams.get(sorted_bases[0])
            for index, subset in enumerate(chain):
                next_base = self.streams.get(sorted_bases[index + 1])
                output = self._ensure_composite_stream(subset)
                inputs = frozenset({previous.stream_id, next_base.stream_id})
                cpu = self.cost_model.operator_cpu_cost(
                    [previous.rate, next_base.rate]
                )
                operator = self._register_operator(
                    OperatorKind.JOIN, inputs, output.stream_id, cpu
                )
                candidate_streams.add(output.stream_id)
                candidate_operators.add(operator.operator_id)
                previous = output
            result_stream = previous
        else:
            subsets = enumerate_subsets(sorted(base_set))
            for subset in subsets:
                output = self._ensure_composite_stream(subset)
                candidate_streams.add(output.stream_id)
                for left, right in enumerate_splits(subset):
                    left_stream = self._stream_for_subset(left)
                    right_stream = self._stream_for_subset(right)
                    inputs = frozenset({left_stream.stream_id, right_stream.stream_id})
                    if len(inputs) < 2:
                        continue
                    cpu = self.cost_model.operator_cpu_cost(
                        [left_stream.rate, right_stream.rate]
                    )
                    operator = self._register_operator(
                        OperatorKind.JOIN, inputs, output.stream_id, cpu
                    )
                    candidate_operators.add(operator.operator_id)
            result_stream = self._ensure_composite_stream(base_set)

        query = Query(
            query_id=len(self._queries),
            result_stream=result_stream.stream_id,
            base_streams=base_set,
            candidate_streams=frozenset(candidate_streams),
            candidate_operators=frozenset(candidate_operators),
        )
        self._queries.append(query)
        self._queries_by_result.setdefault(result_stream.stream_id, []).append(query)
        self._registration_log.append(item)
        return query

    def get_query(self, query_id: int) -> Query:
        """Look up a query by id."""
        try:
            return self._queries[query_id]
        except IndexError:
            raise CatalogError(f"unknown query id {query_id}") from None

    def has_query(self, query_id: int) -> bool:
        """Whether ``query_id`` names a registered query."""
        return 0 <= query_id < len(self._queries)

    @property
    def queries(self) -> List[Query]:
        """All registered queries in submission order."""
        return list(self._queries)

    def queries_for_stream(self, stream_id: int) -> List[Query]:
        """All queries whose result stream is ``stream_id``."""
        return list(self._queries_by_result.get(stream_id, []))

    @property
    def requested_streams(self) -> FrozenSet[int]:
        """Streams with δ_s = 1 — i.e. result streams of registered queries."""
        return frozenset(self._queries_by_result.keys())

    @property
    def registration_log(self) -> List[QueryWorkloadItem]:
        """Registered workload items in order (replica-sync wire format)."""
        return list(self._registration_log)

    @property
    def num_registrations(self) -> int:
        """Length of the registration log (the replica-sync cursor space)."""
        return len(self._registration_log)

    def replay_registrations(
        self, items: Sequence[QueryWorkloadItem]
    ) -> None:
        """Append-replay a registration-log suffix (replica sync).

        Registration is deterministic given the catalog state, so a
        replica that replays the parent's log suffix in order assigns the
        same query, stream and operator ids as the parent did.
        """
        for item in items:
            self.register_query(item)

    # ------------------------------------------------------------ replica sync
    def sync_state(self) -> Dict[str, object]:
        """The compact *dynamic* catalog state a replica must mirror.

        Covers exactly the mutations the churn harness applies mid-run —
        host liveness, site partitions and the WAN drift factor — as a
        small picklable dict.  Structural growth (hosts, base streams,
        capacity overrides) is guarded separately by
        :meth:`structure_signature`.
        """
        return {
            "offline_hosts": tuple(self.hosts.offline_ids),
            "partitioned_sites": tuple(self.partitioned_sites),
            "wan_drift": self._wan_drift,
        }

    def apply_sync_state(self, state: Mapping[str, object]) -> None:
        """Converge this catalog's dynamic state onto ``state``."""
        offline = set(state["offline_hosts"])
        for host_id in self.hosts.all_ids:
            if host_id in offline:
                self.hosts.deactivate(host_id)
            else:
                self.hosts.activate(host_id)
        target_partitions = set(state["partitioned_sites"])
        for site in target_partitions - self._partitioned_sites:
            self.partition_site(site)
        for site in self._partitioned_sites - target_partitions:
            self.heal_site(site)
        if self._wan_drift != state["wan_drift"]:
            self.set_wan_drift(float(state["wan_drift"]))

    def structure_signature(self) -> Tuple:
        """A hashable digest of the catalog's *structural* inputs.

        Hosts (ids, capacities, sites), base streams (ids, rates,
        injection points) and the link/WAN capacity configuration — the
        inputs that registration replay plus :meth:`sync_state` cannot
        reproduce on a replica.  A replica whose signature diverges from
        the parent's needs a full-state resync.
        """
        hosts = tuple(
            (
                host.host_id,
                host.cpu_capacity,
                host.bandwidth_capacity,
                host.site,
            )
            for host in (self.hosts.get(h) for h in self.hosts.all_ids)
        )
        base_streams = tuple(
            (
                stream.stream_id,
                stream.rate,
                tuple(sorted(self._base_hosts.get(stream.stream_id, ()))),
            )
            for stream in self.streams.base_streams
        )
        return (
            hosts,
            base_streams,
            tuple(sorted(self._link_overrides.items())),
            tuple(sorted(self._wan_overrides.items())),
            self._default_link_capacity,
            self._default_wan_capacity,
        )

    # -------------------------------------------------------------- aggregates
    def total_cpu_capacity(self) -> float:
        """Sum of ζ_h over the active hosts."""
        return sum(host.cpu_capacity for host in self.hosts)

    def total_bandwidth_capacity(self) -> float:
        """Sum of β_h over the active hosts."""
        return sum(host.bandwidth_capacity for host in self.hosts)

    def total_link_capacity(self) -> float:
        """Sum of κ(h, m) over all ordered host pairs."""
        total = 0.0
        for src in self.host_ids:
            for dst in self.host_ids:
                if src != dst:
                    total += self.link_capacity(src, dst)
        return total

    def summary(self) -> str:
        """One-line description of the catalog size."""
        return (
            f"SystemCatalog: {self.num_hosts} hosts, {len(self.streams)} streams "
            f"({len(self.streams.base_streams)} base), {self.num_operators} operators, "
            f"{len(self._queries)} queries"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"


class _SiteHostSetView:
    """The :class:`HostSet` facade of a :class:`SiteCatalogView`.

    Exposes only the view's site hosts through the placement-facing
    accessors (:attr:`ids`, iteration, :attr:`offline_ids`) and adjusts
    reported capacities for *foreign usage* — resources consumed on the
    site's hosts by structures the site's own allocation does not contain
    (cross-site queries planned by a federated coordinator).  Lookups by id
    keep resolving every registered host, mirroring the base semantics.
    """

    def __init__(self, view: "SiteCatalogView") -> None:
        self._view = view

    @property
    def _base(self) -> HostSet:
        return self._view.base.hosts

    def _adjust(self, host: Host) -> Host:
        foreign = self._view.foreign_allocation
        if foreign is None:
            return host
        cpu_used = foreign.cpu_used(host.host_id)
        bw_used = max(
            foreign.out_bandwidth_used(host.host_id),
            foreign.in_bandwidth_used(host.host_id),
        )
        if not cpu_used and not bw_used:
            return host
        # Host capacities must stay positive; a fully consumed resource is
        # clamped to an epsilon no placement can fit under the validation
        # tolerance, which blocks the host without breaking invariants.
        return Host(
            host_id=host.host_id,
            name=host.name,
            cpu_capacity=max(1e-9, host.cpu_capacity - cpu_used),
            bandwidth_capacity=max(1e-9, host.bandwidth_capacity - bw_used),
            site=host.site,
        )

    def get(self, host_id: int) -> Host:
        return self._adjust(self._base.get(host_id))

    def get_by_name(self, name: str) -> Host:
        return self._adjust(self._base.get_by_name(name))

    def is_active(self, host_id: int) -> bool:
        return self._base.is_active(host_id)

    @property
    def ids(self) -> List[int]:
        return [h for h in self._base.ids if h in self._view.site_hosts]

    @property
    def all_ids(self) -> List[int]:
        return [h for h in self._base.all_ids if h in self._view.site_hosts]

    @property
    def offline_ids(self) -> List[int]:
        return [h for h in self._base.offline_ids if h in self._view.site_hosts]

    def site_of(self, host_id: int) -> int:
        return self._base.site_of(host_id)

    def __iter__(self) -> Iterable[Host]:
        return (
            self._adjust(h) for h in self._base if h.host_id in self._view.site_hosts
        )

    def __len__(self) -> int:
        # Total registered count, like the base HostSet: id allocation stays
        # dense and global even through a site view.
        return len(self._base)


class SiteCatalogView:
    """A site-local, read-mostly view of a shared :class:`SystemCatalog`.

    The view shares the base catalog's streams, operators and queries (ids
    are global), but filters every *placement-facing* host accessor down to
    one site: :attr:`host_ids`, host iteration and
    :meth:`base_hosts_of` only see the site's hosts, so any planner driven
    through the view plans a purely site-local subproblem while producing
    an allocation in the global host-id space (directly mergeable with the
    other shards).

    :meth:`set_foreign_allocation` injects the structures *other* planners
    placed on this site's hosts (a federated coordinator's cross-site
    queries); the view then reports correspondingly reduced host and link
    capacities, so the site's own planner cannot overcommit shared hosts.

    Everything not overridden here delegates to the base catalog, including
    mutations such as :meth:`SystemCatalog.register_query`.
    """

    def __init__(self, base: SystemCatalog, site: int) -> None:
        if site not in set(base.sites):
            raise CatalogError(
                f"unknown site id {site}; catalog sites: {base.sites}"
            )
        self._base_catalog = base
        self.site = site
        self.site_hosts: FrozenSet[int] = frozenset(base.hosts_in_site(site))
        self.hosts = _SiteHostSetView(self)
        self.foreign_allocation = None

    @property
    def base(self) -> SystemCatalog:
        """The catalog this view filters."""
        return self._base_catalog

    def __getattr__(self, name: str):
        # Anything not overridden (streams, operators, queries, cost model,
        # aggregate capacities, WAN state, ...) resolves on the base catalog.
        return getattr(self._base_catalog, name)

    def set_foreign_allocation(self, allocation) -> None:
        """Declare the foreign structures occupying this site's resources
        (``None`` clears the adjustment)."""
        self.foreign_allocation = allocation

    def refresh(self) -> None:
        """Re-snapshot the site's host membership from the base catalog.

        Hosts can join a site after the view was built
        (:meth:`SystemCatalog.add_host` on a live system); callers reacting
        to topology changes refresh their views so the new capacity becomes
        visible.
        """
        self.site_hosts = frozenset(self._base_catalog.hosts_in_site(self.site))

    # ------------------------------------------------------------- host views
    @property
    def host_ids(self) -> List[int]:
        """Active host ids of this site only."""
        return [h for h in self._base_catalog.host_ids if h in self.site_hosts]

    @property
    def num_hosts(self) -> int:
        """Total registered hosts of the *base* catalog — ids stay dense and
        global so shard allocations merge without remapping."""
        return self._base_catalog.num_hosts

    def base_hosts_of(self, stream_id: int) -> FrozenSet[int]:
        """Active injection points of a base stream *within this site*."""
        return frozenset(
            h
            for h in self._base_catalog.base_hosts_of(stream_id)
            if h in self.site_hosts
        )

    def link_capacity(self, src: int, dst: int) -> float:
        """Intra-site link capacity, net of foreign usage on the link."""
        capacity = self._base_catalog.link_capacity(src, dst)
        foreign = self.foreign_allocation
        if foreign is not None and capacity and src != dst:
            capacity = max(0.0, capacity - foreign.link_used(src, dst))
        return capacity

    def summary(self) -> str:
        return (
            f"SiteCatalogView(site={self.site}, hosts={sorted(self.site_hosts)}, "
            f"base={self._base_catalog.summary()})"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"


class GatewayCatalogView:
    """A WAN-aware view of a :class:`SystemCatalog` for cross-site planning.

    Sees every host (unlike :class:`SiteCatalogView`) but caps the reported
    capacity of each *cross-site* host pair at the remaining effective WAN
    gateway capacity of its site pair — the configured capacity after drift
    and partitions, minus what the supplied live allocation already ships
    across that gateway.  A planner that only models per-host-pair link
    constraints (the SQPR MILP) therefore cannot route a stream over a
    partitioned or saturated gateway.

    The cap is conservative: the planner's own background usage of the same
    host pair is subtracted again by its model, and a plan shipping several
    new streams across one gateway is not jointly capped — the shared-WAN
    constraint proper is enforced by :meth:`Allocation.validate`.
    """

    def __init__(self, base: SystemCatalog, allocation_ref) -> None:
        self._base_catalog = base
        #: Zero-argument callable returning the live global allocation whose
        #: WAN usage the remaining gateway capacity is measured against.
        self._allocation_ref = allocation_ref

    @property
    def base(self) -> SystemCatalog:
        """The catalog this view wraps."""
        return self._base_catalog

    def __getattr__(self, name: str):
        return getattr(self._base_catalog, name)

    def link_capacity(self, src: int, dst: int) -> float:
        capacity = self._base_catalog.link_capacity(src, dst)
        if src == dst:
            return capacity
        src_site = self._base_catalog.site_of_host(src)
        dst_site = self._base_catalog.site_of_host(dst)
        if src_site == dst_site:
            return capacity
        effective = self._base_catalog.effective_wan_capacity(src_site, dst_site)
        if effective is None:
            return capacity
        allocation = self._allocation_ref()
        remaining = effective
        if allocation is not None:
            remaining -= allocation.wan_used(src_site, dst_site)
        return max(0.0, min(capacity, remaining))

    def __repr__(self) -> str:
        return f"<GatewayCatalogView of {self._base_catalog.summary()}>"
