"""The system catalog: hosts, network, streams, operators and queries.

The catalog is the single source of truth the planners operate on.  It owns

* the set of hosts and the network topology (resource capacities),
* the stream registry (with equivalence-based identity),
* the operator universe (deduplicated by signature),
* the placement of base streams on hosts (S0h), and
* the registered queries with their candidate streams S(q) and operators
  O(q), which drive SQPR's problem-reduction step.

Registering a query is idempotent with respect to stream/operator creation:
overlapping queries share composite streams and operators, which is exactly
what makes reuse possible.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dsps.cost_model import LinearCostModel
from repro.dsps.hosts import Host, HostSet
from repro.dsps.network import NetworkTopology
from repro.dsps.operators import Operator, OperatorKind
from repro.dsps.query import (
    DecompositionMode,
    Query,
    QueryWorkloadItem,
    canonical_chain,
    enumerate_splits,
    enumerate_subsets,
)
from repro.dsps.stream import Stream, StreamRegistry
from repro.exceptions import CatalogError
from repro.utils.validation import check_positive


class SystemCatalog:
    """Hosts, streams, operators and queries of one DSPS instance."""

    def __init__(
        self,
        cost_model: Optional[LinearCostModel] = None,
        decomposition: DecompositionMode = DecompositionMode.CANONICAL,
        default_link_capacity: float = 1000.0,
    ) -> None:
        self.cost_model = cost_model or LinearCostModel()
        self.decomposition = decomposition
        self.hosts = HostSet()
        self.streams = StreamRegistry()
        self._default_link_capacity = check_positive(
            "default link capacity", default_link_capacity
        )
        self._link_overrides: Dict[Tuple[int, int], float] = {}
        self._operators: List[Operator] = []
        self._operators_by_signature: Dict[Tuple, Operator] = {}
        self._producers: Dict[int, List[Operator]] = {}
        self._base_hosts: Dict[int, Set[int]] = {}
        self._base_at_host: Dict[int, Set[int]] = {}
        self._queries: List[Query] = []
        self._queries_by_result: Dict[int, List[Query]] = {}

    # ------------------------------------------------------------------ hosts
    def add_host(
        self,
        cpu_capacity: float,
        bandwidth_capacity: float,
        name: Optional[str] = None,
    ) -> Host:
        """Register a host with the given CPU and NIC capacities."""
        name = name or f"host{len(self.hosts)}"
        return self.hosts.add(name, cpu_capacity, bandwidth_capacity)

    @property
    def num_hosts(self) -> int:
        """Number of registered hosts (online or not; ids stay dense)."""
        return len(self.hosts)

    @property
    def host_ids(self) -> List[int]:
        """Active host ids in order.

        Every placement decision in the library iterates this view, so
        deactivating a host removes it from consideration by all planners
        at once.
        """
        return self.hosts.ids

    # ------------------------------------------------------------ host lifecycle
    def deactivate_host(self, host_id: int) -> None:
        """Take a host offline (a failure): planners stop seeing it and base
        streams injected there become unavailable until reactivation."""
        self.hosts.deactivate(host_id)

    def activate_host(self, host_id: int) -> None:
        """Bring a failed host back online (a host join/recovery)."""
        self.hosts.activate(host_id)

    def is_host_active(self, host_id: int) -> bool:
        """Whether ``host_id`` is currently online."""
        return self.hosts.is_active(host_id)

    # ---------------------------------------------------------------- topology
    def set_link_capacity(self, src: int, dst: int, capacity: float) -> None:
        """Override the capacity of the link ``src <-> dst`` (symmetric)."""
        self._link_overrides[(src, dst)] = float(capacity)
        self._link_overrides[(dst, src)] = float(capacity)

    def link_capacity(self, src: int, dst: int) -> float:
        """κ(src, dst); zero on the self-loop."""
        if src == dst:
            return 0.0
        return self._link_overrides.get((src, dst), self._default_link_capacity)

    def topology(self) -> NetworkTopology:
        """Materialise the current topology as a :class:`NetworkTopology`."""
        topo = NetworkTopology(max(1, self.num_hosts), self._default_link_capacity)
        for (src, dst), capacity in self._link_overrides.items():
            topo.set_capacity(src, dst, capacity, symmetric=False)
        return topo

    # ----------------------------------------------------------------- streams
    def add_base_stream(self, name: str, rate: float, host_id: int) -> Stream:
        """Register a base stream available at ``host_id``."""
        self.hosts.get(host_id)  # validates the id
        stream = self.streams.add_base_stream(name, rate)
        self._base_hosts.setdefault(stream.stream_id, set()).add(host_id)
        self._base_at_host.setdefault(host_id, set()).add(stream.stream_id)
        return stream

    def add_base_stream_location(self, stream_id: int, host_id: int) -> None:
        """Make an existing base stream also available at ``host_id``."""
        stream = self.streams.get(stream_id)
        if not stream.is_base:
            raise CatalogError(f"stream {stream.name!r} is not a base stream")
        self.hosts.get(host_id)
        self._base_hosts.setdefault(stream_id, set()).add(host_id)
        self._base_at_host.setdefault(host_id, set()).add(stream_id)

    def base_hosts_of(self, stream_id: int) -> FrozenSet[int]:
        """*Active* hosts at which the given base stream is injected.

        Injection points on offline hosts are hidden — a failed host stops
        sourcing its base streams — and reappear when the host is
        reactivated.
        """
        return frozenset(
            h
            for h in self._base_hosts.get(stream_id, set())
            if self.hosts.is_active(h)
        )

    def base_streams_at(self, host_id: int) -> FrozenSet[int]:
        """S0h — base streams available at ``host_id`` (empty when offline)."""
        if not self.hosts.is_active(host_id):
            return frozenset()
        return frozenset(self._base_at_host.get(host_id, set()))

    def base_streams_registered_at(self, host_id: int) -> FrozenSet[int]:
        """Base streams whose injection point is ``host_id``, alive or not.

        Unlike :meth:`base_streams_at` this ignores liveness: delta
        validation uses it to learn which streams *lost* a source when a
        host went offline, so their flow graphs can be re-checked.
        """
        return frozenset(self._base_at_host.get(host_id, set()))

    def stream_rate(self, stream_id: int) -> float:
        """ϱ_s for any registered stream."""
        return self.streams.get(stream_id).rate

    # --------------------------------------------------------------- operators
    def _register_operator(
        self,
        kind: OperatorKind,
        input_streams: Iterable[int],
        output_stream: int,
        cpu_cost: float,
        name: Optional[str] = None,
    ) -> Operator:
        inputs = frozenset(int(s) for s in input_streams)
        signature = (kind.value, inputs, int(output_stream))
        existing = self._operators_by_signature.get(signature)
        if existing is not None:
            return existing
        operator = Operator(
            operator_id=len(self._operators),
            name=name or f"{kind.value}_op_{len(self._operators)}",
            kind=kind,
            input_streams=inputs,
            output_stream=int(output_stream),
            cpu_cost=float(cpu_cost),
        )
        self._operators.append(operator)
        self._operators_by_signature[signature] = operator
        self._producers.setdefault(operator.output_stream, []).append(operator)
        return operator

    def get_operator(self, operator_id: int) -> Operator:
        """Look up an operator by id."""
        try:
            return self._operators[operator_id]
        except IndexError:
            raise CatalogError(f"unknown operator id {operator_id}") from None

    @property
    def operators(self) -> List[Operator]:
        """All operators in id order."""
        return list(self._operators)

    @property
    def num_operators(self) -> int:
        """Number of registered operators."""
        return len(self._operators)

    def producers_of(self, stream_id: int) -> List[Operator]:
        """All operators whose output stream is ``stream_id``."""
        return list(self._producers.get(stream_id, []))

    # ------------------------------------------------------- composite streams
    def _ensure_composite_stream(self, base_set: FrozenSet[int]) -> Stream:
        """Create (or fetch) the join stream covering ``base_set``."""
        existing = self.streams.find_equivalent("join", base_set)
        if existing is not None:
            return existing
        rates = [self.streams.get(b).rate for b in base_set]
        rate = self.cost_model.output_rate(rates, base_set)
        return self.streams.add_composite_stream("join", base_set, rate)

    def _stream_for_subset(self, subset: FrozenSet[int]) -> Stream:
        """The stream covering ``subset`` — a base stream or a join stream."""
        if len(subset) == 1:
            (only,) = subset
            return self.streams.get(only)
        return self._ensure_composite_stream(subset)

    # ------------------------------------------------------------------ queries
    def register_query(self, item: QueryWorkloadItem) -> Query:
        """Register a join query and return its :class:`Query` descriptor.

        Creates (or reuses) the composite streams and candidate operators of
        the query's decomposition according to the catalog's
        :class:`DecompositionMode`.
        """
        base_ids = []
        for name in item.base_names:
            stream = self.streams.get_by_name(name)
            if not stream.is_base:
                raise CatalogError(f"query references non-base stream {name!r}")
            base_ids.append(stream.stream_id)
        base_set = frozenset(base_ids)
        if len(base_set) != len(base_ids):
            raise CatalogError("query references duplicate base streams")

        candidate_streams: Set[int] = set(base_set)
        candidate_operators: Set[int] = set()

        if self.decomposition is DecompositionMode.CANONICAL:
            chain = canonical_chain(sorted(base_set))
            previous: Stream = self.streams.get(min(base_set))
            sorted_bases = sorted(base_set)
            previous = self.streams.get(sorted_bases[0])
            for index, subset in enumerate(chain):
                next_base = self.streams.get(sorted_bases[index + 1])
                output = self._ensure_composite_stream(subset)
                inputs = frozenset({previous.stream_id, next_base.stream_id})
                cpu = self.cost_model.operator_cpu_cost(
                    [previous.rate, next_base.rate]
                )
                operator = self._register_operator(
                    OperatorKind.JOIN, inputs, output.stream_id, cpu
                )
                candidate_streams.add(output.stream_id)
                candidate_operators.add(operator.operator_id)
                previous = output
            result_stream = previous
        else:
            subsets = enumerate_subsets(sorted(base_set))
            for subset in subsets:
                output = self._ensure_composite_stream(subset)
                candidate_streams.add(output.stream_id)
                for left, right in enumerate_splits(subset):
                    left_stream = self._stream_for_subset(left)
                    right_stream = self._stream_for_subset(right)
                    inputs = frozenset({left_stream.stream_id, right_stream.stream_id})
                    if len(inputs) < 2:
                        continue
                    cpu = self.cost_model.operator_cpu_cost(
                        [left_stream.rate, right_stream.rate]
                    )
                    operator = self._register_operator(
                        OperatorKind.JOIN, inputs, output.stream_id, cpu
                    )
                    candidate_operators.add(operator.operator_id)
            result_stream = self._ensure_composite_stream(base_set)

        query = Query(
            query_id=len(self._queries),
            result_stream=result_stream.stream_id,
            base_streams=base_set,
            candidate_streams=frozenset(candidate_streams),
            candidate_operators=frozenset(candidate_operators),
        )
        self._queries.append(query)
        self._queries_by_result.setdefault(result_stream.stream_id, []).append(query)
        return query

    def get_query(self, query_id: int) -> Query:
        """Look up a query by id."""
        try:
            return self._queries[query_id]
        except IndexError:
            raise CatalogError(f"unknown query id {query_id}") from None

    @property
    def queries(self) -> List[Query]:
        """All registered queries in submission order."""
        return list(self._queries)

    def queries_for_stream(self, stream_id: int) -> List[Query]:
        """All queries whose result stream is ``stream_id``."""
        return list(self._queries_by_result.get(stream_id, []))

    @property
    def requested_streams(self) -> FrozenSet[int]:
        """Streams with δ_s = 1 — i.e. result streams of registered queries."""
        return frozenset(self._queries_by_result.keys())

    # -------------------------------------------------------------- aggregates
    def total_cpu_capacity(self) -> float:
        """Sum of ζ_h over the active hosts."""
        return sum(host.cpu_capacity for host in self.hosts)

    def total_bandwidth_capacity(self) -> float:
        """Sum of β_h over the active hosts."""
        return sum(host.bandwidth_capacity for host in self.hosts)

    def total_link_capacity(self) -> float:
        """Sum of κ(h, m) over all ordered host pairs."""
        total = 0.0
        for src in self.host_ids:
            for dst in self.host_ids:
                if src != dst:
                    total += self.link_capacity(src, dst)
        return total

    def summary(self) -> str:
        """One-line description of the catalog size."""
        return (
            f"SystemCatalog: {self.num_hosts} hosts, {len(self.streams)} streams "
            f"({len(self.streams.base_streams)} base), {self.num_operators} operators, "
            f"{len(self._queries)} queries"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"
