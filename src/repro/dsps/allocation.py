"""The live allocation state (d, x, y, z) and its resource accounting.

An :class:`Allocation` mirrors the decision variables of the optimisation
model of §III-B as concrete sets:

* ``provided``   — d: which host serves each requested stream to clients,
* ``flows``      — x: which streams are shipped between which host pairs,
* ``available``  — y: which streams are available at which hosts,
* ``placements`` — z: which operators execute on which hosts.

It also tracks which queries have been admitted, computes the induced
resource usage (CPU per host, in/out host bandwidth, per-link bandwidth) and
can validate itself against the catalog: capacity constraints (III.6),
availability implications (III.5), demand constraints (III.4) and acyclicity
(III.7, checked structurally per stream).

Planners never mutate an allocation in place while exploring: they build a
:class:`PlacementDelta` and apply it only once a query is admitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dsps.catalog import SystemCatalog
from repro.exceptions import AllocationError

FlowKey = Tuple[int, int, int]  # (src host, dst host, stream)
AvailKey = Tuple[int, int]  # (host, stream)
PlaceKey = Tuple[int, int]  # (host, operator)


@dataclass
class PlacementDelta:
    """A set of changes to apply atomically to an :class:`Allocation`."""

    add_flows: Set[FlowKey] = field(default_factory=set)
    remove_flows: Set[FlowKey] = field(default_factory=set)
    add_available: Set[AvailKey] = field(default_factory=set)
    remove_available: Set[AvailKey] = field(default_factory=set)
    add_placements: Set[PlaceKey] = field(default_factory=set)
    remove_placements: Set[PlaceKey] = field(default_factory=set)
    set_provided: Dict[int, int] = field(default_factory=dict)
    unset_provided: Set[int] = field(default_factory=set)
    admit_queries: Set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        """Whether the delta changes nothing."""
        return not any(
            (
                self.add_flows,
                self.remove_flows,
                self.add_available,
                self.remove_available,
                self.add_placements,
                self.remove_placements,
                self.set_provided,
                self.unset_provided,
                self.admit_queries,
            )
        )


class Allocation:
    """The global placement state of the DSPS."""

    def __init__(self, catalog: SystemCatalog) -> None:
        self.catalog = catalog
        self.provided: Dict[int, int] = {}
        self.flows: Set[FlowKey] = set()
        self.available: Set[AvailKey] = set()
        self.placements: Set[PlaceKey] = set()
        self.admitted_queries: Set[int] = set()

    # ---------------------------------------------------------------- copying
    def copy(self) -> "Allocation":
        """A deep-enough copy sharing the (immutable) catalog."""
        clone = Allocation(self.catalog)
        clone.provided = dict(self.provided)
        clone.flows = set(self.flows)
        clone.available = set(self.available)
        clone.placements = set(self.placements)
        clone.admitted_queries = set(self.admitted_queries)
        return clone

    # ---------------------------------------------------------------- queries
    def is_provided(self, stream_id: int) -> bool:
        """Whether some host currently serves ``stream_id`` to clients."""
        return stream_id in self.provided

    def provider_of(self, stream_id: int) -> Optional[int]:
        """The host serving ``stream_id`` to clients, if any."""
        return self.provided.get(stream_id)

    def is_available(self, host: int, stream_id: int) -> bool:
        """Whether stream ``stream_id`` is available at ``host`` (y)."""
        return (host, stream_id) in self.available

    def has_placement(self, host: int, operator_id: int) -> bool:
        """Whether operator ``operator_id`` runs on ``host`` (z)."""
        return (host, operator_id) in self.placements

    def hosts_with_stream(self, stream_id: int) -> FrozenSet[int]:
        """All hosts at which the stream is available."""
        return frozenset(h for (h, s) in self.available if s == stream_id)

    def hosts_of_operator(self, operator_id: int) -> FrozenSet[int]:
        """All hosts on which the operator is placed."""
        return frozenset(h for (h, o) in self.placements if o == operator_id)

    def flow_sources(self, host: int, stream_id: int) -> List[int]:
        """Hosts currently sending ``stream_id`` to ``host``."""
        return sorted(src for (src, dst, s) in self.flows if dst == host and s == stream_id)

    def operators_on(self, host: int) -> FrozenSet[int]:
        """Operators placed on ``host``."""
        return frozenset(o for (h, o) in self.placements if h == host)

    # ----------------------------------------------------------- resource usage
    def cpu_used(self, host: int, exclude_operators: Optional[Set[int]] = None) -> float:
        """CPU consumed on ``host`` (optionally excluding some operators)."""
        exclude = exclude_operators or set()
        return sum(
            self.catalog.get_operator(o).cpu_cost
            for (h, o) in self.placements
            if h == host and o not in exclude
        )

    def out_bandwidth_used(self, host: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Outgoing bandwidth used at ``host`` — flows out plus client delivery."""
        exclude = exclude_streams or set()
        total = sum(
            self.catalog.stream_rate(s)
            for (src, _dst, s) in self.flows
            if src == host and s not in exclude
        )
        total += sum(
            self.catalog.stream_rate(s)
            for s, h in self.provided.items()
            if h == host and s not in exclude
        )
        return total

    def in_bandwidth_used(self, host: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Incoming bandwidth used at ``host`` from flows."""
        exclude = exclude_streams or set()
        return sum(
            self.catalog.stream_rate(s)
            for (_src, dst, s) in self.flows
            if dst == host and s not in exclude
        )

    def link_used(self, src: int, dst: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Bandwidth used on the directed link ``src -> dst``."""
        exclude = exclude_streams or set()
        return sum(
            self.catalog.stream_rate(s)
            for (h, m, s) in self.flows
            if h == src and m == dst and s not in exclude
        )

    def cpu_utilisation(self, host: int) -> float:
        """Fraction of the host's CPU capacity in use (0..1+)."""
        capacity = self.catalog.hosts.get(host).cpu_capacity
        return self.cpu_used(host) / capacity if capacity > 0 else 0.0

    def network_usage(self, host: int) -> float:
        """Total data rate sent plus received by ``host`` (for Fig. 7c)."""
        return self.out_bandwidth_used(host) + self.in_bandwidth_used(host)

    def max_cpu_used(self) -> float:
        """The O4 objective value: maximum CPU consumption over hosts."""
        if self.catalog.num_hosts == 0:
            return 0.0
        return max(self.cpu_used(h) for h in self.catalog.host_ids)

    def total_cpu_used(self) -> float:
        """The O3 objective value: system-wide CPU consumption."""
        return sum(self.cpu_used(h) for h in self.catalog.host_ids)

    def total_network_used(self) -> float:
        """The O2 objective value: system-wide inter-host traffic."""
        return sum(self.catalog.stream_rate(s) for (_h, _m, s) in self.flows)

    # ---------------------------------------------------------------- mutation
    def apply(self, delta: PlacementDelta) -> None:
        """Apply ``delta`` in place (removals first, then additions)."""
        self.flows -= delta.remove_flows
        self.available -= delta.remove_available
        self.placements -= delta.remove_placements
        for stream_id in delta.unset_provided:
            self.provided.pop(stream_id, None)
        self.flows |= delta.add_flows
        self.available |= delta.add_available
        self.placements |= delta.add_placements
        self.provided.update(delta.set_provided)
        self.admitted_queries |= delta.admit_queries

    def admit_query(self, query_id: int) -> None:
        """Mark a query as admitted."""
        self.admitted_queries.add(query_id)

    def without_queries(self, query_ids: Iterable[int]) -> "Allocation":
        """A new allocation with ``query_ids`` removed and garbage-collected.

        This is §IV-B's "considering the system without those queries": the
        queries leave the admitted set, their result streams stop being
        provided unless another admitted query still requests them, and the
        remainder is rebuilt down to the structures the surviving queries
        actually need (via
        :func:`repro.dsps.plan.rebuild_minimal_allocation`).  The result is
        a subset of ``self``, so it cannot violate resource capacities this
        allocation satisfied.  ``self`` is left untouched.
        """
        from repro.dsps.plan import rebuild_minimal_allocation  # avoid a cycle

        removed = set(query_ids) & self.admitted_queries
        if not removed:
            return self.copy()
        shrunk = self.copy()
        shrunk.admitted_queries -= removed
        for query_id in removed:
            query = self.catalog.get_query(query_id)
            still_wanted = any(
                self.catalog.get_query(qid).result_stream == query.result_stream
                for qid in shrunk.admitted_queries
            )
            if not still_wanted:
                shrunk.provided.pop(query.result_stream, None)
        return rebuild_minimal_allocation(self.catalog, shrunk)

    # -------------------------------------------------------------- validation
    def validate(self, tol: float = 1e-6) -> List[str]:
        """Check the allocation against all model constraints; list violations."""
        violations: List[str] = []
        catalog = self.catalog

        # Liveness: nothing may run on, flow through or be served from a host
        # that is currently offline (a failed host has no resources at all).
        offline = set(catalog.hosts.offline_ids)
        if offline:
            for host, operator_id in self.placements:
                if host in offline:
                    violations.append(
                        f"liveness: operator {operator_id} placed on offline host {host}"
                    )
            for src, dst, stream_id in self.flows:
                if src in offline or dst in offline:
                    violations.append(
                        f"liveness: flow {src}->{dst} of stream {stream_id} "
                        f"touches an offline host"
                    )
            for stream_id, host in self.provided.items():
                if host in offline:
                    violations.append(
                        f"liveness: stream {stream_id} provided from offline host {host}"
                    )
            for host, stream_id in self.available:
                if host in offline:
                    violations.append(
                        f"liveness: stream {stream_id} marked available at "
                        f"offline host {host}"
                    )

        # Demand constraints (III.4): provided streams must be requested and
        # available at the providing host.
        requested = catalog.requested_streams
        for stream_id, host in self.provided.items():
            if stream_id not in requested:
                violations.append(
                    f"demand: stream {stream_id} is provided but not requested"
                )
            if (host, stream_id) not in self.available:
                violations.append(
                    f"demand: host {host} provides stream {stream_id} without having it"
                )

        # Availability constraints (III.5): y implies a source; x and z imply y.
        for host, stream_id in self.available:
            stream = catalog.streams.get(stream_id)
            has_flow_in = any(
                dst == host and s == stream_id for (_src, dst, s) in self.flows
            )
            generates = any(
                catalog.get_operator(o).output_stream == stream_id
                for (h, o) in self.placements
                if h == host
            )
            is_base_here = stream.is_base and host in catalog.base_hosts_of(stream_id)
            if not (has_flow_in or generates or is_base_here):
                violations.append(
                    f"availability: stream {stream_id} marked available at host "
                    f"{host} with no source"
                )
        for host, operator_id in self.placements:
            operator = catalog.get_operator(operator_id)
            for input_id in operator.input_streams:
                if (host, input_id) not in self.available:
                    violations.append(
                        f"availability: operator {operator_id} on host {host} "
                        f"misses input stream {input_id}"
                    )
        for src, dst, stream_id in self.flows:
            if (src, stream_id) not in self.available:
                violations.append(
                    f"availability: host {src} sends stream {stream_id} to "
                    f"{dst} without having it"
                )

        # Resource constraints (III.6).
        for host in catalog.host_ids:
            capacity = catalog.hosts.get(host)
            if self.cpu_used(host) > capacity.cpu_capacity + tol:
                violations.append(
                    f"resources: CPU overload on host {host}: "
                    f"{self.cpu_used(host):.3f} > {capacity.cpu_capacity:.3f}"
                )
            if self.out_bandwidth_used(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: outgoing bandwidth overload on host {host}"
                )
            if self.in_bandwidth_used(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: incoming bandwidth overload on host {host}"
                )
        for src in catalog.host_ids:
            for dst in catalog.host_ids:
                if src == dst:
                    continue
                if self.link_used(src, dst) > catalog.link_capacity(src, dst) + tol:
                    violations.append(
                        f"resources: link {src}->{dst} overloaded"
                    )

        # Acyclicity (III.7): per stream, flows must form a DAG rooted at real
        # sources (operator placements or base-stream injection points).
        violations.extend(self._acyclicity_violations())
        return violations

    def is_feasible(self, tol: float = 1e-6) -> bool:
        """Whether the allocation satisfies every constraint."""
        return not self.validate(tol)

    def _acyclicity_violations(self) -> List[str]:
        violations: List[str] = []
        catalog = self.catalog
        streams_with_flows = {s for (_h, _m, s) in self.flows}
        for stream_id in streams_with_flows:
            stream = catalog.streams.get(stream_id)
            edges = [(h, m) for (h, m, s) in self.flows if s == stream_id]
            sources = set()
            for host in catalog.host_ids:
                generates = any(
                    catalog.get_operator(o).output_stream == stream_id
                    for (h, o) in self.placements
                    if h == host
                )
                is_base_here = stream.is_base and host in catalog.base_hosts_of(stream_id)
                if generates or is_base_here:
                    sources.add(host)
            # Every host receiving the stream must be reachable from a source.
            reachable = set(sources)
            frontier = list(sources)
            adjacency: Dict[int, List[int]] = {}
            for src, dst in edges:
                adjacency.setdefault(src, []).append(dst)
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency.get(node, []):
                    if neighbour not in reachable:
                        reachable.add(neighbour)
                        frontier.append(neighbour)
            receivers = {dst for (_src, dst) in edges}
            unreachable = receivers - reachable
            if unreachable:
                violations.append(
                    f"acyclicity: stream {stream_id} reaches hosts {sorted(unreachable)} "
                    f"only through a causal loop (no path from a real source)"
                )
        return violations

    # -------------------------------------------------------------- summaries
    def summary(self) -> str:
        """One-line description of the allocation size."""
        return (
            f"Allocation: {len(self.admitted_queries)} admitted queries, "
            f"{len(self.placements)} operator placements, {len(self.flows)} flows, "
            f"{len(self.provided)} provided streams"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"
