"""The live allocation state (d, x, y, z) and its resource accounting.

An :class:`Allocation` mirrors the decision variables of the optimisation
model of §III-B as concrete sets:

* ``provided``   — d: which host serves each requested stream to clients,
* ``flows``      — x: which streams are shipped between which host pairs,
* ``available``  — y: which streams are available at which hosts,
* ``placements`` — z: which operators execute on which hosts.

It also tracks which queries have been admitted, computes the induced
resource usage (CPU per host, in/out host bandwidth, per-link bandwidth) and
can validate itself against the catalog: capacity constraints (III.6),
availability implications (III.5), demand constraints (III.4) and acyclicity
(III.7, checked structurally per stream).

Planners never mutate an allocation in place while exploring: they build a
:class:`PlacementDelta` and apply it only once a query is admitted.

Indexed state
-------------
The public collections are *observed*: ``flows``, ``available``,
``placements`` and ``admitted_queries`` are set subclasses and ``provided``
is a dict subclass that notify the owning allocation on every mutation, no
matter how the mutation arrives (``apply``, a baseline poking
``allocation.flows.add(...)`` directly, or the garbage collector rebuilding
a minimal allocation).  Every notification incrementally maintains

* reverse indexes (host→operators, operator→hosts, stream→available hosts,
  host→available streams, stream→flow edges, link→streams, host→flows,
  (host, stream)→flow sources, host→provided streams),
* cached per-host resource aggregates (CPU, in/out bandwidth, per-link
  bandwidth),
* a rolling, order-independent allocation fingerprint
  (:meth:`Allocation.fingerprint`, used by the planner's model-reuse
  cache),
* per-stream rolling fingerprints (:meth:`Allocation.stream_fingerprint`)
  — the same XOR terms bucketed by the stream each structure serves — used
  by the sub-plan index (:mod:`repro.dsps.subplan`) to tell which cached
  sub-plans an external allocation change could have invalidated,
* query-membership indexes (candidate stream → admitted queries, candidate
  operator → admitted queries, result stream → admitted queries) that make
  reuse-overlap enumeration at admission time proportional to the overlap,
  not to the resident-query count, and
* *touched* host/stream/operator accumulators
  (:meth:`Allocation.drain_touched`) that drive incremental invariant
  checking via :meth:`Allocation.validate_delta`.

The full :meth:`validate` deliberately recomputes resource usage with naive
full scans (the ``*_scan`` methods) so it stays an index-independent oracle:
if an index ever drifted from the ground-truth sets, delta validation and
the oracle would disagree and the property tests would catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.dsps.catalog import SystemCatalog
from repro.exceptions import AllocationError

FlowKey = Tuple[int, int, int]  # (src host, dst host, stream)
AvailKey = Tuple[int, int]  # (host, stream)
PlaceKey = Tuple[int, int]  # (host, operator)

#: Fingerprint tags: every item of every collection hashes with a distinct
#: integer tag so e.g. a flow and an availability entry can never cancel.
_FP_FLOW, _FP_AVAIL, _FP_PLACE, _FP_PROVIDED, _FP_ADMITTED = 1, 2, 3, 4, 5

_MISSING = object()


@dataclass
class PlacementDelta:
    """A set of changes to apply atomically to an :class:`Allocation`."""

    add_flows: Set[FlowKey] = field(default_factory=set)
    remove_flows: Set[FlowKey] = field(default_factory=set)
    add_available: Set[AvailKey] = field(default_factory=set)
    remove_available: Set[AvailKey] = field(default_factory=set)
    add_placements: Set[PlaceKey] = field(default_factory=set)
    remove_placements: Set[PlaceKey] = field(default_factory=set)
    set_provided: Dict[int, int] = field(default_factory=dict)
    unset_provided: Set[int] = field(default_factory=set)
    admit_queries: Set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        """Whether the delta changes nothing."""
        return not any(
            (
                self.add_flows,
                self.remove_flows,
                self.add_available,
                self.remove_available,
                self.add_placements,
                self.remove_placements,
                self.set_provided,
                self.unset_provided,
                self.admit_queries,
            )
        )


def delta_touched_sets(
    delta: PlacementDelta, catalog: SystemCatalog
) -> Tuple[Set[int], Set[int], Set[int]]:
    """The (hosts, streams, operators) a :class:`PlacementDelta` touches.

    This is the touched-set extractor for delta-based invariant checking:
    validating exactly these entities after applying ``delta`` to a
    previously valid allocation finds every violation the full
    :meth:`Allocation.validate` would find.
    """
    hosts: Set[int] = set()
    streams: Set[int] = set()
    operators: Set[int] = set()
    for src, dst, stream_id in delta.add_flows | delta.remove_flows:
        hosts.add(src)
        hosts.add(dst)
        streams.add(stream_id)
    for host, stream_id in delta.add_available | delta.remove_available:
        hosts.add(host)
        streams.add(stream_id)
    for host, operator_id in delta.add_placements | delta.remove_placements:
        hosts.add(host)
        operators.add(operator_id)
        streams.add(catalog.get_operator(operator_id).output_stream)
    for stream_id, host in delta.set_provided.items():
        hosts.add(host)
        streams.add(stream_id)
    streams |= delta.unset_provided
    return hosts, streams, operators


def touched_between(
    old: "Allocation", new: "Allocation"
) -> Tuple[Set[int], Set[int], Set[int]]:
    """Touched (hosts, streams, operators) between two allocation states.

    Used when an event *replaces* an allocation object (garbage collection,
    host failure, adaptive re-planning) so per-mutation touched tracking is
    unavailable: the symmetric differences of the ground-truth collections
    give exactly the entities whose constraints could have changed.  Set
    differences run in C, so this is far cheaper than a full re-validation
    even though it is linear in the allocation size.
    """
    hosts: Set[int] = set()
    streams: Set[int] = set()
    operators: Set[int] = set()
    catalog = new.catalog
    for src, dst, stream_id in set.symmetric_difference(old.flows, new.flows):
        hosts.add(src)
        hosts.add(dst)
        streams.add(stream_id)
    for host, stream_id in set.symmetric_difference(old.available, new.available):
        hosts.add(host)
        streams.add(stream_id)
    for host, operator_id in set.symmetric_difference(
        old.placements, new.placements
    ):
        hosts.add(host)
        operators.add(operator_id)
        streams.add(catalog.get_operator(operator_id).output_stream)
    for stream_id in set(old.provided) | set(new.provided):
        old_host = old.provided.get(stream_id)
        new_host = new.provided.get(stream_id)
        if old_host != new_host:
            streams.add(stream_id)
            if old_host is not None:
                hosts.add(old_host)
            if new_host is not None:
                hosts.add(new_host)
    return hosts, streams, operators


class _ObservedSet(set):
    """A set that notifies its owner on every successful add/remove.

    All mutating entry points — including the in-place operators and bulk
    updates — funnel through :meth:`add`/:meth:`discard`, so index
    maintenance sees exactly one callback per element that actually entered
    or left the set.  Non-mutating operators (``|``, ``&``, ``^``, ``-``)
    inherit from :class:`set` and return plain sets.
    """

    __slots__ = ("_added", "_removed")

    def __init__(self, added, removed, items: Iterable = ()) -> None:
        set.__init__(self)
        self._added = added
        self._removed = removed
        for item in items:
            self.add(item)

    # ------------------------------------------------------------ single item
    def add(self, item) -> None:
        if item not in self:
            set.add(self, item)
            self._added(item)

    def discard(self, item) -> None:
        if item in self:
            set.discard(self, item)
            self._removed(item)

    def remove(self, item) -> None:
        if item not in self:
            raise KeyError(item)
        set.discard(self, item)
        self._removed(item)

    def pop(self):
        item = set.pop(self)
        self._removed(item)
        return item

    def clear(self) -> None:
        while self:
            self.pop()

    # ------------------------------------------------------------------- bulk
    def update(self, *others) -> None:
        for other in others:
            for item in other:
                self.add(item)

    def __ior__(self, other):
        self.update(other)
        return self

    def difference_update(self, *others) -> None:
        for other in others:
            items = list(other) if other is self else other
            for item in items:
                self.discard(item)

    def __isub__(self, other):
        self.difference_update(other)
        return self

    def intersection_update(self, *others) -> None:
        keep = set(self).intersection(*others)
        for item in [item for item in self if item not in keep]:
            self.discard(item)

    def __iand__(self, other):
        self.intersection_update(other)
        return self

    def symmetric_difference_update(self, other) -> None:
        # Deduplicate first: builtin set semantics toggle each *distinct*
        # element once, not once per occurrence in the iterable.
        for item in set(other):
            if item in self:
                self.discard(item)
            else:
                self.add(item)

    def __ixor__(self, other):
        self.symmetric_difference_update(other)
        return self

    def __reduce__(self):  # pragma: no cover - defensive
        raise TypeError("observed allocation sets cannot be pickled")


class _ObservedDict(dict):
    """A dict that notifies its owner on every key set/unset."""

    __slots__ = ("_set", "_unset")

    def __init__(self, set_hook, unset_hook) -> None:
        dict.__init__(self)
        self._set = set_hook
        self._unset = unset_hook

    def __setitem__(self, key, value) -> None:
        old = dict.get(self, key, _MISSING)
        if old is not _MISSING:
            if old == value:
                return
            self._unset(key, old)
        dict.__setitem__(self, key, value)
        self._set(key, value)

    def __delitem__(self, key) -> None:
        old = dict.pop(self, key)
        self._unset(key, old)

    def pop(self, key, *default):
        if key in self:
            old = dict.pop(self, key)
            self._unset(key, old)
            return old
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self):
        key, value = dict.popitem(self)
        self._unset(key, value)
        return key, value

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def __ior__(self, other):
        # dict.__ior__ merges at the C level, bypassing __setitem__;
        # route it through update() so the hooks always fire.
        self.update(other)
        return self

    def clear(self) -> None:
        while self:
            self.popitem()

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self[key] = default
        return default

    def __reduce__(self):  # pragma: no cover - defensive
        raise TypeError("observed allocation dicts cannot be pickled")


class Allocation:
    """The global placement state of the DSPS."""

    def __init__(self, catalog: SystemCatalog) -> None:
        self.catalog = catalog
        self._init_indexes()
        self.provided: Dict[int, int] = _ObservedDict(
            self._provided_set, self._provided_unset
        )
        self.flows: Set[FlowKey] = _ObservedSet(self._flow_added, self._flow_removed)
        self.available: Set[AvailKey] = _ObservedSet(
            self._avail_added, self._avail_removed
        )
        self.placements: Set[PlaceKey] = _ObservedSet(
            self._placement_added, self._placement_removed
        )
        self.admitted_queries: Set[int] = _ObservedSet(
            self._admitted_added, self._admitted_removed
        )

    def _init_indexes(self) -> None:
        # Reverse indexes over the ground-truth collections.
        self._ops_by_host: Dict[int, Set[int]] = {}
        self._hosts_by_op: Dict[int, Set[int]] = {}
        self._avail_by_stream: Dict[int, Set[int]] = {}
        self._avail_by_host: Dict[int, Set[int]] = {}
        self._flow_edges_by_stream: Dict[int, Set[Tuple[int, int]]] = {}
        self._flows_by_link: Dict[Tuple[int, int], Set[int]] = {}
        self._flows_by_host: Dict[int, Set[FlowKey]] = {}
        self._sources_by_sink: Dict[Tuple[int, int], Set[int]] = {}
        self._provided_by_host: Dict[int, Set[int]] = {}
        # Per-host outgoing/incoming flow multiplicities per stream (a host
        # may ship one stream to several destinations).
        self._out_count: Dict[int, Dict[int, int]] = {}
        self._in_count: Dict[int, Dict[int, int]] = {}
        # Cached resource aggregates.  Entries are removed when they drop to
        # exactly zero elements, so no float residue accumulates on hosts
        # that emptied out.
        self._cpu_cache: Dict[int, float] = {}
        self._out_bw: Dict[int, float] = {}
        self._in_bw: Dict[int, float] = {}
        self._link_bw: Dict[Tuple[int, int], float] = {}
        # Per-site aggregates (federated topologies): CPU consumed inside
        # each site and bandwidth crossing each ordered site pair's shared
        # WAN gateway.  Entry counts guard the exact-zero cleanup, like the
        # per-host caches above.
        self._site_cpu: Dict[int, float] = {}
        self._site_ops: Dict[int, int] = {}
        self._wan_bw: Dict[Tuple[int, int], float] = {}
        self._wan_count: Dict[Tuple[int, int], int] = {}
        # Query-membership indexes over the admitted set: which admitted
        # queries list a stream/operator among their candidates, and which
        # admitted queries request a given result stream.  Maintained by the
        # admitted hooks (guarded — ids the catalog does not know are simply
        # not indexed) and consumed by the reuse-matching path.
        self._queries_by_stream: Dict[int, Set[int]] = {}
        self._queries_by_operator: Dict[int, Set[int]] = {}
        self._queries_by_result: Dict[int, Set[int]] = {}
        # Rolling fingerprint + touched accumulators.
        self._fingerprint = 0
        # XOR of the admitted-query terms alone, so the *structural*
        # fingerprint (everything except admitted membership) is available
        # in O(1): structural = _fingerprint ^ _admitted_fp.
        self._admitted_fp = 0
        # Per-stream slices of the rolling fingerprint: every structural
        # term is additionally XOR-ed into the bucket of the stream it
        # serves (placements bucket under their operator's output stream).
        # Entry counts guard cleanup, like the aggregate caches above.
        self._stream_fp: Dict[int, int] = {}
        self._stream_fp_count: Dict[int, int] = {}
        self._touched_hosts: Set[int] = set()
        self._touched_streams: Set[int] = set()
        self._touched_operators: Set[int] = set()

    def _stream_fp_add(self, stream_id: int, term: int) -> None:
        self._stream_fp[stream_id] = self._stream_fp.get(stream_id, 0) ^ term
        self._stream_fp_count[stream_id] = (
            self._stream_fp_count.get(stream_id, 0) + 1
        )

    def _stream_fp_remove(self, stream_id: int, term: int) -> None:
        count = self._stream_fp_count[stream_id] - 1
        if count:
            self._stream_fp_count[stream_id] = count
            self._stream_fp[stream_id] ^= term
        else:
            del self._stream_fp_count[stream_id]
            del self._stream_fp[stream_id]

    # ------------------------------------------------------------- index hooks
    def _flow_added(self, key: FlowKey) -> None:
        src, dst, stream_id = key
        rate = self.catalog.stream_rate(stream_id)
        self._flow_edges_by_stream.setdefault(stream_id, set()).add((src, dst))
        self._flows_by_link.setdefault((src, dst), set()).add(stream_id)
        self._link_bw[(src, dst)] = self._link_bw.get((src, dst), 0.0) + rate
        self._flows_by_host.setdefault(src, set()).add(key)
        self._flows_by_host.setdefault(dst, set()).add(key)
        self._sources_by_sink.setdefault((dst, stream_id), set()).add(src)
        out = self._out_count.setdefault(src, {})
        out[stream_id] = out.get(stream_id, 0) + 1
        self._out_bw[src] = self._out_bw.get(src, 0.0) + rate
        inn = self._in_count.setdefault(dst, {})
        inn[stream_id] = inn.get(stream_id, 0) + 1
        self._in_bw[dst] = self._in_bw.get(dst, 0.0) + rate
        src_site = self.catalog.site_of_host(src)
        dst_site = self.catalog.site_of_host(dst)
        if src_site != dst_site:
            pair = (src_site, dst_site)
            self._wan_bw[pair] = self._wan_bw.get(pair, 0.0) + rate
            self._wan_count[pair] = self._wan_count.get(pair, 0) + 1
        term = hash((_FP_FLOW, src, dst, stream_id))
        self._fingerprint ^= term
        self._stream_fp_add(stream_id, term)
        self._touched_hosts.add(src)
        self._touched_hosts.add(dst)
        self._touched_streams.add(stream_id)

    def _flow_removed(self, key: FlowKey) -> None:
        src, dst, stream_id = key
        rate = self.catalog.stream_rate(stream_id)
        edges = self._flow_edges_by_stream[stream_id]
        edges.discard((src, dst))
        if not edges:
            del self._flow_edges_by_stream[stream_id]
        link_streams = self._flows_by_link[(src, dst)]
        link_streams.discard(stream_id)
        if not link_streams:
            del self._flows_by_link[(src, dst)]
            del self._link_bw[(src, dst)]
        else:
            self._link_bw[(src, dst)] -= rate
        for host in {src, dst}:
            per_host = self._flows_by_host[host]
            per_host.discard(key)
            if not per_host:
                del self._flows_by_host[host]
        sources = self._sources_by_sink[(dst, stream_id)]
        sources.discard(src)
        if not sources:
            del self._sources_by_sink[(dst, stream_id)]
        out = self._out_count[src]
        out[stream_id] -= 1
        if not out[stream_id]:
            del out[stream_id]
        if not out:
            del self._out_count[src]
        if src in self._out_count or src in self._provided_by_host:
            self._out_bw[src] -= rate
        else:
            del self._out_bw[src]
        inn = self._in_count[dst]
        inn[stream_id] -= 1
        if not inn[stream_id]:
            del inn[stream_id]
        if not inn:
            del self._in_count[dst]
            del self._in_bw[dst]
        else:
            self._in_bw[dst] -= rate
        src_site = self.catalog.site_of_host(src)
        dst_site = self.catalog.site_of_host(dst)
        if src_site != dst_site:
            pair = (src_site, dst_site)
            self._wan_count[pair] -= 1
            if not self._wan_count[pair]:
                del self._wan_count[pair]
                del self._wan_bw[pair]
            else:
                self._wan_bw[pair] -= rate
        term = hash((_FP_FLOW, src, dst, stream_id))
        self._fingerprint ^= term
        self._stream_fp_remove(stream_id, term)
        self._touched_hosts.add(src)
        self._touched_hosts.add(dst)
        self._touched_streams.add(stream_id)

    def _avail_added(self, key: AvailKey) -> None:
        host, stream_id = key
        self._avail_by_stream.setdefault(stream_id, set()).add(host)
        self._avail_by_host.setdefault(host, set()).add(stream_id)
        term = hash((_FP_AVAIL, host, stream_id))
        self._fingerprint ^= term
        self._stream_fp_add(stream_id, term)
        self._touched_hosts.add(host)
        self._touched_streams.add(stream_id)

    def _avail_removed(self, key: AvailKey) -> None:
        host, stream_id = key
        hosts = self._avail_by_stream[stream_id]
        hosts.discard(host)
        if not hosts:
            del self._avail_by_stream[stream_id]
        streams = self._avail_by_host[host]
        streams.discard(stream_id)
        if not streams:
            del self._avail_by_host[host]
        term = hash((_FP_AVAIL, host, stream_id))
        self._fingerprint ^= term
        self._stream_fp_remove(stream_id, term)
        self._touched_hosts.add(host)
        self._touched_streams.add(stream_id)

    def _placement_added(self, key: PlaceKey) -> None:
        host, operator_id = key
        self._ops_by_host.setdefault(host, set()).add(operator_id)
        self._hosts_by_op.setdefault(operator_id, set()).add(host)
        operator = self.catalog.get_operator(operator_id)
        self._cpu_cache[host] = self._cpu_cache.get(host, 0.0) + operator.cpu_cost
        site = self.catalog.site_of_host(host)
        self._site_cpu[site] = self._site_cpu.get(site, 0.0) + operator.cpu_cost
        self._site_ops[site] = self._site_ops.get(site, 0) + 1
        term = hash((_FP_PLACE, host, operator_id))
        self._fingerprint ^= term
        self._stream_fp_add(operator.output_stream, term)
        self._touched_hosts.add(host)
        self._touched_operators.add(operator_id)
        self._touched_streams.add(operator.output_stream)

    def _placement_removed(self, key: PlaceKey) -> None:
        host, operator_id = key
        ops = self._ops_by_host[host]
        ops.discard(operator_id)
        if not ops:
            del self._ops_by_host[host]
            del self._cpu_cache[host]
        else:
            operator = self.catalog.get_operator(operator_id)
            self._cpu_cache[host] -= operator.cpu_cost
        site = self.catalog.site_of_host(host)
        self._site_ops[site] -= 1
        if not self._site_ops[site]:
            del self._site_ops[site]
            del self._site_cpu[site]
        else:
            self._site_cpu[site] -= self.catalog.get_operator(operator_id).cpu_cost
        hosts = self._hosts_by_op[operator_id]
        hosts.discard(host)
        if not hosts:
            del self._hosts_by_op[operator_id]
        output_stream = self.catalog.get_operator(operator_id).output_stream
        term = hash((_FP_PLACE, host, operator_id))
        self._fingerprint ^= term
        self._stream_fp_remove(output_stream, term)
        self._touched_hosts.add(host)
        self._touched_operators.add(operator_id)
        self._touched_streams.add(output_stream)

    def _provided_set(self, stream_id: int, host: int) -> None:
        self._provided_by_host.setdefault(host, set()).add(stream_id)
        self._out_bw[host] = self._out_bw.get(host, 0.0) + self.catalog.stream_rate(
            stream_id
        )
        term = hash((_FP_PROVIDED, stream_id, host))
        self._fingerprint ^= term
        self._stream_fp_add(stream_id, term)
        self._touched_hosts.add(host)
        self._touched_streams.add(stream_id)

    def _provided_unset(self, stream_id: int, host: int) -> None:
        streams = self._provided_by_host[host]
        streams.discard(stream_id)
        if not streams:
            del self._provided_by_host[host]
        if host in self._out_count or host in self._provided_by_host:
            self._out_bw[host] -= self.catalog.stream_rate(stream_id)
        else:
            del self._out_bw[host]
        term = hash((_FP_PROVIDED, stream_id, host))
        self._fingerprint ^= term
        self._stream_fp_remove(stream_id, term)
        self._touched_hosts.add(host)
        self._touched_streams.add(stream_id)

    def _admitted_added(self, query_id: int) -> None:
        term = hash((_FP_ADMITTED, query_id))
        self._fingerprint ^= term
        self._admitted_fp ^= term
        catalog = self.catalog
        if not catalog.has_query(query_id):
            # Tests (and defensive callers) may admit ids the catalog does
            # not know; they simply stay out of the membership indexes.
            return
        query = catalog.get_query(query_id)
        for stream_id in query.candidate_streams:
            self._queries_by_stream.setdefault(stream_id, set()).add(query_id)
        for operator_id in query.candidate_operators:
            self._queries_by_operator.setdefault(operator_id, set()).add(query_id)
        self._queries_by_result.setdefault(query.result_stream, set()).add(
            query_id
        )

    def _admitted_removed(self, query_id: int) -> None:
        term = hash((_FP_ADMITTED, query_id))
        self._fingerprint ^= term
        self._admitted_fp ^= term
        catalog = self.catalog
        if not catalog.has_query(query_id):
            return
        query = catalog.get_query(query_id)
        for stream_id in query.candidate_streams:
            members = self._queries_by_stream.get(stream_id)
            if members is not None:
                members.discard(query_id)
                if not members:
                    del self._queries_by_stream[stream_id]
        for operator_id in query.candidate_operators:
            members = self._queries_by_operator.get(operator_id)
            if members is not None:
                members.discard(query_id)
                if not members:
                    del self._queries_by_operator[operator_id]
        members = self._queries_by_result.get(query.result_stream)
        if members is not None:
            members.discard(query_id)
            if not members:
                del self._queries_by_result[query.result_stream]

    # ---------------------------------------------------------------- copying
    def copy(self) -> "Allocation":
        """A deep-enough copy sharing the (immutable) catalog.

        The ground-truth collections *and* every index structure are copied
        directly (plain C-level ``set``/``dict`` copies) instead of being
        rebuilt element-by-element through the observation hooks — copies
        are taken on every candidate-exploration step of the baselines and
        on the garbage-collection path, so this is hot.
        """
        clone = object.__new__(Allocation)
        clone.catalog = self.catalog
        clone.provided = _ObservedDict(clone._provided_set, clone._provided_unset)
        dict.update(clone.provided, self.provided)
        clone.flows = _ObservedSet(clone._flow_added, clone._flow_removed)
        set.update(clone.flows, self.flows)
        clone.available = _ObservedSet(clone._avail_added, clone._avail_removed)
        set.update(clone.available, self.available)
        clone.placements = _ObservedSet(
            clone._placement_added, clone._placement_removed
        )
        set.update(clone.placements, self.placements)
        clone.admitted_queries = _ObservedSet(
            clone._admitted_added, clone._admitted_removed
        )
        set.update(clone.admitted_queries, self.admitted_queries)
        clone._ops_by_host = {h: set(v) for h, v in self._ops_by_host.items()}
        clone._hosts_by_op = {o: set(v) for o, v in self._hosts_by_op.items()}
        clone._avail_by_stream = {
            s: set(v) for s, v in self._avail_by_stream.items()
        }
        clone._avail_by_host = {h: set(v) for h, v in self._avail_by_host.items()}
        clone._flow_edges_by_stream = {
            s: set(v) for s, v in self._flow_edges_by_stream.items()
        }
        clone._flows_by_link = {k: set(v) for k, v in self._flows_by_link.items()}
        clone._flows_by_host = {h: set(v) for h, v in self._flows_by_host.items()}
        clone._sources_by_sink = {
            k: set(v) for k, v in self._sources_by_sink.items()
        }
        clone._provided_by_host = {
            h: set(v) for h, v in self._provided_by_host.items()
        }
        clone._out_count = {h: dict(v) for h, v in self._out_count.items()}
        clone._in_count = {h: dict(v) for h, v in self._in_count.items()}
        clone._cpu_cache = dict(self._cpu_cache)
        clone._out_bw = dict(self._out_bw)
        clone._in_bw = dict(self._in_bw)
        clone._link_bw = dict(self._link_bw)
        clone._site_cpu = dict(self._site_cpu)
        clone._site_ops = dict(self._site_ops)
        clone._wan_bw = dict(self._wan_bw)
        clone._wan_count = dict(self._wan_count)
        clone._queries_by_stream = {
            s: set(v) for s, v in self._queries_by_stream.items()
        }
        clone._queries_by_operator = {
            o: set(v) for o, v in self._queries_by_operator.items()
        }
        clone._queries_by_result = {
            s: set(v) for s, v in self._queries_by_result.items()
        }
        clone._stream_fp = dict(self._stream_fp)
        clone._stream_fp_count = dict(self._stream_fp_count)
        clone._admitted_fp = self._admitted_fp
        clone._fingerprint = self._fingerprint
        # Pending touched state is inherited: a copy taken mid-event (the
        # garbage-collection path) must not lose track of what the event
        # already mutated, or delta validation of the successor object
        # would skip those entities.
        clone._touched_hosts = set(self._touched_hosts)
        clone._touched_streams = set(self._touched_streams)
        clone._touched_operators = set(self._touched_operators)
        return clone

    # ---------------------------------------------------------------- queries
    def is_provided(self, stream_id: int) -> bool:
        """Whether some host currently serves ``stream_id`` to clients."""
        return stream_id in self.provided

    def provider_of(self, stream_id: int) -> Optional[int]:
        """The host serving ``stream_id`` to clients, if any."""
        return self.provided.get(stream_id)

    def is_available(self, host: int, stream_id: int) -> bool:
        """Whether stream ``stream_id`` is available at ``host`` (y)."""
        return (host, stream_id) in self.available

    def has_placement(self, host: int, operator_id: int) -> bool:
        """Whether operator ``operator_id`` runs on ``host`` (z)."""
        return (host, operator_id) in self.placements

    def hosts_with_stream(self, stream_id: int) -> FrozenSet[int]:
        """All hosts at which the stream is available."""
        return frozenset(self._avail_by_stream.get(stream_id, ()))

    def hosts_of_operator(self, operator_id: int) -> FrozenSet[int]:
        """All hosts on which the operator is placed."""
        return frozenset(self._hosts_by_op.get(operator_id, ()))

    def flow_sources(self, host: int, stream_id: int) -> List[int]:
        """Hosts currently sending ``stream_id`` to ``host``."""
        return sorted(self._sources_by_sink.get((host, stream_id), ()))

    def operators_on(self, host: int) -> FrozenSet[int]:
        """Operators placed on ``host``."""
        return frozenset(self._ops_by_host.get(host, ()))

    def placed_operators(self) -> List[int]:
        """Sorted ids of every operator with at least one placement."""
        return sorted(self._hosts_by_op)

    def streams_at(self, host: int) -> FrozenSet[int]:
        """Streams marked available at ``host``."""
        return frozenset(self._avail_by_host.get(host, ()))

    def provided_at(self, host: int) -> FrozenSet[int]:
        """Streams served to clients from ``host``."""
        return frozenset(self._provided_by_host.get(host, ()))

    def flow_edges_of_stream(self, stream_id: int) -> FrozenSet[Tuple[int, int]]:
        """The (src, dst) edges currently shipping ``stream_id``."""
        return frozenset(self._flow_edges_by_stream.get(stream_id, ()))

    def flows_of_host(self, host: int) -> FrozenSet[FlowKey]:
        """Every flow with ``host`` as source or destination."""
        return frozenset(self._flows_by_host.get(host, ()))

    # ----------------------------------------------- query-membership indexes
    def queries_using_stream(self, stream_id: int) -> FrozenSet[int]:
        """Admitted queries with ``stream_id`` among their candidate streams.

        This is the reuse-overlap index: enumerating which resident queries
        could share work with an arriving query costs O(overlap), not
        O(resident queries).  Ids the catalog does not know are never
        indexed (see :meth:`_admitted_added`).
        """
        return frozenset(self._queries_by_stream.get(stream_id, ()))

    def queries_using_operator(self, operator_id: int) -> FrozenSet[int]:
        """Admitted queries with ``operator_id`` among their candidates."""
        return frozenset(self._queries_by_operator.get(operator_id, ()))

    def queries_for_result(self, stream_id: int) -> FrozenSet[int]:
        """Admitted queries whose result stream is ``stream_id``."""
        return frozenset(self._queries_by_result.get(stream_id, ()))

    def queries_using_stream_scan(self, stream_id: int) -> FrozenSet[int]:
        """Full-scan recomputation of :meth:`queries_using_stream`."""
        catalog = self.catalog
        return frozenset(
            qid
            for qid in self.admitted_queries
            if catalog.has_query(qid)
            and stream_id in catalog.get_query(qid).candidate_streams
        )

    def queries_using_operator_scan(self, operator_id: int) -> FrozenSet[int]:
        """Full-scan recomputation of :meth:`queries_using_operator`."""
        catalog = self.catalog
        return frozenset(
            qid
            for qid in self.admitted_queries
            if catalog.has_query(qid)
            and operator_id in catalog.get_query(qid).candidate_operators
        )

    def queries_for_result_scan(self, stream_id: int) -> FrozenSet[int]:
        """Full-scan recomputation of :meth:`queries_for_result`."""
        catalog = self.catalog
        return frozenset(
            qid
            for qid in self.admitted_queries
            if catalog.has_query(qid)
            and catalog.get_query(qid).result_stream == stream_id
        )

    # ----------------------------------------------------------- resource usage
    def cpu_used(self, host: int, exclude_operators: Optional[Set[int]] = None) -> float:
        """CPU consumed on ``host`` (optionally excluding some operators)."""
        total = self._cpu_cache.get(host, 0.0)
        if exclude_operators:
            placed = self._ops_by_host.get(host)
            if placed:
                for operator_id in placed.intersection(exclude_operators):
                    total -= self.catalog.get_operator(operator_id).cpu_cost
        return total

    def _excluded_flow_rate(
        self, counts: Optional[Dict[int, int]], exclude_streams: Set[int]
    ) -> float:
        """Total rate of excluded streams in a per-host flow-count map,
        iterating whichever of the two is smaller."""
        if not counts:
            return 0.0
        rate = self.catalog.stream_rate
        total = 0.0
        if len(exclude_streams) < len(counts):
            for stream_id in exclude_streams:
                count = counts.get(stream_id)
                if count:
                    total += count * rate(stream_id)
        else:
            for stream_id, count in counts.items():
                if stream_id in exclude_streams:
                    total += count * rate(stream_id)
        return total

    def out_bandwidth_used(self, host: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Outgoing bandwidth used at ``host`` — flows out plus client delivery."""
        total = self._out_bw.get(host, 0.0)
        if exclude_streams and total:
            total -= self._excluded_flow_rate(
                self._out_count.get(host), exclude_streams
            )
            delivered = self._provided_by_host.get(host)
            if delivered:
                rate = self.catalog.stream_rate
                for stream_id in delivered.intersection(exclude_streams):
                    total -= rate(stream_id)
        return total

    def in_bandwidth_used(self, host: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Incoming bandwidth used at ``host`` from flows."""
        total = self._in_bw.get(host, 0.0)
        if exclude_streams and total:
            total -= self._excluded_flow_rate(
                self._in_count.get(host), exclude_streams
            )
        return total

    def link_used(self, src: int, dst: int, exclude_streams: Optional[Set[int]] = None) -> float:
        """Bandwidth used on the directed link ``src -> dst``."""
        total = self._link_bw.get((src, dst), 0.0)
        if exclude_streams and total:
            streams = self._flows_by_link.get((src, dst))
            if streams:
                rate = self.catalog.stream_rate
                for stream_id in streams.intersection(exclude_streams):
                    total -= rate(stream_id)
        return total

    def cpu_utilisation(self, host: int) -> float:
        """Fraction of the host's CPU capacity in use (0..1+)."""
        capacity = self.catalog.hosts.get(host).cpu_capacity
        return self.cpu_used(host) / capacity if capacity > 0 else 0.0

    def network_usage(self, host: int) -> float:
        """Total data rate sent plus received by ``host`` (for Fig. 7c)."""
        return self.out_bandwidth_used(host) + self.in_bandwidth_used(host)

    def max_cpu_used(self) -> float:
        """The O4 objective value: maximum CPU consumption over hosts."""
        if not self._cpu_cache:
            return 0.0
        offline = self.catalog.hosts.offline_ids
        if offline:
            offline = set(offline)
            return max(
                (used for host, used in self._cpu_cache.items() if host not in offline),
                default=0.0,
            )
        return max(self._cpu_cache.values())

    def total_cpu_used(self) -> float:
        """The O3 objective value: system-wide CPU consumption."""
        offline = self.catalog.hosts.offline_ids
        if offline:
            offline = set(offline)
            return sum(
                used for host, used in self._cpu_cache.items() if host not in offline
            )
        return sum(self._cpu_cache.values())

    def total_network_used(self) -> float:
        """The O2 objective value: system-wide inter-host traffic."""
        return sum(self._link_bw.values())

    # ------------------------------------------------------ per-site aggregates
    def site_cpu_used(self, site: int) -> float:
        """CPU consumed by operator placements inside ``site`` (O(1))."""
        return self._site_cpu.get(site, 0.0)

    def wan_used(
        self,
        src_site: int,
        dst_site: int,
        exclude_streams: Optional[Set[int]] = None,
    ) -> float:
        """Bandwidth crossing the shared WAN gateway ``src_site ->
        dst_site`` (O(1); zero inside one site).

        ``exclude_streams`` discounts the crossings of the given streams
        (the re-planning background computation, mirroring
        :meth:`link_used`).
        """
        total = self._wan_bw.get((src_site, dst_site), 0.0)
        if exclude_streams and total:
            site_of = self.catalog.site_of_host
            rate = self.catalog.stream_rate
            for stream_id in exclude_streams:
                for src, dst in self._flow_edges_by_stream.get(stream_id, ()):
                    if site_of(src) == src_site and site_of(dst) == dst_site:
                        total -= rate(stream_id)
        return total

    def wan_usage(self) -> Dict[Tuple[int, int], float]:
        """Snapshot of every ordered site pair with non-zero WAN traffic."""
        return dict(self._wan_bw)

    # ------------------------------------------------- naive full-scan oracles
    def cpu_used_scan(self, host: int, exclude_operators: Optional[Set[int]] = None) -> float:
        """Full-scan recomputation of :meth:`cpu_used` (index-independent)."""
        exclude = exclude_operators or set()
        return sum(
            self.catalog.get_operator(o).cpu_cost
            for (h, o) in self.placements
            if h == host and o not in exclude
        )

    def out_bandwidth_used_scan(
        self, host: int, exclude_streams: Optional[Set[int]] = None
    ) -> float:
        """Full-scan recomputation of :meth:`out_bandwidth_used`."""
        exclude = exclude_streams or set()
        total = sum(
            self.catalog.stream_rate(s)
            for (src, _dst, s) in self.flows
            if src == host and s not in exclude
        )
        total += sum(
            self.catalog.stream_rate(s)
            for s, h in self.provided.items()
            if h == host and s not in exclude
        )
        return total

    def in_bandwidth_used_scan(
        self, host: int, exclude_streams: Optional[Set[int]] = None
    ) -> float:
        """Full-scan recomputation of :meth:`in_bandwidth_used`."""
        exclude = exclude_streams or set()
        return sum(
            self.catalog.stream_rate(s)
            for (_src, dst, s) in self.flows
            if dst == host and s not in exclude
        )

    def link_used_scan(
        self, src: int, dst: int, exclude_streams: Optional[Set[int]] = None
    ) -> float:
        """Full-scan recomputation of :meth:`link_used`."""
        exclude = exclude_streams or set()
        return sum(
            self.catalog.stream_rate(s)
            for (h, m, s) in self.flows
            if h == src and m == dst and s not in exclude
        )

    def max_cpu_used_scan(self) -> float:
        """Full-scan recomputation of :meth:`max_cpu_used`."""
        if self.catalog.num_hosts == 0:
            return 0.0
        return max(self.cpu_used_scan(h) for h in self.catalog.host_ids)

    def site_cpu_used_scan(self, site: int) -> float:
        """Full-scan recomputation of :meth:`site_cpu_used`."""
        catalog = self.catalog
        return sum(
            catalog.get_operator(o).cpu_cost
            for (h, o) in self.placements
            if catalog.site_of_host(h) == site
        )

    def wan_used_scan(self, src_site: int, dst_site: int) -> float:
        """Full-scan recomputation of :meth:`wan_used`."""
        catalog = self.catalog
        return sum(
            catalog.stream_rate(s)
            for (src, dst, s) in self.flows
            if catalog.site_of_host(src) == src_site
            and catalog.site_of_host(dst) == dst_site
            and src_site != dst_site
        )

    # ------------------------------------------------- fingerprint and touched
    def fingerprint(self) -> Tuple:
        """A hashable rolling snapshot of the allocation contents.

        Maintained in O(1) per mutation: each element of each collection
        contributes an order-independent XOR term (with a per-collection
        tag), and the element counts guard against trivial cancellation.
        Equal-content allocations always produce equal fingerprints
        regardless of mutation history; distinct contents collide only with
        the probability of a 64-bit XOR-hash collision, which the planner's
        model-reuse cache accepts in exchange for never re-scanning the
        allocation (see :class:`repro.core.model_builder.ModelReuseCache`).
        """
        return (
            self._fingerprint,
            len(self.flows),
            len(self.available),
            len(self.placements),
            len(self.provided),
            len(self.admitted_queries),
        )

    def structural_fingerprint(self) -> Tuple:
        """Like :meth:`fingerprint`, but blind to admitted-query membership.

        The sub-plan index keys its freshness check on this: admitting a
        duplicate query (or any other admitted-set-only bookkeeping) changes
        no placement structure, so it must not force an index resync.
        """
        return (
            self._fingerprint ^ self._admitted_fp,
            len(self.flows),
            len(self.available),
            len(self.placements),
            len(self.provided),
        )

    def stream_fingerprint(self, stream_id: int) -> Tuple[int, int]:
        """The rolling ``(xor, count)`` slice of one stream's structures.

        Covers every flow/availability/provided entry of the stream plus
        every placement of an operator producing it.  Two allocation states
        in which the stream's structures are identical report the same
        slice, so the sub-plan index can prove a cached sub-plan fresh
        after an *external* allocation change by comparing the slices of
        just the streams that plan reads.
        """
        return (
            self._stream_fp.get(stream_id, 0),
            self._stream_fp_count.get(stream_id, 0),
        )

    def stream_fingerprint_scan(self, stream_id: int) -> Tuple[int, int]:
        """Full-scan recomputation of :meth:`stream_fingerprint`."""
        fp = 0
        count = 0
        for src, dst, s in self.flows:
            if s == stream_id:
                fp ^= hash((_FP_FLOW, src, dst, s))
                count += 1
        for host, s in self.available:
            if s == stream_id:
                fp ^= hash((_FP_AVAIL, host, s))
                count += 1
        for host, operator_id in self.placements:
            if self.catalog.get_operator(operator_id).output_stream == stream_id:
                fp ^= hash((_FP_PLACE, host, operator_id))
                count += 1
        host = self.provided.get(stream_id)
        if host is not None:
            fp ^= hash((_FP_PROVIDED, stream_id, host))
            count += 1
        return fp, count

    def drain_touched(self) -> Tuple[Set[int], Set[int], Set[int]]:
        """Return and reset the (hosts, streams, operators) touched so far.

        Every index-maintaining mutation records which entities it touched;
        the simulation harness drains this accumulator after each event and
        validates only the drained sets via :meth:`validate_delta`.
        """
        touched = (
            self._touched_hosts,
            self._touched_streams,
            self._touched_operators,
        )
        self._touched_hosts = set()
        self._touched_streams = set()
        self._touched_operators = set()
        return touched

    def peek_touched(self) -> Tuple[Set[int], Set[int], Set[int]]:
        """Copies of the pending touched sets, without draining them.

        Lets an intermediate consumer (the cluster engine validating a host
        failure) act on the accumulated touched state while leaving it in
        place for the final consumer of the event (the harness).
        """
        return (
            set(self._touched_hosts),
            set(self._touched_streams),
            set(self._touched_operators),
        )

    def inherit_touched(self, source: "Allocation") -> None:
        """Adopt ``source``'s pending touched state plus the diff to it.

        Called by :func:`repro.dsps.plan.rebuild_minimal_allocation` after a
        rebuild: the rebuilt object's own accumulator only records its
        construction (i.e. everything), so it is drained and re-seeded with
        what actually changed relative to ``source`` — the garbage-collected
        structures — plus whatever ``source`` itself had pending from
        earlier mutations in the same event.  This keeps
        ``drain_touched()`` on the successor object a complete record of
        the event's net changes across object replacements.
        """
        self.drain_touched()
        hosts, streams, operators = touched_between(source, self)
        self._touched_hosts = hosts | source._touched_hosts
        self._touched_streams = streams | source._touched_streams
        self._touched_operators = operators | source._touched_operators

    # ---------------------------------------------------------------- mutation
    def apply(self, delta: PlacementDelta) -> None:
        """Apply ``delta`` in place (removals first, then additions)."""
        self.flows -= delta.remove_flows
        self.available -= delta.remove_available
        self.placements -= delta.remove_placements
        for stream_id in delta.unset_provided:
            self.provided.pop(stream_id, None)
        self.flows |= delta.add_flows
        self.available |= delta.add_available
        self.placements |= delta.add_placements
        self.provided.update(delta.set_provided)
        self.admitted_queries |= delta.admit_queries

    def admit_query(self, query_id: int) -> None:
        """Mark a query as admitted."""
        self.admitted_queries.add(query_id)

    def without_queries(self, query_ids: Iterable[int]) -> "Allocation":
        """A new allocation with ``query_ids`` removed and garbage-collected.

        This is §IV-B's "considering the system without those queries": the
        queries leave the admitted set, their result streams stop being
        provided unless another admitted query still requests them, and the
        remainder is rebuilt down to the structures the surviving queries
        actually need (via
        :func:`repro.dsps.plan.rebuild_minimal_allocation`).  The result is
        a subset of ``self``, so it cannot violate resource capacities this
        allocation satisfied.  ``self`` is left untouched.
        """
        from repro.dsps.plan import rebuild_minimal_allocation  # avoid a cycle

        removed = set(query_ids) & self.admitted_queries
        if not removed:
            return self.copy()
        shrunk = self.copy()
        shrunk.admitted_queries -= removed
        surviving_results = {
            self.catalog.get_query(qid).result_stream
            for qid in shrunk.admitted_queries
        }
        for query_id in removed:
            result_stream = self.catalog.get_query(query_id).result_stream
            if result_stream not in surviving_results:
                shrunk.provided.pop(result_stream, None)
        return rebuild_minimal_allocation(self.catalog, shrunk)

    # -------------------------------------------------------------- validation
    def validate(self, tol: float = 1e-6) -> List[str]:
        """Check the allocation against all model constraints; list violations.

        This is the full, index-independent oracle: it scans the
        ground-truth collections and recomputes resource usage with the
        ``*_scan`` helpers, so it cannot be fooled by a drifted index or a
        stale cached aggregate.  The hot path uses :meth:`validate_delta`;
        the simulation harness still runs this oracle on the final state.
        """
        violations: List[str] = []
        catalog = self.catalog

        # Liveness: nothing may run on, flow through or be served from a host
        # that is currently offline (a failed host has no resources at all).
        offline = set(catalog.hosts.offline_ids)
        if offline:
            for host, operator_id in self.placements:
                if host in offline:
                    violations.append(
                        f"liveness: operator {operator_id} placed on offline host {host}"
                    )
            for src, dst, stream_id in self.flows:
                if src in offline or dst in offline:
                    violations.append(
                        f"liveness: flow {src}->{dst} of stream {stream_id} "
                        f"touches an offline host"
                    )
            for stream_id, host in self.provided.items():
                if host in offline:
                    violations.append(
                        f"liveness: stream {stream_id} provided from offline host {host}"
                    )
            for host, stream_id in self.available:
                if host in offline:
                    violations.append(
                        f"liveness: stream {stream_id} marked available at "
                        f"offline host {host}"
                    )

        # Demand constraints (III.4): provided streams must be requested and
        # available at the providing host.
        requested = catalog.requested_streams
        for stream_id, host in self.provided.items():
            if stream_id not in requested:
                violations.append(
                    f"demand: stream {stream_id} is provided but not requested"
                )
            if (host, stream_id) not in self.available:
                violations.append(
                    f"demand: host {host} provides stream {stream_id} without having it"
                )

        # Availability constraints (III.5): y implies a source; x and z imply y.
        for host, stream_id in self.available:
            stream = catalog.streams.get(stream_id)
            has_flow_in = any(
                dst == host and s == stream_id for (_src, dst, s) in self.flows
            )
            generates = any(
                catalog.get_operator(o).output_stream == stream_id
                for (h, o) in self.placements
                if h == host
            )
            is_base_here = stream.is_base and host in catalog.base_hosts_of(stream_id)
            if not (has_flow_in or generates or is_base_here):
                violations.append(
                    f"availability: stream {stream_id} marked available at host "
                    f"{host} with no source"
                )
        for host, operator_id in self.placements:
            operator = catalog.get_operator(operator_id)
            for input_id in operator.input_streams:
                if (host, input_id) not in self.available:
                    violations.append(
                        f"availability: operator {operator_id} on host {host} "
                        f"misses input stream {input_id}"
                    )
        for src, dst, stream_id in self.flows:
            if (src, stream_id) not in self.available:
                violations.append(
                    f"availability: host {src} sends stream {stream_id} to "
                    f"{dst} without having it"
                )

        # Resource constraints (III.6).
        for host in catalog.host_ids:
            capacity = catalog.hosts.get(host)
            if self.cpu_used_scan(host) > capacity.cpu_capacity + tol:
                violations.append(
                    f"resources: CPU overload on host {host}: "
                    f"{self.cpu_used_scan(host):.3f} > {capacity.cpu_capacity:.3f}"
                )
            if self.out_bandwidth_used_scan(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: outgoing bandwidth overload on host {host}"
                )
            if self.in_bandwidth_used_scan(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: incoming bandwidth overload on host {host}"
                )
        for src in catalog.host_ids:
            for dst in catalog.host_ids:
                if src == dst:
                    continue
                if self.link_used_scan(src, dst) > catalog.link_capacity(src, dst) + tol:
                    violations.append(
                        f"resources: link {src}->{dst} overloaded"
                    )

        # Federated constraints: shared WAN gateway capacities and site
        # liveness (no stream may cross the boundary of a partitioned site).
        # Recomputed by scanning the flows — index-free, like the rest of
        # the oracle.
        if catalog.num_sites > 1:
            partitioned = set(catalog.partitioned_sites)
            wan_usage: Dict[Tuple[int, int], float] = {}
            for src, dst, stream_id in self.flows:
                src_site = catalog.site_of_host(src)
                dst_site = catalog.site_of_host(dst)
                if src_site == dst_site:
                    continue
                pair = (src_site, dst_site)
                wan_usage[pair] = wan_usage.get(pair, 0.0) + catalog.stream_rate(
                    stream_id
                )
                if src_site in partitioned or dst_site in partitioned:
                    violations.append(
                        f"site-liveness: flow {src}->{dst} of stream {stream_id} "
                        f"crosses a partitioned site boundary "
                        f"({src_site}->{dst_site})"
                    )
            for (src_site, dst_site), used in sorted(wan_usage.items()):
                if src_site in partitioned or dst_site in partitioned:
                    continue  # already reported as site-liveness violations
                capacity = catalog.effective_wan_capacity(src_site, dst_site)
                if capacity is not None and used > capacity + tol:
                    violations.append(
                        f"resources: WAN gateway {src_site}->{dst_site} overloaded"
                    )

        # Acyclicity (III.7): per stream, flows must form a DAG rooted at real
        # sources (operator placements or base-stream injection points).
        violations.extend(self._acyclicity_violations())
        return violations

    def validate_delta(
        self,
        touched_hosts: Iterable[int],
        touched_streams: Iterable[int] = (),
        touched_operators: Iterable[int] = (),
        tol: float = 1e-6,
    ) -> List[str]:
        """Check only the constraints the touched entities participate in.

        Given a previously *valid* allocation, any violation introduced by a
        mutation batch involves at least one structure whose host, stream or
        operator that batch touched (see :meth:`drain_touched`,
        :func:`delta_touched_sets` and :func:`touched_between`), so checking
        the touched slice finds exactly what the full oracle would find.
        Pre-existing violations outside the touched slice are *not*
        re-reported — the harness runs the full oracle on the final state as
        a backstop.

        All lookups go through the incremental indexes, so the cost is
        O(degree of the touched entities), not O(allocation size) or
        O(hosts²).
        """
        touched_hosts = set(touched_hosts)
        touched_streams = set(touched_streams)
        touched_operators = set(touched_operators)
        violations: List[str] = []
        if not (touched_hosts or touched_streams or touched_operators):
            return violations
        catalog = self.catalog

        # A touched host drags in every stream it sources or carries: its
        # liveness (and hence its eligibility as a base injection point or
        # generator) participates in the per-stream acyclicity check, so
        # those streams must be re-checked even when no allocation structure
        # of theirs changed (e.g. a host going offline under live flows).
        for host in touched_hosts:
            for operator_id in self._ops_by_host.get(host, ()):
                touched_streams.add(catalog.get_operator(operator_id).output_stream)
            touched_streams |= catalog.base_streams_registered_at(host)
            for _src, _dst, stream_id in self._flows_by_host.get(host, ()):
                touched_streams.add(stream_id)

        # Liveness.
        offline = set(catalog.hosts.offline_ids)
        if offline and touched_hosts:
            for host in sorted(touched_hosts & offline):
                for operator_id in sorted(self._ops_by_host.get(host, ())):
                    violations.append(
                        f"liveness: operator {operator_id} placed on offline host {host}"
                    )
            flow_keys: Set[FlowKey] = set()
            for host in touched_hosts:
                flow_keys |= self._flows_by_host.get(host, set())
            for src, dst, stream_id in sorted(flow_keys):
                if src in offline or dst in offline:
                    violations.append(
                        f"liveness: flow {src}->{dst} of stream {stream_id} "
                        f"touches an offline host"
                    )
            for host in sorted(touched_hosts & offline):
                for stream_id in sorted(self._provided_by_host.get(host, ())):
                    violations.append(
                        f"liveness: stream {stream_id} provided from offline host {host}"
                    )
                for stream_id in sorted(self._avail_by_host.get(host, ())):
                    violations.append(
                        f"liveness: stream {stream_id} marked available at "
                        f"offline host {host}"
                    )

        # Demand (III.4) for touched provided entries.
        requested = catalog.requested_streams
        provided_to_check: Set[int] = {
            s for s in touched_streams if s in self.provided
        }
        for host in touched_hosts:
            provided_to_check |= self._provided_by_host.get(host, set())
        for stream_id in sorted(provided_to_check):
            host = self.provided[stream_id]
            if stream_id not in requested:
                violations.append(
                    f"demand: stream {stream_id} is provided but not requested"
                )
            if (host, stream_id) not in self.available:
                violations.append(
                    f"demand: host {host} provides stream {stream_id} without having it"
                )

        # Availability (III.5): y implies a source.
        avail_pairs: Set[AvailKey] = set()
        for host in touched_hosts:
            for stream_id in self._avail_by_host.get(host, ()):
                avail_pairs.add((host, stream_id))
        for stream_id in touched_streams:
            for host in self._avail_by_stream.get(stream_id, ()):
                avail_pairs.add((host, stream_id))
        for host, stream_id in sorted(avail_pairs):
            stream = catalog.streams.get(stream_id)
            has_flow_in = bool(self._sources_by_sink.get((host, stream_id)))
            generates = any(
                operator.operator_id in self._ops_by_host.get(host, ())
                for operator in catalog.producers_of(stream_id)
            )
            is_base_here = stream.is_base and host in catalog.base_hosts_of(stream_id)
            if not (has_flow_in or generates or is_base_here):
                violations.append(
                    f"availability: stream {stream_id} marked available at host "
                    f"{host} with no source"
                )

        # Availability (III.5): z implies its inputs are available.
        place_pairs: Set[PlaceKey] = set()
        for host in touched_hosts:
            for operator_id in self._ops_by_host.get(host, ()):
                place_pairs.add((host, operator_id))
        for operator_id in touched_operators:
            for host in self._hosts_by_op.get(operator_id, ()):
                place_pairs.add((host, operator_id))
        for host, operator_id in sorted(place_pairs):
            operator = catalog.get_operator(operator_id)
            for input_id in operator.input_streams:
                if (host, input_id) not in self.available:
                    violations.append(
                        f"availability: operator {operator_id} on host {host} "
                        f"misses input stream {input_id}"
                    )

        # Availability (III.5): x implies the sender has the stream.
        flow_checks: Set[FlowKey] = set()
        for host in touched_hosts:
            flow_checks |= self._flows_by_host.get(host, set())
        for stream_id in touched_streams:
            for src, dst in self._flow_edges_by_stream.get(stream_id, ()):
                flow_checks.add((src, dst, stream_id))
        for src, dst, stream_id in sorted(flow_checks):
            if (src, stream_id) not in self.available:
                violations.append(
                    f"availability: host {src} sends stream {stream_id} to "
                    f"{dst} without having it"
                )

        # Resources (III.6) on touched hosts and their incident links.
        for host in sorted(touched_hosts):
            if not catalog.is_host_active(host):
                continue
            capacity = catalog.hosts.get(host)
            if self.cpu_used(host) > capacity.cpu_capacity + tol:
                violations.append(
                    f"resources: CPU overload on host {host}: "
                    f"{self.cpu_used(host):.3f} > {capacity.cpu_capacity:.3f}"
                )
            if self.out_bandwidth_used(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: outgoing bandwidth overload on host {host}"
                )
            if self.in_bandwidth_used(host) > capacity.bandwidth_capacity + tol:
                violations.append(
                    f"resources: incoming bandwidth overload on host {host}"
                )
        incident_links: Set[Tuple[int, int]] = set()
        for host in touched_hosts:
            for src, dst, _stream in self._flows_by_host.get(host, ()):
                incident_links.add((src, dst))
        for src, dst in sorted(incident_links):
            if not (catalog.is_host_active(src) and catalog.is_host_active(dst)):
                continue
            if self._link_bw[(src, dst)] > catalog.link_capacity(src, dst) + tol:
                violations.append(f"resources: link {src}->{dst} overloaded")

        # Federated constraints on the sites the touched hosts belong to:
        # shared WAN gateway capacities (via the incremental per-site-pair
        # aggregate) and site liveness of crossing flows.
        if catalog.num_sites > 1:
            touched_sites = {catalog.site_of_host(h) for h in touched_hosts}
            partitioned = set(catalog.partitioned_sites)
            crossing: Set[FlowKey] = set()
            for host in touched_hosts:
                crossing |= self._flows_by_host.get(host, set())
            for src, dst, stream_id in sorted(crossing):
                src_site = catalog.site_of_host(src)
                dst_site = catalog.site_of_host(dst)
                if src_site == dst_site:
                    continue
                if src_site in partitioned or dst_site in partitioned:
                    violations.append(
                        f"site-liveness: flow {src}->{dst} of stream {stream_id} "
                        f"crosses a partitioned site boundary "
                        f"({src_site}->{dst_site})"
                    )
            for (src_site, dst_site), used in sorted(self._wan_bw.items()):
                if src_site not in touched_sites and dst_site not in touched_sites:
                    continue
                if src_site in partitioned or dst_site in partitioned:
                    continue  # already reported as site-liveness violations
                capacity = catalog.effective_wan_capacity(src_site, dst_site)
                if capacity is not None and used > capacity + tol:
                    violations.append(
                        f"resources: WAN gateway {src_site}->{dst_site} overloaded"
                    )

        # Acyclicity (III.7) for touched streams only.
        for stream_id in sorted(touched_streams):
            edges = self._flow_edges_by_stream.get(stream_id)
            if not edges:
                continue
            violations.extend(self._stream_acyclicity(stream_id, edges, offline))
        return violations

    def is_feasible(self, tol: float = 1e-6) -> bool:
        """Whether the allocation satisfies every constraint."""
        return not self.validate(tol)

    def _stream_acyclicity(
        self,
        stream_id: int,
        edges: Iterable[Tuple[int, int]],
        offline: Set[int],
    ) -> List[str]:
        """Index-backed reachability check of one stream's flow graph."""
        catalog = self.catalog
        stream = catalog.streams.get(stream_id)
        sources: Set[int] = set()
        for operator in catalog.producers_of(stream_id):
            sources |= self._hosts_by_op.get(operator.operator_id, set())
        if stream.is_base:
            sources |= set(catalog.base_hosts_of(stream_id))
        if offline:
            sources -= offline
        reachable = set(sources)
        frontier = list(sources)
        adjacency: Dict[int, List[int]] = {}
        for src, dst in edges:
            adjacency.setdefault(src, []).append(dst)
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency.get(node, []):
                if neighbour not in reachable:
                    reachable.add(neighbour)
                    frontier.append(neighbour)
        receivers = {dst for (_src, dst) in edges}
        unreachable = receivers - reachable
        if unreachable:
            return [
                f"acyclicity: stream {stream_id} reaches hosts {sorted(unreachable)} "
                f"only through a causal loop (no path from a real source)"
            ]
        return []

    def _acyclicity_violations(self) -> List[str]:
        violations: List[str] = []
        catalog = self.catalog
        streams_with_flows = {s for (_h, _m, s) in self.flows}
        for stream_id in streams_with_flows:
            stream = catalog.streams.get(stream_id)
            edges = [(h, m) for (h, m, s) in self.flows if s == stream_id]
            sources = set()
            for host in catalog.host_ids:
                generates = any(
                    catalog.get_operator(o).output_stream == stream_id
                    for (h, o) in self.placements
                    if h == host
                )
                is_base_here = stream.is_base and host in catalog.base_hosts_of(stream_id)
                if generates or is_base_here:
                    sources.add(host)
            # Every host receiving the stream must be reachable from a source.
            reachable = set(sources)
            frontier = list(sources)
            adjacency: Dict[int, List[int]] = {}
            for src, dst in edges:
                adjacency.setdefault(src, []).append(dst)
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency.get(node, []):
                    if neighbour not in reachable:
                        reachable.add(neighbour)
                        frontier.append(neighbour)
            receivers = {dst for (_src, dst) in edges}
            unreachable = receivers - reachable
            if unreachable:
                violations.append(
                    f"acyclicity: stream {stream_id} reaches hosts {sorted(unreachable)} "
                    f"only through a causal loop (no path from a real source)"
                )
        return violations

    # -------------------------------------------------------------- summaries
    def summary(self) -> str:
        """One-line description of the allocation size."""
        return (
            f"Allocation: {len(self.admitted_queries)} admitted queries, "
            f"{len(self.placements)} operator placements, {len(self.flows)} flows, "
            f"{len(self.provided)} provided streams"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"
