"""Persistent sub-plan index: incremental garbage collection and reuse
matching for admissions against a large resident-query population.

Reuse of already-deployed sub-queries is the core SQPR idea, but with the
allocation garbage-collected through
:func:`repro.dsps.plan.rebuild_minimal_allocation` every admission pays a
full pass over *all* resident queries (one plan extraction each).  That
term — together with the full-collection teardown scans and the overlap
scan of scope computation, both fixed at their own call sites — made
admission latency grow linearly with the number of resident queries.

The :class:`SubPlanIndex` removes the remaining linear extraction term.
It caches, per *result stream*, a :class:`SubPlanRecord`: the structure
sequence the deployed sub-plan's extraction emits, plus the exact set of
allocation points the extraction *read* — positively or negatively (see
the ``read_log`` parameter of :func:`repro.dsps.plan.extract_plan`).
Records are keyed by result stream rather than query id because duplicate
queries share one deployed sub-plan; under a reuse-heavy (Zipfian)
workload the number of records grows with the number of *distinct* plans,
not with the resident-query count.

Identity with the index-free path is non-negotiable here (the benchmark
asserts bit-equal admissions and fingerprints), and it is delicate:
solver tie-breaking is sensitive not just to allocation *content* but to
the construction history of the allocation object (set iteration order,
floating-point accumulation order in the cached resource aggregates).
The index therefore never prunes the live allocation in place.  Instead
:meth:`SubPlanIndex.collect` and :meth:`SubPlanIndex.retire`
*materialise* a successor: a fresh :class:`Allocation` built by replaying
the cached records in exactly the order
:func:`rebuild_minimal_allocation` would emit them — sorted admitted
queries, plan-tree node order within each.  Since ``extract_plan`` is a
deterministic function of allocation content (its reverse-index reads are
sorted) and the cached records equal what a fresh extraction would
return, the materialised object is indistinguishable from the index-free
rebuild's output.  What the index saves is the extraction work: only
records whose logged read points the applied delta touched are
re-extracted; everything else is replayed from cache.

Two facts make the record cache exact:

* **Read-key completeness.**  ``extract_plan`` is a deterministic
  function of the allocation values at its logged ``(host, stream)``
  points plus the catalog.  A delta that touches none of a record's
  points cannot change that record's extraction.
* **Minimality invariant.**  The live allocation always equals the union
  of the records' structures (it *is* their replay), so records never go
  stale between deltas.

External changes (the engine adopting a different allocation, the
adaptive replanner replacing the planner's allocation, a host failure)
are detected by comparing the allocation's *structural* fingerprint
against the value stored after the last index operation; a mismatch makes
the caller fall back to the index-free rebuild once, after which
:meth:`SubPlanIndex.rebuild` re-synchronises.  The rebuild is accelerated
by per-stream fingerprint slices
(:meth:`~repro.dsps.allocation.Allocation.stream_fingerprint`): a cached
record whose read streams all carry unchanged slices is provably still
the extraction result and is kept without re-extracting it.  Catalog
state (base-injection liveness) is read by extraction at points the read
log does not cover, so :meth:`SubPlanIndex.invalidate` must be called on
topology changes — the planner does this in ``on_topology_change`` and
``reset``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import extract_plan
from repro.dsps.query import Query

__all__ = [
    "ReuseMatch",
    "SubPlanIndex",
    "SubPlanRecord",
    "resolve_reuse_matches",
]

#: Pseudo-host used in read keys for "who provides this stream" lookups
#: (real host ids are non-negative).
_PROVIDER = -1

ReadKey = Tuple[int, int]  # (host | _PROVIDER, stream)

#: Structure-op kinds in a record's replay sequence.
_AVAIL = 0
_PLACE = 1
_FLOW = 2

Op = Tuple[int, Tuple[int, ...]]  # (kind, structure key)


@dataclass(frozen=True)
class SubPlanRecord:
    """One result stream's cached deployed sub-plan.

    ``ops`` is the exact structure sequence
    :func:`rebuild_minimal_allocation` emits for one query using this
    result stream, in emission order — replaying it reproduces the
    rebuild bit for bit.  ``stream_slices`` snapshots the per-stream
    fingerprint slice of every stream the extraction read, taken at
    extraction time — the record's operator-subgraph fingerprint.  If
    every slice still matches a live allocation, the record is provably
    the plan a fresh extraction from it would return.
    """

    result_stream: int
    provider: Optional[int]
    ops: Tuple[Op, ...]
    read_keys: FrozenSet[ReadKey]
    stream_slices: Tuple[Tuple[int, int, int], ...]  # (stream, xor, count)

    @property
    def num_structures(self) -> int:
        """Size of the deployed sub-plan in (non-distinct) structure ops."""
        return len(self.ops)


@dataclass(frozen=True)
class ReuseMatch:
    """Reuse resolution for one arriving query, straight off the indexes.

    ``exact`` — the result stream is already provided, so admission is a
    free duplicate (Algorithm 1, line 3).  ``shared_streams`` /
    ``overlapping_queries`` quantify partial reuse: how many of the
    query's candidate streams some resident query also lists, and how
    many distinct resident queries overlap at all.
    """

    query_id: int
    result_stream: int
    exact: bool
    shared_streams: int
    overlapping_queries: int

    @property
    def partial(self) -> bool:
        """Whether the query overlaps residents without being a duplicate."""
        return not self.exact and self.overlapping_queries > 0


def resolve_reuse_matches(
    allocation: Allocation, queries: Sequence[Query]
) -> List[ReuseMatch]:
    """Resolve exact/partial reuse for a batch in one index pass.

    Per-stream membership lookups are shared across the batch
    (co-arriving queries under a Zipfian workload overlap heavily), so
    the cost is one index lookup per *distinct* candidate stream in the
    batch, ~O(total query size) — never a scan over resident queries.
    """
    users_cache: Dict[int, FrozenSet[int]] = {}
    matches: List[ReuseMatch] = []
    for query in queries:
        overlapping: Set[int] = set()
        shared = 0
        for stream_id in query.candidate_streams:
            users = users_cache.get(stream_id)
            if users is None:
                users = allocation.queries_using_stream(stream_id)
                users_cache[stream_id] = users
            if users:
                shared += 1
                overlapping |= users
        overlapping.discard(query.query_id)
        matches.append(
            ReuseMatch(
                query_id=query.query_id,
                result_stream=query.result_stream,
                exact=allocation.is_provided(query.result_stream),
                shared_streams=shared,
                overlapping_queries=len(overlapping),
            )
        )
    return matches


class SubPlanIndex:
    """Cached extraction results over one planner's live allocation.

    The owning planner must call :meth:`is_fresh` before relying on any
    incremental operation and fall back to the index-free path (followed
    by :meth:`rebuild`) when it returns false.  :meth:`collect` and
    :meth:`retire` return a *successor* allocation constructed exactly as
    the index-free rebuild would construct it, so index-on and index-off
    runs yield identical allocations — and therefore identical planning
    decisions downstream.
    """

    def __init__(self, catalog: SystemCatalog) -> None:
        self.catalog = catalog
        self._records: Dict[int, SubPlanRecord] = {}
        self._readers: Dict[ReadKey, Set[int]] = {}
        # Structural fingerprint of the allocation after the last index
        # operation; None until the first rebuild (and after invalidate()).
        self._fp: Optional[Tuple] = None
        self.stats: Dict[str, int] = {
            "incremental_collects": 0,
            "incremental_retires": 0,
            "full_rebuilds": 0,
            "records_reextracted": 0,
            "records_reused": 0,
            "stale_fallbacks": 0,
        }

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Dict[int, SubPlanRecord]:
        """Read-only view of the cached records (keyed by result stream)."""
        return dict(self._records)

    # ---------------------------------------------------------------- freshness
    def is_fresh(self, allocation: Allocation) -> bool:
        """Whether the index still describes ``allocation``.

        Keyed on the *structural* fingerprint, so admitted-set-only
        changes (duplicate admissions) stay fresh for free.
        """
        return (
            self._fp is not None
            and self._fp == allocation.structural_fingerprint()
        )

    def note_stale_fallback(self) -> None:
        """Record that a caller had to take the index-free path."""
        self.stats["stale_fallbacks"] += 1

    def invalidate(self) -> None:
        """Drop everything — required after catalog/topology changes.

        Plan extraction reads the catalog (base-stream injection points
        are filtered by host liveness) at points the read log does not
        cover, so cached records cannot be trusted across a topology
        change even when their stream slices match.
        """
        self._records.clear()
        self._readers.clear()
        self._fp = None

    # ----------------------------------------------------------- record plumbing
    def _extract(self, allocation: Allocation, result_stream: int) -> SubPlanRecord:
        """Extract the current sub-plan record for ``result_stream``.

        Emits exactly the structure sequence
        :func:`rebuild_minimal_allocation` adds for one admitted query of
        this result stream; a missing provider yields an empty record
        (the rebuild skips such queries entirely).
        """
        self.stats["records_reextracted"] += 1
        catalog = self.catalog
        provider = allocation.provider_of(result_stream)
        read_keys: Set[ReadKey] = {(_PROVIDER, result_stream)}
        ops: List[Op] = []
        if provider is not None:
            log: Set[ReadKey] = set()
            plan = extract_plan(catalog, allocation, result_stream, read_log=log)
            read_keys |= log
            for node in plan.nodes():
                ops.append((_AVAIL, (node.host, node.output_stream)))
                if node.operator_id is not None:
                    ops.append((_PLACE, (node.host, node.operator_id)))
                    operator = catalog.get_operator(node.operator_id)
                    for input_id in operator.input_streams:
                        ops.append((_AVAIL, (node.host, input_id)))
                for child in node.children:
                    if child.host != node.host:
                        ops.append(
                            (_FLOW, (child.host, node.host, child.output_stream))
                        )
                        ops.append((_AVAIL, (node.host, child.output_stream)))
        streams = {result_stream} | {s for (_h, s) in read_keys}
        slices = tuple(
            (s,) + allocation.stream_fingerprint(s) for s in sorted(streams)
        )
        return SubPlanRecord(
            result_stream=result_stream,
            provider=provider,
            ops=tuple(ops),
            read_keys=frozenset(read_keys),
            stream_slices=slices,
        )

    def _add_record(self, record: SubPlanRecord) -> None:
        self._records[record.result_stream] = record
        for key in record.read_keys:
            self._readers.setdefault(key, set()).add(record.result_stream)

    def _drop_record(self, record: SubPlanRecord) -> None:
        del self._records[record.result_stream]
        for key in record.read_keys:
            readers = self._readers.get(key)
            if readers is not None:
                readers.discard(record.result_stream)
                if not readers:
                    del self._readers[key]

    def _slices_match(
        self, record: SubPlanRecord, allocation: Allocation
    ) -> bool:
        stream_fingerprint = allocation.stream_fingerprint
        return all(
            stream_fingerprint(stream_id) == (xor, count)
            for stream_id, xor, count in record.stream_slices
        )

    def _materialise(
        self, allocation: Allocation, admitted_ids: Iterable[int]
    ) -> Allocation:
        """Build the successor allocation by replaying cached records.

        Mirrors :func:`rebuild_minimal_allocation` statement for
        statement (sorted admitted queries, per-query provided entry,
        plan-tree structure order) so the returned object's internal
        state — set iteration order, aggregate accumulation order,
        fingerprint — is identical to what the index-free rebuild of
        ``allocation`` would produce.
        """
        catalog = self.catalog
        rebuilt = Allocation(catalog)
        for query_id in sorted(admitted_ids):
            query = catalog.get_query(query_id)
            record = self._records.get(query.result_stream)
            if record is None:
                # Defensive: an admitted result the delta bookkeeping did
                # not cover.  Extract on demand from the same source the
                # index-free rebuild would read.
                record = self._extract(allocation, query.result_stream)
                self._add_record(record)
            if record.provider is None:
                # Admitted queries always have a provider; tolerate the
                # inconsistency exactly like the index-free rebuild does.
                continue
            rebuilt.admitted_queries.add(query_id)
            rebuilt.provided[query.result_stream] = record.provider
            for kind, key in record.ops:
                if kind == _AVAIL:
                    rebuilt.available.add(key)
                elif kind == _PLACE:
                    rebuilt.placements.add(key)
                else:
                    rebuilt.flows.add(key)
        rebuilt.inherit_touched(allocation)
        self._fp = rebuilt.structural_fingerprint()
        return rebuilt

    # ------------------------------------------------------------------ rebuild
    def rebuild(self, allocation: Allocation) -> None:
        """Re-synchronise against ``allocation`` (which must already be
        garbage-collected, i.e. the output of the index-free rebuild).

        Cached records whose stream slices all still match are kept
        without re-extraction — after a localised external change (a host
        failure victimising a few queries) this skips the vast majority
        of the resident population.
        """
        self.stats["full_rebuilds"] += 1
        catalog = self.catalog
        wanted = {
            catalog.get_query(query_id).result_stream
            for query_id in allocation.admitted_queries
            if catalog.has_query(query_id)
        }
        for result_stream in list(self._records):
            record = self._records[result_stream]
            if result_stream not in wanted or not self._slices_match(
                record, allocation
            ):
                self._drop_record(record)
        for result_stream in sorted(wanted):
            if result_stream in self._records:
                self.stats["records_reused"] += 1
                continue
            self._add_record(self._extract(allocation, result_stream))
        self._fp = allocation.structural_fingerprint()

    # ------------------------------------------------------- incremental collect
    def _delta_keys(self, delta: PlacementDelta) -> Set[ReadKey]:
        """The read points an applied delta could have changed.

        Flows map to their *sink* point (extraction reads flow sources
        per receiving host), placements to their operator's output stream
        at the host, and provided changes to the pseudo-provider point.
        """
        catalog = self.catalog
        keys: Set[ReadKey] = set()
        for _src, dst, stream_id in delta.add_flows:
            keys.add((dst, stream_id))
        for _src, dst, stream_id in delta.remove_flows:
            keys.add((dst, stream_id))
        keys.update(delta.add_available)
        keys.update(delta.remove_available)
        for host, operator_id in delta.add_placements:
            keys.add((host, catalog.get_operator(operator_id).output_stream))
        for host, operator_id in delta.remove_placements:
            keys.add((host, catalog.get_operator(operator_id).output_stream))
        for stream_id in delta.set_provided:
            keys.add((_PROVIDER, stream_id))
        for stream_id in delta.unset_provided:
            keys.add((_PROVIDER, stream_id))
        return keys

    def collect(
        self,
        allocation: Allocation,
        delta: PlacementDelta,
        forced_results: Iterable[int] = (),
    ) -> Allocation:
        """Incremental garbage collection after ``delta`` was applied.

        ``allocation`` is the post-apply state; ``forced_results`` are
        the result streams of the queries this round admitted or
        replanned (their records are re-extracted unconditionally).
        Returns the successor allocation — equal, object state included,
        to ``rebuild_minimal_allocation(catalog, allocation)`` — at an
        extraction cost proportional to the delta and the affected
        sub-plans rather than the resident-query count.

        The caller must have checked :meth:`is_fresh` against the
        *pre-delta* allocation.
        """
        self.stats["incremental_collects"] += 1
        affected: Set[int] = set(forced_results)
        for key in self._delta_keys(delta):
            readers = self._readers.get(key)
            if readers:
                affected |= readers
        for result_stream in sorted(affected):
            old = self._records.get(result_stream)
            if old is not None:
                self._drop_record(old)
            if allocation.queries_for_result(result_stream):
                self._add_record(self._extract(allocation, result_stream))
        successor = self._materialise(allocation, allocation.admitted_queries)
        # Records were extracted from the pre-prune (post-apply) state; the
        # successor drops solver residue those extractions never used.
        # Extraction has no backtracking, so from the minimal successor it
        # resolves along exactly the same path — re-snap the slices against
        # the successor so a later rebuild() can recognise the records.
        for result_stream in affected:
            record = self._records.get(result_stream)
            if record is not None:
                self._records[result_stream] = replace(
                    record,
                    stream_slices=tuple(
                        (s,) + successor.stream_fingerprint(s)
                        for s, _xor, _count in record.stream_slices
                    ),
                )
        return successor

    # --------------------------------------------------------------- retirement
    def retire(
        self, allocation: Allocation, query_id: int
    ) -> Optional[Allocation]:
        """Retire ``query_id``; mirror of ``without_queries`` + rebuild.

        Returns the successor allocation, or ``None`` when the query is
        not admitted (the index-free path returns ``False`` then).
        Retirement changes no structures before the rebuild, so the
        surviving records are exactly the surviving queries' extractions
        and no re-extraction is needed at all.  The caller must have
        checked :meth:`is_fresh` and that the catalog knows the id.
        """
        if query_id not in allocation.admitted_queries:
            return None
        self.stats["incremental_retires"] += 1
        remaining = set(allocation.admitted_queries)
        remaining.discard(query_id)
        result_stream = self.catalog.get_query(query_id).result_stream
        successor = self._materialise(allocation, remaining)
        if not successor.queries_for_result(result_stream):
            record = self._records.get(result_stream)
            if record is not None:
                self._drop_record(record)
        return successor
