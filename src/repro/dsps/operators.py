"""Query operators: the triplet (S_o, s_o, γ_o) from §II-A.

An :class:`Operator` transforms a set of input streams into a single output
stream at a CPU cost γ_o.  The special *relay* operator µ forwards a stream
unchanged (§II-C); in the optimisation model relays are represented by flow
variables rather than explicit operator placements, but plans and the engine
still materialise relay nodes so that the paper's plan conditions (C3) can be
checked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.exceptions import CatalogError
from repro.utils.validation import check_non_negative

RELAY_OPERATOR_NAME = "relay"


class OperatorKind(enum.Enum):
    """Operator classes supported by the simulated DSPS."""

    JOIN = "join"
    SELECT = "select"
    PROJECT = "project"
    RELAY = "relay"


@dataclass(frozen=True)
class Operator:
    """A query operator (S_o, s_o, γ_o).

    Attributes
    ----------
    operator_id:
        Dense id, unique within a :class:`~repro.dsps.catalog.SystemCatalog`.
    name:
        Human-readable name.
    kind:
        :class:`OperatorKind`.
    input_streams:
        Ids of the input streams S_o.
    output_stream:
        Id of the single output stream s_o.
    cpu_cost:
        γ_o, the computational cost of running the operator (same unit as a
        host's CPU capacity ζ_h).
    """

    operator_id: int
    name: str
    kind: OperatorKind
    input_streams: FrozenSet[int]
    output_stream: int
    cpu_cost: float

    def __post_init__(self) -> None:
        check_non_negative("operator cpu cost", self.cpu_cost)
        if not self.input_streams:
            raise CatalogError(f"operator {self.name!r} must have at least one input")
        if self.output_stream in self.input_streams:
            raise CatalogError(f"operator {self.name!r} outputs one of its own inputs")

    @property
    def arity(self) -> int:
        """Number of input streams."""
        return len(self.input_streams)

    @property
    def is_relay(self) -> bool:
        """Whether this is the relay operator µ."""
        return self.kind is OperatorKind.RELAY

    def signature(self) -> Tuple[str, FrozenSet[int], int]:
        """Identity key: (kind, inputs, output)."""
        return (self.kind.value, self.input_streams, self.output_stream)

    def __repr__(self) -> str:
        return (
            f"Operator({self.operator_id}, {self.name!r}, "
            f"inputs={sorted(self.input_streams)}, out={self.output_stream}, "
            f"cpu={self.cpu_cost:g})"
        )


def make_join_operator(
    operator_id: int,
    input_streams: Iterable[int],
    output_stream: int,
    cpu_cost: float,
    name: str = "",
) -> Operator:
    """Convenience constructor for a (multi-way) join operator."""
    inputs = frozenset(int(s) for s in input_streams)
    if len(inputs) < 2:
        raise CatalogError("a join operator needs at least two distinct inputs")
    return Operator(
        operator_id=operator_id,
        name=name or f"join_op_{operator_id}",
        kind=OperatorKind.JOIN,
        input_streams=inputs,
        output_stream=int(output_stream),
        cpu_cost=float(cpu_cost),
    )
