"""Hosts and their per-host resources (§II-B).

A host provides computational resources ζ_h (e.g. CPU cores or a calibrated
"join units" budget) and an outgoing NIC bandwidth β_h.  Link bandwidth
κ(h, m) between host pairs lives in :mod:`repro.dsps.network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.exceptions import CatalogError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Host:
    """A stream-processing host.

    Attributes
    ----------
    host_id:
        Dense id, unique within a catalog.
    name:
        Human-readable name.
    cpu_capacity:
        ζ_h — available computational resources.
    bandwidth_capacity:
        β_h — maximum outgoing (and incoming) host bandwidth in Mbps.
    site:
        The resource site the host belongs to.  A flat cluster is the
        single-site special case (every host in site 0); federated
        infrastructures group hosts into sites connected by constrained
        WAN gateway links (see :class:`repro.dsps.network.NetworkTopology`).
    """

    host_id: int
    name: str
    cpu_capacity: float
    bandwidth_capacity: float
    site: int = 0

    def __post_init__(self) -> None:
        check_positive("host cpu capacity", self.cpu_capacity)
        check_positive("host bandwidth capacity", self.bandwidth_capacity)
        if self.site < 0:
            raise CatalogError(f"host site must be non-negative, got {self.site}")

    def __repr__(self) -> str:
        return (
            f"Host({self.host_id}, {self.name!r}, cpu={self.cpu_capacity:g}, "
            f"bw={self.bandwidth_capacity:g}, site={self.site})"
        )


class HostSet:
    """An ordered collection of hosts with name lookup and an online/offline
    state per host.

    Host ids stay dense and stable for the lifetime of a catalog: a failed
    host is *deactivated*, never deleted, so ids referenced by historical
    allocations, plans and solver variable names remain resolvable.  All
    placement-facing views (:attr:`ids`, iteration) expose only the active
    hosts; :attr:`all_ids` and :meth:`get` still see every registered host.
    """

    def __init__(self) -> None:
        self._hosts: List[Host] = []
        self._by_name: Dict[str, Host] = {}
        self._offline: set = set()
        self._sites: List[int] = []
        self._distinct_sites: set = set()

    def add(
        self,
        name: str,
        cpu_capacity: float,
        bandwidth_capacity: float,
        site: int = 0,
    ) -> Host:
        """Register a new host (in resource site ``site``) and return it."""
        if name in self._by_name:
            raise CatalogError(f"host name {name!r} already registered")
        host = Host(
            host_id=len(self._hosts),
            name=name,
            cpu_capacity=float(cpu_capacity),
            bandwidth_capacity=float(bandwidth_capacity),
            site=int(site),
        )
        self._hosts.append(host)
        self._by_name[name] = host
        self._sites.append(host.site)
        self._distinct_sites.add(host.site)
        return host

    # --------------------------------------------------------------------- sites
    def site_of(self, host_id: int) -> int:
        """The resource site ``host_id`` belongs to (O(1) list lookup —
        allocation index hooks call this on every flow/placement mutation)."""
        try:
            return self._sites[host_id]
        except IndexError:
            raise CatalogError(f"unknown host id {host_id}") from None

    @property
    def sites(self) -> List[int]:
        """Sorted distinct site ids over every registered host."""
        return sorted(self._distinct_sites)

    @property
    def num_sites(self) -> int:
        """Number of distinct sites (O(1) — link-capacity lookups guard on
        it on the planning hot path)."""
        return len(self._distinct_sites)

    def ids_in_site(self, site: int) -> List[int]:
        """All registered host ids of ``site``, online or not, in order."""
        return [h.host_id for h in self._hosts if h.site == site]

    def active_ids_in_site(self, site: int) -> List[int]:
        """Online host ids of ``site``, in order."""
        return [
            h.host_id
            for h in self._hosts
            if h.site == site and h.host_id not in self._offline
        ]

    def get(self, host_id: int) -> Host:
        """Look up a host by id."""
        try:
            return self._hosts[host_id]
        except IndexError:
            raise CatalogError(f"unknown host id {host_id}") from None

    def get_by_name(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"unknown host name {name!r}") from None

    # ----------------------------------------------------------------- lifecycle
    def deactivate(self, host_id: int) -> None:
        """Take a host offline (fail it); its id stays registered."""
        self.get(host_id)  # validates the id
        self._offline.add(host_id)

    def activate(self, host_id: int) -> None:
        """Bring a previously deactivated host back online."""
        self.get(host_id)
        self._offline.discard(host_id)

    def is_active(self, host_id: int) -> bool:
        """Whether the host is currently online."""
        self.get(host_id)
        return host_id not in self._offline

    @property
    def offline_ids(self) -> List[int]:
        """Ids of hosts currently offline, in order."""
        return sorted(self._offline)

    def __len__(self) -> int:
        """Total number of registered hosts, online or not.

        The total count keeps id allocation dense; use :attr:`ids` for the
        active view.
        """
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        """Iterate over the *active* hosts only."""
        return (h for h in self._hosts if h.host_id not in self._offline)

    @property
    def ids(self) -> List[int]:
        """Active host ids in order (offline hosts are hidden)."""
        return [h.host_id for h in self._hosts if h.host_id not in self._offline]

    @property
    def all_ids(self) -> List[int]:
        """Every registered host id in order, including offline hosts."""
        return [h.host_id for h in self._hosts]
