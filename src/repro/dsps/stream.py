"""Streams: base streams injected at hosts and composite (derived) streams.

Stream identity follows the paper's equivalence rule (§II-C): two streams are
equivalent if they are produced by the same operators using the same input
streams.  For the deterministic relational operators used throughout the
evaluation (joins over base streams) this collapses to identifying a
composite stream by its *operator class* together with the *set of base
streams it covers* — joins are commutative and associative, so any join tree
over the same base set produces an equivalent result stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CatalogError
from repro.utils.validation import check_non_negative, check_positive


class StreamKind(enum.Enum):
    """Whether a stream enters the system externally or is derived."""

    BASE = "base"
    COMPOSITE = "composite"


@dataclass(frozen=True)
class Stream:
    """A data stream flowing through the DSPS.

    Attributes
    ----------
    stream_id:
        Dense integer id, unique within a :class:`StreamRegistry`.
    name:
        Human-readable name (``b<k>`` for base streams, e.g.
        ``join(b1,b4,b7)`` for composites).
    kind:
        :class:`StreamKind`.
    rate:
        Average data rate ϱ_s (Mbps in the simulation scenarios).
    base_set:
        The base streams this stream covers.  For a base stream this is the
        singleton of its own id; for a composite it is the union of its
        inputs' base sets.  Together with ``operator_class`` it defines
        stream equivalence.
    operator_class:
        Name of the operator class that produces the stream (``"source"``
        for base streams, e.g. ``"join"`` for composites).
    """

    stream_id: int
    name: str
    kind: StreamKind
    rate: float
    base_set: FrozenSet[int]
    operator_class: str = "source"

    def __post_init__(self) -> None:
        check_non_negative("stream rate", self.rate)

    @property
    def is_base(self) -> bool:
        """Whether this is an externally injected base stream."""
        return self.kind is StreamKind.BASE

    @property
    def is_composite(self) -> bool:
        """Whether this stream is produced by an operator."""
        return self.kind is StreamKind.COMPOSITE

    @property
    def equivalence_key(self) -> Tuple[str, FrozenSet[int]]:
        """Key implementing the paper's stream-equivalence relation."""
        return (self.operator_class, self.base_set)

    def __repr__(self) -> str:
        return f"Stream({self.stream_id}, {self.name!r}, {self.rate:g})"


class StreamRegistry:
    """Registry assigning dense ids to streams and enforcing equivalence.

    Registering a composite stream whose equivalence key already exists
    returns the existing stream instead of creating a duplicate — this is
    what makes reuse discoverable: two queries whose plans contain "the same"
    sub-join reference the *same* :class:`Stream` object.
    """

    def __init__(self) -> None:
        self._streams: List[Stream] = []
        self._by_key: Dict[Tuple[str, FrozenSet[int]], Stream] = {}
        self._by_name: Dict[str, Stream] = {}

    # ------------------------------------------------------------------ creation
    def add_base_stream(self, name: str, rate: float) -> Stream:
        """Register a new base stream with the given average data rate."""
        check_positive("base stream rate", rate)
        if name in self._by_name:
            raise CatalogError(f"stream name {name!r} already registered")
        stream_id = len(self._streams)
        stream = Stream(
            stream_id=stream_id,
            name=name,
            kind=StreamKind.BASE,
            rate=float(rate),
            base_set=frozenset({stream_id}),
            operator_class="source",
        )
        self._streams.append(stream)
        self._by_key[stream.equivalence_key] = stream
        self._by_name[name] = stream
        return stream

    def add_composite_stream(
        self,
        operator_class: str,
        base_set: Iterable[int],
        rate: float,
        name: Optional[str] = None,
    ) -> Stream:
        """Register (or return the existing equivalent) composite stream."""
        check_non_negative("composite stream rate", rate)
        base_set = frozenset(int(b) for b in base_set)
        if not base_set:
            raise CatalogError("composite stream must cover at least one base stream")
        for base_id in base_set:
            if base_id >= len(self._streams) or not self._streams[base_id].is_base:
                raise CatalogError(f"unknown base stream id {base_id} in composite")
        key = (operator_class, base_set)
        if key in self._by_key:
            return self._by_key[key]
        stream_id = len(self._streams)
        if name is None:
            members = ",".join(self._streams[b].name for b in sorted(base_set))
            name = f"{operator_class}({members})"
        if name in self._by_name:
            raise CatalogError(f"stream name {name!r} already registered")
        stream = Stream(
            stream_id=stream_id,
            name=name,
            kind=StreamKind.COMPOSITE,
            rate=float(rate),
            base_set=base_set,
            operator_class=operator_class,
        )
        self._streams.append(stream)
        self._by_key[key] = stream
        self._by_name[name] = stream
        return stream

    # ------------------------------------------------------------------- lookups
    def get(self, stream_id: int) -> Stream:
        """Look up a stream by id."""
        try:
            return self._streams[stream_id]
        except IndexError:
            raise CatalogError(f"unknown stream id {stream_id}") from None

    def get_by_name(self, name: str) -> Stream:
        """Look up a stream by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"unknown stream name {name!r}") from None

    def find_equivalent(self, operator_class: str, base_set: Iterable[int]) -> Optional[Stream]:
        """Return the registered stream equivalent to the given key, if any."""
        return self._by_key.get((operator_class, frozenset(int(b) for b in base_set)))

    def __len__(self) -> int:
        return len(self._streams)

    def __iter__(self) -> Iterator[Stream]:
        return iter(self._streams)

    def __contains__(self, stream: Stream) -> bool:
        return 0 <= stream.stream_id < len(self._streams) and self._streams[stream.stream_id] is stream

    @property
    def base_streams(self) -> List[Stream]:
        """All base streams, in id order."""
        return [s for s in self._streams if s.is_base]

    @property
    def composite_streams(self) -> List[Stream]:
        """All composite streams, in id order."""
        return [s for s in self._streams if s.is_composite]
