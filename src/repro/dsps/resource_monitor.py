"""Resource monitoring with estimate drift (§IV-B substrate).

In the real DISSP deployment each host runs a resource monitor that reports
observed CPU and network usage back to SQPR.  Observed usage can deviate from
the cost-model estimates the planner used at admission time; SQPR reacts by
re-planning the affected queries.

In the simulation, "observed" usage is the cost-model value multiplied by a
per-operator drift factor.  Drift factors default to 1.0 (perfect estimates)
and can be injected deterministically by tests/experiments or sampled from a
seeded distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.utils.rng import RandomLike, ensure_rng
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ResourceSample:
    """Observed resource usage of one host at one sampling instant."""

    host: int
    cpu_used: float
    cpu_capacity: float
    bandwidth_out: float
    bandwidth_in: float

    @property
    def cpu_utilisation(self) -> float:
        """Observed CPU utilisation in [0, 1+]."""
        return self.cpu_used / self.cpu_capacity if self.cpu_capacity > 0 else 0.0

    @property
    def network_usage(self) -> float:
        """Observed total network usage (sent + received)."""
        return self.bandwidth_out + self.bandwidth_in


class ResourceMonitor:
    """Produce per-host :class:`ResourceSample`\\ s for an allocation."""

    def __init__(self, catalog: SystemCatalog, random_state: RandomLike = None) -> None:
        self.catalog = catalog
        self._rng = ensure_rng(random_state)
        self._operator_drift: Dict[int, float] = {}

    # ------------------------------------------------------------------- drift
    def set_operator_drift(self, operator_id: int, factor: float) -> None:
        """Force the observed cost of an operator to ``factor`` × estimate."""
        check_non_negative("drift factor", factor)
        self.catalog.get_operator(operator_id)
        self._operator_drift[operator_id] = float(factor)

    def randomise_drift(self, spread: float = 0.2) -> None:
        """Sample a drift factor for every operator from [1-spread, 1+spread]."""
        check_non_negative("drift spread", spread)
        for operator in self.catalog.operators:
            factor = float(self._rng.uniform(1.0 - spread, 1.0 + spread))
            self._operator_drift[operator.operator_id] = max(0.0, factor)

    def reset_drift(self) -> None:
        """Forget all drift factors (observations match estimates again).

        :meth:`repro.dsps.engine.ClusterEngine.reset` calls this between
        experiment repetitions so a shared monitor cannot leak one
        repetition's drift into the next.
        """
        self._operator_drift.clear()

    def drift_of(self, operator_id: int) -> float:
        """The drift factor currently applied to ``operator_id``."""
        return self._operator_drift.get(operator_id, 1.0)

    def observed_operator_cost(self, operator_id: int) -> float:
        """Observed CPU cost of an operator (estimate × drift)."""
        return self.catalog.get_operator(operator_id).cpu_cost * self.drift_of(operator_id)

    # ----------------------------------------------------------------- sampling
    def observed_cpu_used(self, allocation: Allocation, host: int) -> float:
        """Observed CPU usage of ``host`` under ``allocation``."""
        return sum(
            self.observed_operator_cost(o)
            for (h, o) in allocation.placements
            if h == host
        )

    def sample_host(self, allocation: Allocation, host: int) -> ResourceSample:
        """Take one observation of ``host``."""
        host_obj = self.catalog.hosts.get(host)
        return ResourceSample(
            host=host,
            cpu_used=self.observed_cpu_used(allocation, host),
            cpu_capacity=host_obj.cpu_capacity,
            bandwidth_out=allocation.out_bandwidth_used(host),
            bandwidth_in=allocation.in_bandwidth_used(host),
        )

    def sample_all(self, allocation: Allocation) -> List[ResourceSample]:
        """Observations for every host."""
        return [self.sample_host(allocation, h) for h in self.catalog.host_ids]

    # ------------------------------------------------------------ drift queries
    def drifted_operators(self, threshold: float = 0.1) -> List[int]:
        """Operators whose observed cost deviates from the estimate by more
        than ``threshold`` (relative)."""
        drifted = []
        for operator in self.catalog.operators:
            factor = self.drift_of(operator.operator_id)
            if abs(factor - 1.0) > threshold:
                drifted.append(operator.operator_id)
        return drifted

    def overloaded_hosts(self, allocation: Allocation) -> List[int]:
        """Hosts whose observed CPU usage exceeds their capacity."""
        overloaded = []
        for host in self.catalog.host_ids:
            sample = self.sample_host(allocation, host)
            if sample.cpu_used > sample.cpu_capacity + 1e-9:
                overloaded.append(host)
        return overloaded
