"""repro — a reproduction of "SQPR: Stream Query Planning with Reuse" (ICDE 2011).

The package is organised as:

* :mod:`repro.api` — the unified planner API: the :class:`Planner`
  protocol, the :class:`PlanningOutcome` every planner returns, the
  unified :class:`PlannerConfig`, and the planner registry
  (:func:`register_planner` / :func:`create_planner`),
* :mod:`repro.milp` — a MILP modelling layer and solvers (the CPLEX
  substitute),
* :mod:`repro.dsps` — the distributed stream processing substrate (hosts,
  streams, operators, queries, plans, allocations, a simulated cluster),
* :mod:`repro.core` — the SQPR planner itself (reduced optimisation model,
  Algorithm 1, adaptive re-planning, optimistic bound),
* :mod:`repro.baselines` — the heuristic planner and a SODA-like planner,
* :mod:`repro.workloads` — workload generation and evaluation scenarios,
* :mod:`repro.scenarios` — the declarative scenario matrix: composable
  :class:`ScenarioSpec` overrides, named operating regimes and scales,
  and the per-cell artifact bundles of the sweep runner,
* :mod:`repro.service` — a long-running admission service over a planner:
  bounded intake with overload policies, batch coalescing, pipelined
  deploys through the cluster engine, and a metrics registry,
* :mod:`repro.experiments` — planner-agnostic drivers reproducing every
  figure of §V.

Quickstart
----------
>>> from repro import build_simulation_scenario, create_planner, PlannerConfig
>>> scenario = build_simulation_scenario()
>>> catalog = scenario.build_catalog()
>>> planner = create_planner("sqpr", catalog, config=PlannerConfig(time_limit=0.5))
>>> outcome = planner.submit(scenario.workload(1)[0])
>>> outcome.admitted
True

Every registered planner (``available_planners()`` lists them: ``sqpr``,
``heuristic``, ``soda``, ``optimistic``, ``federated``) is constructed the
same way and returns the same :class:`PlanningOutcome` from ``submit()`` /
``submit_batch()``; planner-specific details live in ``outcome.extras``.
On federated (multi-site) catalogs, ``create_planner("federated:<inner>",
…)`` decomposes admission by site and escalates only cross-site queries to
a WAN-aware coordinator.
"""

from repro.api import (
    Planner,
    PlannerConfig,
    PlannerHooks,
    PlannerStats,
    PlanningOutcome,
    available_planners,
    create_planner,
    get_planner_class,
    register_planner,
)
from repro.core.planner import SQPRPlanner
from repro.core.adaptive import AdaptiveReplanner
from repro.core.federated import FederatedPlanner
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.weights import ObjectiveWeights
from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.planner import SodaPlanner
from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import GatewayCatalogView, SiteCatalogView, SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.engine import ClusterEngine
from repro.dsps.plan import QueryPlan, extract_plan
from repro.dsps.query import DecompositionMode, Query, QueryWorkloadItem
from repro.dsps.resource_monitor import ResourceMonitor
from repro.milp import MilpSolver, Model, SolverBackend
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import (
    ClusterScenarioConfig,
    Scenario,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)
from repro.workloads.churn import (
    CHURN_SCENARIOS,
    ChurnTraceConfig,
    build_churn_schedule,
    build_named_churn_schedule,
)
from repro.sim import (
    EventSchedule,
    SimulationHarness,
    SimulationResult,
    SitePartition,
    SiteRecovery,
    WanDrift,
)
from repro.scenarios import (
    BASELINE_SCENARIO,
    CellArtifact,
    MATRIX_REGIMES,
    MATRIX_SCALES,
    MatrixScale,
    ResolvedScenario,
    SCENARIO_MATRIX,
    ScenarioSpec,
    parse_spec,
)
from repro.experiments.runner import AdmissionCurve, run_admission_experiment
from repro.service import (
    AdmissionService,
    AdmissionTicket,
    AdmissionTimeout,
    MetricsRegistry,
    QueueFullError,
    ServiceClosed,
    ServiceConfig,
)

__version__ = "1.5.0"

__all__ = [
    # unified planner API
    "Planner",
    "PlannerConfig",
    "PlannerHooks",
    "PlannerStats",
    "PlanningOutcome",
    "available_planners",
    "create_planner",
    "get_planner_class",
    "register_planner",
    # planners
    "SQPRPlanner",
    "AdaptiveReplanner",
    "FederatedPlanner",
    "OptimisticBoundPlanner",
    "ObjectiveWeights",
    "HeuristicPlanner",
    "SodaPlanner",
    # substrate
    "Allocation",
    "PlacementDelta",
    "SystemCatalog",
    "SiteCatalogView",
    "GatewayCatalogView",
    "LinearCostModel",
    "ClusterEngine",
    "QueryPlan",
    "extract_plan",
    "DecompositionMode",
    "Query",
    "QueryWorkloadItem",
    "ResourceMonitor",
    "MilpSolver",
    "Model",
    "SolverBackend",
    # workloads & experiments
    "WorkloadGenerator",
    "WorkloadSpec",
    "Scenario",
    "SimulationScenarioConfig",
    "ClusterScenarioConfig",
    "build_simulation_scenario",
    "build_cluster_scenario",
    "AdmissionCurve",
    "run_admission_experiment",
    # churn simulation
    "CHURN_SCENARIOS",
    "ChurnTraceConfig",
    "build_churn_schedule",
    "build_named_churn_schedule",
    "EventSchedule",
    "SimulationHarness",
    "SimulationResult",
    "SitePartition",
    "SiteRecovery",
    "WanDrift",
    # scenario matrix
    "BASELINE_SCENARIO",
    "CellArtifact",
    "MATRIX_REGIMES",
    "MATRIX_SCALES",
    "MatrixScale",
    "ResolvedScenario",
    "SCENARIO_MATRIX",
    "ScenarioSpec",
    "parse_spec",
    # admission service
    "AdmissionService",
    "AdmissionTicket",
    "AdmissionTimeout",
    "MetricsRegistry",
    "QueueFullError",
    "ServiceClosed",
    "ServiceConfig",
    "run_churn_experiment",
    "run_named_churn_experiment",
    "__version__",
]

#: Pre-unification outcome types, kept as deprecated aliases of
#: :class:`PlanningOutcome` (planner-specific fields moved to ``extras``).
from repro.api.base import deprecated_outcome_getattr as _deprecated_outcome_getattr

_outcome_getattr = _deprecated_outcome_getattr(
    __name__, ("HeuristicOutcome", "SodaOutcome", "OptimisticOutcome")
)


def __getattr__(name):
    # The timeline drivers are resolved lazily so that running the module
    # `python -m repro.experiments.timeline` does not import timeline as a
    # side effect of importing the repro package (runpy would then execute
    # the module body twice and warn).
    if name in ("run_churn_experiment", "run_named_churn_experiment"):
        from repro.experiments import timeline

        return getattr(timeline, name)
    return _outcome_getattr(name)
