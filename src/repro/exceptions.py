"""Exception hierarchy for the SQPR reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between modelling, solving and planning
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """An optimisation model was built or used incorrectly."""


class SolverError(ReproError):
    """A solver backend failed in an unexpected way."""


class InfeasibleError(SolverError):
    """The optimisation problem was proven infeasible."""


class UnboundedError(SolverError):
    """The optimisation problem was proven unbounded."""


class CatalogError(ReproError):
    """Inconsistent system catalog (hosts, streams, operators)."""


class PlanError(ReproError):
    """A query plan violates one of the paper's structural conditions."""


class AllocationError(ReproError):
    """A placement would violate resource capacities or bookkeeping."""


class PlanningError(ReproError):
    """The planner was used incorrectly (e.g. unknown query)."""


class WorkloadError(ReproError):
    """A workload or scenario was configured inconsistently."""


class SimulationError(ReproError):
    """A discrete-event simulation was configured or driven incorrectly,
    or an invariant was violated while processing an event."""
