"""The SQPR planner — the paper's primary contribution.

The planner treats query admission, operator placement and reuse as a single
constrained optimisation problem (§III), reduced per new query to the
streams and operators related to that query (§IV-A), and solved with a
timeout after which the best incumbent is used.
"""

from repro.api.base import deprecated_outcome_getattr
from repro.core.weights import ObjectiveWeights
from repro.core.reduction import ReplanScope, compute_scope
from repro.core.model_builder import SqprModel, build_model
from repro.core.solution import decode_solution
from repro.core.planner import PlannerConfig, PlanningOutcome, SQPRPlanner
from repro.core.adaptive import AdaptiveReplanner, garbage_collect
from repro.core.optimistic import OptimisticBoundPlanner


__getattr__ = deprecated_outcome_getattr(
    __name__, ("OptimisticOutcome",)
)


__all__ = [
    "ObjectiveWeights",
    "ReplanScope",
    "compute_scope",
    "SqprModel",
    "build_model",
    "decode_solution",
    "PlannerConfig",
    "PlanningOutcome",
    "SQPRPlanner",
    "AdaptiveReplanner",
    "garbage_collect",
    "OptimisticBoundPlanner",
]
