"""Adaptive query re-planning (§IV-B).

SQPR stores the resource estimates used at admission time, monitors the
observed consumption, and periodically re-plans queries whose consumption
drifted beyond a threshold or that sit on an overloaded host.  Re-planning is
implemented exactly as the paper describes it — "considering the system
without those queries and re-adding them":

1. the victim queries are removed from the admitted set,
2. the allocation is garbage-collected down to the structures still needed
   by the surviving queries (:func:`garbage_collect`), and
3. the victims are re-submitted through the normal planner path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.planner import PlanningOutcome, SQPRPlanner
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import extract_plan, rebuild_minimal_allocation
from repro.dsps.resource_monitor import ResourceMonitor
from repro.exceptions import PlanError


def garbage_collect(catalog: SystemCatalog, allocation: Allocation) -> Allocation:
    """Rebuild an allocation containing only what admitted queries still need.

    Thin wrapper around
    :func:`repro.dsps.plan.rebuild_minimal_allocation`, kept here because
    adaptive re-planning is its primary consumer (§IV-B's "considering the
    system without those queries").
    """
    return rebuild_minimal_allocation(catalog, allocation)


@dataclass
class ReplanReport:
    """Summary of one adaptive re-planning round."""

    victims: List[int] = field(default_factory=list)
    readmitted: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)

    @property
    def fully_recovered(self) -> bool:
        """Whether every victim query was re-admitted."""
        return not self.dropped


class AdaptiveReplanner:
    """Drives adaptive re-planning on top of an :class:`SQPRPlanner`."""

    def __init__(
        self,
        planner: SQPRPlanner,
        monitor: ResourceMonitor,
        drift_threshold: float = 0.1,
    ) -> None:
        self.planner = planner
        self.monitor = monitor
        self.drift_threshold = drift_threshold

    # ----------------------------------------------------------- victim choice
    def queries_needing_replan(self) -> List[int]:
        """Admitted queries whose consumption drifted or whose host overloads."""
        catalog = self.planner.catalog
        allocation = self.planner.allocation
        drifted_ops = set(self.monitor.drifted_operators(self.drift_threshold))
        overloaded = set(self.monitor.overloaded_hosts(allocation))

        victims: Set[int] = set()
        for query_id in allocation.admitted_queries:
            query = catalog.get_query(query_id)
            if set(query.candidate_operators) & drifted_ops:
                victims.add(query_id)
                continue
            try:
                plan = extract_plan(catalog, allocation, query.result_stream)
            except PlanError:
                victims.add(query_id)
                continue
            if set(plan.hosts_used()) & overloaded:
                victims.add(query_id)
        return sorted(victims)

    # --------------------------------------------------------------- replanning
    def replan(self, victim_ids: Optional[Iterable[int]] = None) -> ReplanReport:
        """Remove the victims, garbage-collect and re-admit them one by one."""
        catalog = self.planner.catalog
        allocation = self.planner.allocation
        if victim_ids is None:
            victim_ids = self.queries_needing_replan()
        victims = [qid for qid in victim_ids if qid in allocation.admitted_queries]
        report = ReplanReport(victims=list(victims))
        if not victims:
            self.planner._notify_replan(report)
            return report

        # Step 1: conceptually remove the victims from the system.
        allocation.admitted_queries -= set(victims)
        for victim in victims:
            query = catalog.get_query(victim)
            still_wanted = any(
                catalog.get_query(qid).result_stream == query.result_stream
                for qid in allocation.admitted_queries
            )
            if not still_wanted:
                allocation.provided.pop(query.result_stream, None)

        # Step 2: drop structures no surviving query needs.
        self.planner.allocation = garbage_collect(catalog, allocation)

        # Step 3: re-add the victims through the normal planning path.
        for victim in victims:
            query = catalog.get_query(victim)
            outcome = self.planner.submit(query)
            if outcome.admitted:
                report.readmitted.append(victim)
            else:
                report.dropped.append(victim)
        self.planner._notify_replan(report)
        return report
