"""Adaptive query re-planning (§IV-B).

SQPR stores the resource estimates used at admission time, monitors the
observed consumption, and periodically re-plans queries whose consumption
drifted beyond a threshold or that sit on an overloaded host.  Re-planning is
implemented exactly as the paper describes it — "considering the system
without those queries and re-adding them":

1. the victim queries are removed from the admitted set,
2. the allocation is garbage-collected down to the structures still needed
   by the surviving queries (:func:`garbage_collect`), and
3. the victims are re-submitted through the normal planner path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.api.base import Planner, PlanningOutcome
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import extract_plan, rebuild_minimal_allocation
from repro.dsps.resource_monitor import ResourceMonitor
from repro.exceptions import PlanError, PlanningError


def garbage_collect(catalog: SystemCatalog, allocation: Allocation) -> Allocation:
    """Rebuild an allocation containing only what admitted queries still need.

    Thin wrapper around
    :func:`repro.dsps.plan.rebuild_minimal_allocation`, kept here because
    adaptive re-planning is its primary consumer (§IV-B's "considering the
    system without those queries").
    """
    return rebuild_minimal_allocation(catalog, allocation)


@dataclass
class ReplanReport:
    """Summary of one adaptive re-planning round."""

    victims: List[int] = field(default_factory=list)
    readmitted: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)
    #: Delta-validation result over the structures the round touched
    #: (empty in normal operation; see :meth:`AdaptiveReplanner.replan`).
    violations: List[str] = field(default_factory=list)
    #: Simplex counters summed over the round's re-submissions (empty for
    #: planners/backends that report none) — what the re-plan cost in
    #: dual-simplex resumes, phase-1 iterations, pricing passes, etc.
    solver_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def fully_recovered(self) -> bool:
        """Whether every victim query was re-admitted."""
        return not self.dropped


class AdaptiveReplanner:
    """Drives adaptive re-planning on top of any allocation-keeping planner.

    Historically bound to :class:`~repro.core.planner.SQPRPlanner`, the
    replanner only relies on the :class:`~repro.api.Planner` protocol — a
    live allocation, ``submit`` and the replan hook — so the heuristic and
    SODA baselines can be driven through churn simulations with the same
    re-planning loop.
    """

    def __init__(
        self,
        planner: Planner,
        monitor: ResourceMonitor,
        drift_threshold: float = 0.1,
    ) -> None:
        if planner.allocation is None:
            raise PlanningError(
                "AdaptiveReplanner needs a planner with a live allocation; "
                f"{planner.name!r} keeps none"
            )
        self.planner = planner
        self.monitor = monitor
        self.drift_threshold = drift_threshold

    # ----------------------------------------------------------- victim choice
    def queries_needing_replan(self) -> List[int]:
        """Admitted queries whose consumption drifted or whose host overloads."""
        catalog = self.planner.catalog
        allocation = self.planner.allocation
        drifted_ops = set(self.monitor.drifted_operators(self.drift_threshold))
        overloaded = set(self.monitor.overloaded_hosts(allocation))

        victims: Set[int] = set()
        for query_id in allocation.admitted_queries:
            query = catalog.get_query(query_id)
            if set(query.candidate_operators) & drifted_ops:
                victims.add(query_id)
                continue
            try:
                plan = extract_plan(catalog, allocation, query.result_stream)
            except PlanError:
                victims.add(query_id)
                continue
            if set(plan.hosts_used()) & overloaded:
                victims.add(query_id)
        return sorted(victims)

    def maybe_replan(self, min_victims: int = 1) -> Optional[ReplanReport]:
        """Run one re-planning round only when enough victims exist.

        This is the event-driven entry point used by the simulation
        harness's periodic replan ticks: a tick with nothing to do costs one
        victim scan and produces no report (returns ``None``), so replan
        hooks only fire for rounds that actually moved queries.
        """
        victims = self.queries_needing_replan()
        if len(victims) < max(1, min_victims):
            return None
        return self.replan(victims)

    # --------------------------------------------------------------- replanning
    def replan(self, victim_ids: Optional[Iterable[int]] = None) -> ReplanReport:
        """Remove the victims, garbage-collect and re-admit them one by one."""
        catalog = self.planner.catalog
        allocation = self.planner.allocation
        if victim_ids is None:
            victim_ids = self.queries_needing_replan()
        victims = [qid for qid in victim_ids if qid in allocation.admitted_queries]
        report = ReplanReport(victims=list(victims))
        if not victims:
            self.planner._notify_replan(report)
            return report

        # Steps 1 + 2: remove the victims from the system and drop the
        # structures no surviving query needs (shared with Planner.retire).
        self.planner.allocation = allocation.without_queries(victims)

        # Step 3: re-add the victims through the re-planning path (a
        # perturbation re-solve; MILP planners warm-start it from the
        # incumbent basis via the dual simplex).
        seen_counters: Set[int] = set()
        for victim in victims:
            query = catalog.get_query(victim)
            outcome = self.planner.resubmit(query)
            if outcome.admitted:
                report.readmitted.append(victim)
            else:
                report.dropped.append(victim)
            counters = outcome.extras.get("solver_counters")
            if counters and id(counters) not in seen_counters:
                seen_counters.add(id(counters))
                for key, value in counters.items():
                    report.solver_counters[key] = (
                        report.solver_counters.get(key, 0) + value
                    )
        # Re-validate only the structures the round actually moved.  The
        # allocation's pending touched accumulator already covers them (the
        # garbage-collection rebuild seeds it via inherit_touched and the
        # re-admissions extend it), so peek at it — without draining, so a
        # driving harness still sees the round's touches in its own
        # per-event check — instead of re-diffing the whole state.
        final = self.planner.allocation
        if final is not None:
            report.violations = final.validate_delta(*final.peek_touched())
        self.planner._notify_replan(report)
        return report
