"""Decode a MILP solution into an allocation delta.

The reduced model's solution assigns values to the d/x/y/z variables of the
scope.  Decoding turns that assignment into a
:class:`~repro.dsps.allocation.PlacementDelta`:

* in *replan* mode every existing structure touching a scope stream or scope
  operator is removed and replaced by the structures the solver selected;
* in *frozen* mode nothing is removed — only new structures are added.

Decoding also reports which of the new queries were admitted (their result
stream is provided by some host in the solution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.model_builder import SqprModel
from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import SystemCatalog
from repro.milp.result import SolveResult

_ONE = 0.5  # threshold above which a binary variable counts as 1


@dataclass
class DecodedSolution:
    """The outcome of decoding one solve: a delta plus admission info."""

    delta: PlacementDelta
    admitted_new_queries: FrozenSet[int]
    rejected_new_queries: FrozenSet[int]

    @property
    def admitted_any(self) -> bool:
        """Whether at least one new query was admitted."""
        return bool(self.admitted_new_queries)


def decode_solution(
    catalog: SystemCatalog,
    allocation: Allocation,
    built: SqprModel,
    result: SolveResult,
) -> DecodedSolution:
    """Translate ``result`` (for ``built``) into a :class:`DecodedSolution`."""
    delta = PlacementDelta()
    scope = built.scope

    # Tear down only what the model was actually free to re-decide; structures
    # shared with admitted queries outside the re-planning set (and everything
    # in frozen mode) are protected and stay in place.  Enumerated through
    # the allocation's reverse indexes, so teardown costs O(degree of the
    # scope), not O(allocation size) — the per-admission full-collection
    # scans were one of the terms that made admission latency grow with the
    # resident-query count.
    for stream_id in built.teardown_streams:
        for src, dst in allocation.flow_edges_of_stream(stream_id):
            delta.remove_flows.add((src, dst, stream_id))
        for host in allocation.hosts_with_stream(stream_id):
            delta.remove_available.add((host, stream_id))
        if stream_id in allocation.provided:
            delta.unset_provided.add(stream_id)
    for operator_id in built.teardown_operators:
        for host in allocation.hosts_of_operator(operator_id):
            delta.remove_placements.add((host, operator_id))

    # Add back what the solver selected.
    for (h, s), var in built.y_vars.items():
        if result.value(var) > _ONE:
            delta.add_available.add((h, s))
    for (h, m, s), var in built.x_vars.items():
        if result.value(var) > _ONE:
            delta.add_flows.add((h, m, s))
    for (h, o), var in built.z_vars.items():
        if result.value(var) > _ONE:
            delta.add_placements.add((h, o))
    for (h, s), var in built.d_vars.items():
        if result.value(var) > _ONE:
            delta.set_provided[s] = h

    # In frozen mode structures kept through credits stay implicitly; make
    # sure streams available through credits that the solution relies on are
    # marked available (they already are in the live allocation).

    admitted: Set[int] = set()
    rejected: Set[int] = set()
    for query_id in scope.new_queries:
        query = catalog.get_query(query_id)
        provided_now = query.result_stream in delta.set_provided
        provided_before = (
            built.frozen_mode and allocation.is_provided(query.result_stream)
        )
        if provided_now or provided_before:
            admitted.add(query_id)
        else:
            rejected.add(query_id)
    delta.admit_queries = set(admitted)
    # Replanned queries stay admitted (IV.9 guarantees their streams remain
    # provided); record them so the delta is self-contained.
    delta.admit_queries |= set(scope.replanned_queries)

    return DecodedSolution(
        delta=delta,
        admitted_new_queries=frozenset(admitted),
        rejected_new_queries=frozenset(rejected),
    )
