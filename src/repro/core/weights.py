"""Objective weights λ1..λ4 of the SQPR optimisation model (§III-B, §IV-A).

The combined objective is::

    maximise  λ1·O1 − λ2·O2 − λ3·O3 − λ4·O4

with O1 = number of satisfied queries, O2 = system-wide network usage,
O3 = system-wide CPU usage and O4 = maximum CPU usage on any single host.

The paper's default setting (§IV-A) makes O1 lexicographically dominant
(λ1 = "a sufficiently large number"), normalises O2 and O3 by the total
available bandwidth and CPU respectively, and balances O3 against O4.  The
text of the paper assigns ``1/Σβ_h`` to λ2 and ``1/Σκ_hm`` to λ3; since O2 is
the network objective and O3 the CPU objective, we interpret this as a
typographical slip and normalise each objective by the capacity of *its own*
resource, which is what makes the weighted sum dimensionless.  The
``load_balancing`` knob below reproduces the (λ3, λ4) trade-off discussed in
§III-B: 0 → pure total-CPU minimisation, 1 → pure load balancing, 0.5 →
the paper's "same weight" default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsps.catalog import SystemCatalog
from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class ObjectiveWeights:
    """The four objective weights of problem (III.8)."""

    admission: float  # λ1, weight of O1
    network: float  # λ2, weight of O2
    cpu: float  # λ3, weight of O3
    balance: float  # λ4, weight of O4

    def __post_init__(self) -> None:
        check_non_negative("admission weight", self.admission)
        check_non_negative("network weight", self.network)
        check_non_negative("cpu weight", self.cpu)
        check_non_negative("balance weight", self.balance)

    @classmethod
    def paper_default(
        cls,
        catalog: SystemCatalog,
        load_balancing: float = 0.5,
        admission_weight: float = 1000.0,
    ) -> "ObjectiveWeights":
        """The §IV-A weight setting for a given catalog.

        Parameters
        ----------
        load_balancing:
            Trade-off θ between minimising total CPU (θ = 0) and balancing
            the per-host maximum (θ = 1).  The paper's default corresponds to
            θ = 0.5 ("the same weight").
        admission_weight:
            The "sufficiently large" λ1 making admission dominate.
        """
        check_probability("load_balancing", load_balancing)
        total_bandwidth = max(catalog.total_bandwidth_capacity(), 1e-9)
        total_cpu = max(catalog.total_cpu_capacity(), 1e-9)
        cpu_norm = 1.0 / total_cpu
        return cls(
            admission=admission_weight,
            network=1.0 / total_bandwidth,
            cpu=(1.0 - load_balancing) * 2.0 * cpu_norm,
            balance=load_balancing * 2.0 * cpu_norm,
        )

    @classmethod
    def admission_only(cls, admission_weight: float = 1000.0) -> "ObjectiveWeights":
        """Maximise the number of admitted queries and nothing else."""
        return cls(admission=admission_weight, network=0.0, cpu=0.0, balance=0.0)
