"""Problem reduction: the S(q)/O(q) restriction of §IV-A.

SQPR does not re-solve the full optimisation problem when a query arrives.
It restricts the decision variables to the streams S(q) and operators O(q)
that can appear in plans for the new query, plus — because reuse may require
moving already-placed operators — the streams and operators of *admitted*
queries that share streams with the new query.  Everything else is treated
as fixed background: its resource usage is subtracted from the capacities
and its availability can optionally be credited for reuse.

Constraint (IV.9) — "the new solution does not drop already admitted
queries" — is captured by :attr:`ReplanScope.keep_provided`: the set of
already-provided requested streams inside the scope, which the model builder
forces to remain provided (possibly by a different host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query


def _overlap_scored(
    catalog: SystemCatalog,
    allocation: Allocation,
    streams: Set[int],
    new_ids: Set[int],
) -> List[tuple]:
    """Score admitted queries overlapping ``streams``, via the
    stream→queries membership index.

    Cost is proportional to the *overlap* (the admitted queries actually
    sharing a scope stream), not to the resident-query count.  Produces
    exactly the ``(composite_shared, shared, query_id)`` tuples of
    :func:`_overlap_scored_scan`, the index-free oracle.
    """
    shared_total: Dict[int, int] = {}
    shared_composite: Dict[int, int] = {}
    for stream_id in streams:
        users = allocation.queries_using_stream(stream_id)
        if not users:
            continue
        composite = catalog.streams.get(stream_id).is_composite
        for query_id in users:
            if query_id in new_ids:
                continue
            shared_total[query_id] = shared_total.get(query_id, 0) + 1
            if composite:
                shared_composite[query_id] = (
                    shared_composite.get(query_id, 0) + 1
                )
    return [
        (shared_composite.get(query_id, 0), total, query_id)
        for query_id, total in shared_total.items()
    ]


def _overlap_scored_scan(
    catalog: SystemCatalog,
    allocation: Allocation,
    streams: Set[int],
    new_ids: Set[int],
) -> List[tuple]:
    """Index-free oracle for :func:`_overlap_scored`: scan every admitted
    query and intersect its candidate streams with the scope."""
    scored: List[tuple] = []
    for admitted_id in allocation.admitted_queries:
        if admitted_id in new_ids or not catalog.has_query(admitted_id):
            continue
        admitted = catalog.get_query(admitted_id)
        shared = set(admitted.candidate_streams) & streams
        if not shared:
            continue
        composite_shared = sum(
            1 for s in shared if catalog.streams.get(s).is_composite
        )
        scored.append((composite_shared, len(shared), admitted_id))
    return scored


@dataclass(frozen=True)
class ReplanScope:
    """The reduced variable universe for one planning round.

    Attributes
    ----------
    new_queries:
        The queries being planned in this round (one, or a batch).
    streams:
        Stream ids whose variables are free in the reduced model.
    operators:
        Operator ids whose variables are free in the reduced model.
    keep_provided:
        Requested streams inside the scope that are already provided and must
        remain provided (constraint IV.9).
    replanned_queries:
        Ids of admitted queries that fall inside the scope (their placement
        may move, their admission may not be dropped).
    """

    new_queries: FrozenSet[int]
    streams: FrozenSet[int]
    operators: FrozenSet[int]
    keep_provided: FrozenSet[int]
    replanned_queries: FrozenSet[int]

    @property
    def num_streams(self) -> int:
        """Number of streams with free variables."""
        return len(self.streams)

    @property
    def num_operators(self) -> int:
        """Number of operators with free variables."""
        return len(self.operators)

    def requested_streams(self, catalog: SystemCatalog) -> FrozenSet[int]:
        """Streams that carry a d variable: new results plus kept results."""
        requested = set(self.keep_provided)
        for query_id in self.new_queries:
            requested.add(catalog.get_query(query_id).result_stream)
        return frozenset(requested)


def compute_scope(
    catalog: SystemCatalog,
    allocation: Allocation,
    new_queries: Sequence[Query],
    replan_overlapping: bool = True,
    max_replanned_queries: int = 4,
) -> ReplanScope:
    """Compute the reduced scope for planning ``new_queries``.

    Parameters
    ----------
    replan_overlapping:
        When true (the paper's behaviour), admitted queries sharing streams
        with a new query are pulled into the scope so their operators may be
        moved.  When false, they stay fixed background (a pure greedy-reuse
        ablation).
    max_replanned_queries:
        Upper bound on how many overlapping admitted queries are pulled into
        the scope.  The paper replans *all* sharing queries; with skewed
        (Zipfian) workloads that set can cover most of the system, which
        defeats the purpose of problem reduction, so we keep the queries with
        the largest overlap (composite-stream overlap first).  Set to a large
        number to recover the unbounded behaviour.
    """
    streams: Set[int] = set()
    operators: Set[int] = set()
    for query in new_queries:
        streams |= set(query.candidate_streams)
        operators |= set(query.candidate_operators)

    replanned: Set[int] = set()
    if replan_overlapping and max_replanned_queries > 0:
        new_ids = {query.query_id for query in new_queries}
        scored = _overlap_scored(catalog, allocation, streams, new_ids)
        scored.sort(reverse=True)
        replanned = {qid for (_c, _t, qid) in scored[:max_replanned_queries]}
        for admitted_id in replanned:
            admitted = catalog.get_query(admitted_id)
            streams |= set(admitted.candidate_streams)
            operators |= set(admitted.candidate_operators)

    keep_provided: Set[int] = set()
    for stream_id in streams:
        if allocation.is_provided(stream_id):
            keep_provided.add(stream_id)

    return ReplanScope(
        new_queries=frozenset(q.query_id for q in new_queries),
        streams=frozenset(streams),
        operators=frozenset(operators),
        keep_provided=frozenset(keep_provided),
        replanned_queries=frozenset(replanned),
    )
