"""The SQPR planner: Algorithm 1 (initial query planning) plus batching.

The planner keeps the live :class:`~repro.dsps.allocation.Allocation` of the
DSPS.  For every submitted query it

1. checks whether the query's result stream is already provided (duplicate
   queries are satisfied for free — Algorithm 1, line 3),
2. computes the reduced re-planning scope (§IV-A),
3. builds and solves the reduced MILP with the configured per-query timeout,
4. decodes the solution and — if the query was admitted — applies the
   placement delta, and
5. records a :class:`PlanningOutcome` with timing and solver statistics.

Batched submission (Fig. 4b) plans several new queries in one model with a
proportionally larger timeout.

``PlannerConfig`` and ``PlanningOutcome`` are re-exported from
:mod:`repro.api` for backwards compatibility; the planner registers itself
as ``"sqpr"`` in the planner registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.api.base import Planner, PlannerConfig, PlanningOutcome
from repro.api.registry import register_planner
from repro.core.model_builder import ModelReuseCache, build_model
from repro.core.reduction import compute_scope
from repro.core.solution import decode_solution
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import rebuild_minimal_allocation
from repro.dsps.query import Query, QueryWorkloadItem
from repro.dsps.subplan import ReuseMatch, SubPlanIndex, resolve_reuse_matches
from repro.exceptions import PlanningError
from repro.milp import MilpSolver
from repro.utils.timer import Stopwatch

__all__ = ["PlannerConfig", "PlanningOutcome", "SQPRPlanner"]


@register_planner("sqpr")
class SQPRPlanner(Planner):
    """Stream Query Planning with Reuse."""

    def __init__(
        self,
        catalog: SystemCatalog,
        config: Optional[PlannerConfig] = None,
        weights: Optional[ObjectiveWeights] = None,
        solver: Optional[MilpSolver] = None,
        allocation: Optional[Allocation] = None,
    ) -> None:
        super().__init__(catalog, config)
        self.weights = weights or ObjectiveWeights.paper_default(
            catalog, load_balancing=self.config.load_balancing
        )
        self.solver = solver or MilpSolver(
            backend=self.config.backend,
            time_limit=self.config.time_limit,
            mip_gap=self.config.mip_gap,
            warm_start=self.config.warm_start,
        )
        self.allocation = allocation if allocation is not None else Allocation(catalog)
        self._reuse_cache = ModelReuseCache()
        # Last applied solution, keyed by variable *name* so it survives
        # model rebuilds: names like "y[h,s]" are stable across rounds.
        self._last_values: Dict[str, float] = {}
        # True while a churn/repair path re-submits an already-known query
        # (see resubmit); tagged onto outcome extras so re-plan cost can be
        # separated from first-admission cost in metrics.
        self._resubmitting = False
        self._subplan_index: Optional[SubPlanIndex] = (
            SubPlanIndex(catalog) if self.config.reuse_index else None
        )
        if self._subplan_index is not None and allocation is None:
            # A fresh empty allocation is trivially minimal, so the index can
            # start in sync.  A caller-supplied allocation may carry garbage;
            # leave the index unsynchronised and let the first admission fall
            # back to the index-free rebuild (which re-synchronises it).
            self._subplan_index.rebuild(self.allocation)

    def reset(self) -> None:
        """Forget outcomes, allocation, cached models and warm-start state."""
        super().reset()
        self._reuse_cache.clear()
        self._last_values = {}
        if self._subplan_index is not None:
            self._subplan_index.invalidate()
            self._subplan_index.rebuild(self.allocation)

    def on_topology_change(self) -> List[int]:
        """Invalidate solver-layer caches after hosts failed or joined.

        The reuse-cache key covers the active host set, so stale hits are
        impossible either way; dropping the entries and the warm-start hint
        just frees models and variable values built for a topology that no
        longer exists.  SQPR never drops queries here — placement-level
        eviction happens in the engine.
        """
        self._reuse_cache.clear()
        self._last_values = {}
        if self._subplan_index is not None:
            # Plan extraction reads catalog state (base-injection liveness)
            # that the index's read keys do not cover, so cached sub-plan
            # records cannot survive a topology change.
            self._subplan_index.invalidate()
        return []

    @property
    def reuse_stats(self) -> Dict[str, int]:
        """Model-reuse cache counters for this planner.

        ``hits``/``misses`` count whole-model reuse; ``basis_hits``/
        ``basis_misses`` count incumbent simplex bases handed to the solver
        for dual-simplex warm re-planning (only the branch-and-bound
        backend consumes them).
        """
        return {
            "hits": self._reuse_cache.hits,
            "misses": self._reuse_cache.misses,
            "basis_hits": self._reuse_cache.basis_hits,
            "basis_misses": self._reuse_cache.basis_misses,
        }

    @property
    def subplan_stats(self) -> Dict[str, int]:
        """Sub-plan index maintenance counters (empty when the index is off)."""
        if self._subplan_index is None:
            return {}
        stats = dict(self._subplan_index.stats)
        stats["records"] = len(self._subplan_index)
        return stats

    def resolve_reuse(self, queries: Sequence[Query]) -> List[ReuseMatch]:
        """Resolve exact/partial reuse for already-registered queries.

        Purely informational — admission decisions are made by the MILP as
        usual.  Expects :class:`Query` objects; workload items must go
        through ``submit_batch`` (which performs this pass itself and
        attaches the matches to the outcomes' extras) so they are not
        registered twice.
        """
        return resolve_reuse_matches(self.allocation, list(queries))

    def retire(self, query_id: int) -> bool:
        """Retire a query, incrementally updating the sub-plan index.

        Falls back to the index-free path (``without_queries`` plus minimal
        rebuild) whenever the index cannot guarantee an identical result:
        index disabled, garbage collection off, an id the catalog does not
        know, or an allocation the index is out of sync with.
        """
        index = self._subplan_index
        if (
            index is None
            or not self.config.garbage_collect
            or not self.catalog.has_query(query_id)
            or not index.is_fresh(self.allocation)
        ):
            return super().retire(query_id)
        successor = index.retire(self.allocation, query_id)
        if successor is None:
            return False
        self.allocation = successor
        return True

    # -------------------------------------------------------------- submission
    def submit(
        self,
        query: Union[Query, QueryWorkloadItem],
        time_limit: Optional[float] = None,
    ) -> PlanningOutcome:
        """Plan a single new query (Algorithm 1) and return the outcome."""
        outcomes = self.submit_batch([query], time_limit=time_limit)
        return outcomes[0]

    def resubmit(
        self,
        query: Union[Query, QueryWorkloadItem],
        time_limit: Optional[float] = None,
    ) -> PlanningOutcome:
        """Re-plan a query after a perturbation (churn, eviction, drift).

        Identical decisions to :meth:`submit`; the solve is a perturbation
        re-solve of a model structure the planner has typically already
        seen, so the incumbent-basis store usually turns it into a
        dual-simplex warm start.  The outcome is tagged with
        ``perturbation_resolve=True`` so metrics can separate re-plan cost
        from first-admission cost.
        """
        self._resubmitting = True
        try:
            return self.submit(query, time_limit=time_limit)
        finally:
            self._resubmitting = False

    def submit_batch(
        self,
        queries: Sequence[Union[Query, QueryWorkloadItem]],
        time_limit: Optional[float] = None,
    ) -> List[PlanningOutcome]:
        """Plan a batch of new queries in a single optimisation model.

        The timeout defaults to ``config.time_limit * len(batch)``, matching
        the paper's batching experiment (Fig. 4b).
        """
        if not queries:
            return []
        resolved = [self._resolve_query(q) for q in queries]

        # One shared index pass resolves exact/partial reuse for the whole
        # batch up front (before any admission mutates the allocation);
        # the matches are attached to the outcomes below so callers (the
        # admission service's metrics) never need their own resident scan.
        reuse_matches = {
            match.query_id: match
            for match in resolve_reuse_matches(self.allocation, resolved)
        }

        # Algorithm 1, line 3: queries whose result stream is already
        # provided are satisfied without any planning.
        to_plan: List[Query] = []
        duplicate_outcomes: List[PlanningOutcome] = []
        for query in resolved:
            if self.allocation.is_provided(query.result_stream):
                self.allocation.admit_query(query.query_id)
                duplicate_outcomes.append(
                    PlanningOutcome(
                        query=query,
                        admitted=True,
                        duplicate=True,
                        planning_time=0.0,
                    )
                )
            else:
                to_plan.append(query)

        planned_outcomes: List[PlanningOutcome] = []
        if to_plan:
            if time_limit is None and self.config.time_limit is not None:
                time_limit = self.config.time_limit * len(to_plan)
            planned_outcomes = self._plan(to_plan, time_limit)

        ordered = self._reorder(resolved, duplicate_outcomes + planned_outcomes)
        for outcome in ordered:
            match = reuse_matches.get(outcome.query.query_id)
            if match is not None:
                outcome.extras["reuse_exact"] = match.exact
                outcome.extras["reuse_partial"] = match.partial
                outcome.extras["reuse_overlapping_queries"] = (
                    match.overlapping_queries
                )
        return self._record_many(ordered)

    # ---------------------------------------------------------------- planning
    def _basis_key(self, scope, frozen_mode: bool, force_admission: bool) -> tuple:
        """Structure key for the incumbent-basis store.

        Covers everything that shapes the standard form's row/column layout
        (scope sets, build flags, host set) but deliberately *not* the
        allocation fingerprint — bound/RHS drift between rounds is exactly
        what the dual simplex absorbs.  Allocation changes that do alter
        the row structure make the stored basis dimensionally stale, which
        the LP engine detects and discards on install.
        """
        return (
            frozen_mode,
            force_admission,
            self.config.allow_relay,
            self.config.max_relay_hops,
            scope.streams,
            scope.operators,
            scope.keep_provided,
            scope.replanned_queries,
            frozenset(
                self.catalog.get_query(qid).result_stream for qid in scope.new_queries
            ),
            tuple(self.catalog.host_ids),
        )

    def _solve_stage(
        self,
        queries: List[Query],
        frozen_mode: bool,
        replan_overlapping: bool,
        time_limit: Optional[float],
        force_admission: bool = False,
    ):
        """Build (or reuse) and solve one model variant.

        Returns ``(scope, built, result, reused)`` where ``reused`` is true
        when the model came out of the reuse cache instead of being rebuilt.
        """
        scope = compute_scope(
            self.catalog,
            self.allocation,
            queries,
            replan_overlapping=replan_overlapping,
            max_replanned_queries=self.config.max_replanned_queries,
        )
        build_kwargs = dict(
            frozen_mode=frozen_mode,
            allow_relay=self.config.allow_relay,
            max_relay_hops=self.config.max_relay_hops,
            force_admission=force_admission and len(queries) == 1,
        )
        if self.config.reuse_model:
            built, reused = self._reuse_cache.get_or_build(
                self.catalog, self.allocation, scope, self.weights, **build_kwargs
            )
        else:
            built = build_model(
                self.catalog, self.allocation, scope, self.weights, **build_kwargs
            )
            reused = False
        if self.config.warm_start:
            # Seed the solver with the previous round's deployed placement:
            # shared sub-plans keep their variable names across rebuilds, so
            # a feasible previous solution becomes the initial incumbent.
            hint = {
                var: self._last_values[var.name]
                for var in built.model.variables
                if var.name in self._last_values
            }
            built.model.set_warm_start(hint)
        else:
            built.model.set_warm_start({})
        basis_key = None
        if self.config.warm_start:
            # Dual-simplex warm start: resume the root relaxation from the
            # incumbent basis of the last solve with this model structure
            # (a perturbation re-solve after churn, a retry, a stage-B
            # forced-admission variant of a structure seen before).
            basis_key = self._basis_key(
                scope, frozen_mode, build_kwargs["force_admission"]
            )
            built.model.set_basis_hint(self._reuse_cache.basis_for(basis_key))
        else:
            built.model.set_basis_hint(None)
        result = self.solver.solve(built.model, time_limit=time_limit)
        if basis_key is not None and getattr(result, "root_basis", None) is not None:
            self._reuse_cache.store_basis(basis_key, result.root_basis)
        return scope, built, result, reused

    def _apply_if_admitting(self, built, result) -> frozenset:
        """Decode ``result`` and apply it if it admits any new query."""
        if not self.solver.is_usable_status(result):
            return frozenset()
        decoded = decode_solution(self.catalog, self.allocation, built, result)
        if not decoded.admitted_any:
            return frozenset()
        index = self._subplan_index
        # Freshness must be judged against the pre-delta allocation: that is
        # the state the index's records describe.
        index_ok = (
            index is not None
            and self.config.garbage_collect
            and index.is_fresh(self.allocation)
        )
        self.allocation.apply(decoded.delta)
        if self.config.warm_start:
            self._last_values = {
                var.name: value for var, value in result.values.items()
            }
        if self.config.garbage_collect:
            # Timed-out incumbents may contain redundant placements and
            # flows; keep only what admitted queries actually need so wasted
            # resources do not pile up over time.  With a fresh sub-plan
            # index the collection is incremental (proportional to the delta
            # and the affected sub-plans); otherwise fall back to the full
            # rebuild and re-synchronise the index from its result.
            if index_ok:
                forced = {
                    self.catalog.get_query(query_id).result_stream
                    for query_id in (
                        decoded.admitted_new_queries | built.scope.replanned_queries
                    )
                }
                self.allocation = index.collect(
                    self.allocation, decoded.delta, forced
                )
            else:
                self.allocation = rebuild_minimal_allocation(
                    self.catalog, self.allocation
                )
                if index is not None:
                    index.note_stale_fallback()
                    index.rebuild(self.allocation)
        if self.config.validate_after_apply:
            violations = self.allocation.validate()
            if violations:
                raise PlanningError(
                    "decoded solution produced an infeasible allocation: "
                    + "; ".join(violations[:5])
                )
        return decoded.admitted_new_queries

    def _relocation_candidates(self, queries: List[Query]) -> List[Query]:
        """Drop queries that no stage-B relocation could possibly admit.

        Re-planning may move operators but can neither evict admitted
        queries (constraint IV.9) nor shrink their demand — operator CPU
        costs are placement-independent — so admitting a new query needs
        at least its cheapest not-yet-placed candidate operator to fit
        inside the cluster's *aggregate* free CPU, no matter how the
        existing placement is repacked.  When that necessary condition
        fails, the forced-admission model is infeasible by construction;
        skipping it avoids paying the solver's infeasibility proof, which
        otherwise dominates planning time on a saturated system.  The
        bound is conservative (bandwidth and per-host packing ignored),
        so a pruned query is one stage B could never have admitted and
        observable decisions are unchanged.
        """
        if not queries:
            return queries
        free = sum(
            self.catalog.hosts.get(h).cpu_capacity
            - self.allocation.cpu_used(h)
            for h in self.catalog.host_ids
        )
        viable: List[Query] = []
        for query in queries:
            min_new_cost = min(
                (
                    self.catalog.get_operator(o).cpu_cost
                    for o in query.candidate_operators
                    if not self.allocation.hosts_of_operator(o)
                ),
                default=0.0,
            )
            if min_new_cost <= free + 1e-9:
                viable.append(query)
        return viable

    def _plan(
        self, queries: List[Query], time_limit: Optional[float]
    ) -> List[PlanningOutcome]:
        watch = Stopwatch()
        replan = self.config.replan_overlapping
        use_two_stage = self.config.two_stage and replan

        # One counters dict is shared by every outcome of this planning
        # round (stage A + stage B summed); consumers that aggregate over
        # outcomes dedupe by object identity so a batch is not multiple-
        # counted.
        solver_counters: Dict[str, int] = {}

        def merge_counters(result) -> None:
            for key, value in (getattr(result, "lp_counters", None) or {}).items():
                solver_counters[key] = solver_counters.get(key, 0) + value

        admitted_ids: frozenset = frozenset()
        if use_two_stage:
            # Stage A: a small greedy-reuse model (existing structures frozen).
            stage_a_limit = None if time_limit is None else 0.5 * time_limit
            scope, built, result, reused = self._solve_stage(
                queries,
                frozen_mode=True,
                replan_overlapping=False,
                time_limit=stage_a_limit,
            )
            merge_counters(result)
            admitted_ids = self._apply_if_admitting(built, result)
            rejected = self._relocation_candidates(
                [
                    query
                    for query in queries
                    if query.query_id not in admitted_ids
                ]
            )
            if rejected:
                # Stage B: the full re-planning model with the remaining
                # budget, over whatever stage A could not place.  For a
                # single query this is a forced-admission feasibility
                # search (the lexicographically dominant λ1 turned into a
                # constraint); for a batch remainder the joint model keeps
                # λ1 in the objective and relocates existing placements to
                # admit as many of the leftovers as it can — so a batch
                # member rejected by the frozen greedy stage still gets the
                # same relocation chance a one-at-a-time submission would.
                remaining = None if time_limit is None else max(
                    0.05, time_limit - watch.elapsed()
                )
                scope, built, result, reused = self._solve_stage(
                    rejected,
                    frozen_mode=False,
                    replan_overlapping=True,
                    time_limit=remaining,
                    force_admission=True,
                )
                merge_counters(result)
                admitted_ids = admitted_ids | self._apply_if_admitting(
                    built, result
                )
        else:
            scope, built, result, reused = self._solve_stage(
                queries,
                frozen_mode=not replan,
                replan_overlapping=replan,
                time_limit=time_limit,
            )
            merge_counters(result)
            admitted_ids = self._apply_if_admitting(built, result)

        elapsed = watch.elapsed()
        per_query_time = elapsed / max(1, len(queries))
        outcomes: List[PlanningOutcome] = []
        for query in queries:
            admitted = query.query_id in admitted_ids
            outcomes.append(
                PlanningOutcome(
                    query=query,
                    admitted=admitted,
                    planning_time=per_query_time,
                    plan=self._maybe_extract_plan(query) if admitted else None,
                    objective_value=result.objective,
                    rejection_reason="" if admitted else "no-admitting-incumbent",
                    extras={
                        "solve_result": result,
                        "model_size": built.model.num_variables,
                        "scope_streams": scope.num_streams,
                        "scope_operators": scope.num_operators,
                        "reused_model": reused,
                        "warm_seeded": bool(built.model.warm_start),
                        "solver_counters": solver_counters,
                        "perturbation_resolve": self._resubmitting,
                    },
                )
            )
        return outcomes
