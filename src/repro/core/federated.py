"""Hierarchical partitioned planning over a federated, site-aware topology.

The paper targets *federated* stream-processing infrastructures: resource
sites connected by constrained wide-area links.  :class:`FederatedPlanner`
brings that structure into the planning stack by decomposing admission the
way the topology decomposes the cluster:

* every site gets its own **inner planner** (any registered allocation-
  keeping planner: ``sqpr``, ``heuristic``, ``soda``) driving a
  :class:`~repro.dsps.catalog.SiteCatalogView` — a site-local slice of the
  shared catalog.  A query whose base streams are all injected inside one
  site is planned *entirely* by that site's planner: the MILP it solves
  spans only the site's hosts, which is what makes partitioned planning
  scale with the number of sites;
* queries whose base streams span sites escalate to a **coordinator** — one
  more inner planner over a :class:`~repro.dsps.catalog.GatewayCatalogView`
  that sees every host but caps cross-site link capacities at the remaining
  WAN gateway budget.  The coordinator plans in frozen (greedy-reuse) mode
  on top of the merged global state, so it can reuse shard-produced streams
  across the WAN but never tears shard-owned placements down;
* the planner's public :attr:`allocation` is the **merged** global state —
  the union of every shard's allocation plus the structures only the
  coordinator's cross-site queries need — rebuilt (with touched-state
  inheritance, so delta validation keeps working) after every mutation.

Resource soundness across the shards: shard planners cannot see the
coordinator's cross-site placements in their own allocations, so each
:class:`SiteCatalogView` carries the coordinator's *foreign usage* and
reports correspondingly reduced host/link capacities.  Conversely the
coordinator is handed a copy of the merged allocation before every
cross-site submission, so all shard usage is background to it.

Every inner planner keeps its own
:class:`~repro.core.model_builder.ModelReuseCache`; ``retire``,
``on_topology_change`` and the stats/hook machinery route through the
shards.  Instances are registered as ``federated`` and constructed through
the registry's parameterised names: ``create_planner("federated:sqpr", …)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Union

from repro.api.base import Planner, PlannerConfig, PlanningOutcome
from repro.api.registry import get_planner_class, register_planner, resolve_planner_name
from repro.dsps.allocation import Allocation
from repro.utils.pool import BACKENDS, PersistentProcessPool, map_in_pool
from repro.core.federated_worker import (
    apply_allocation_ops,
    dump_allocation,
    make_shard_worker,
)
from repro.dsps.catalog import GatewayCatalogView, SiteCatalogView, SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanningError

__all__ = ["FederatedPlanner"]

#: Owner key of the coordinator in the query-ownership map (shards use
#: their site id).
_COORDINATOR = "coordinator"


@register_planner("federated")
class FederatedPlanner(Planner):
    """Site-partitioned admission with a WAN-aware coordinator."""

    def __init__(
        self,
        catalog: SystemCatalog,
        config: Optional[PlannerConfig] = None,
        inner: str = "sqpr",
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(catalog, config)
        if workers is not None and workers < 1:
            raise PlanningError(f"workers must be >= 1, got {workers}")
        #: Pool width for concurrent shard planning in
        #: :meth:`submit_batch` (``None``/1 = plan site groups serially
        #: on the thread backend; the process backend still forks one
        #: worker).  The per-site shards are embarrassingly parallel:
        #: each one reads the shared catalog (immutable during a batch —
        #: queries are resolved up front) and mutates only its own
        #: allocation, solver and reuse cache, so concurrent execution
        #: returns exactly the serial results.
        self.workers = workers
        backend = backend if backend is not None else self.config.exec_backend
        if backend not in BACKENDS:
            raise PlanningError(
                f"unknown execution backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        #: Execution backend for shard fan-out: ``serial``/``thread`` run
        #: the per-site groups in this process; ``process`` plans them on
        #: long-lived forked workers holding warm shard replicas, kept in
        #: sync with compact deltas (see :mod:`repro.core.federated_worker`).
        self.backend = backend
        # Process-backend state: the persistent pool is created lazily on
        # the first batch (forking then inherits all warm shard state).
        self._pool: Optional[PersistentProcessPool] = None
        self._worker_sites: Dict[int, List[int]] = {}
        self._site_worker: Dict[int, int] = {}
        self._worker_events: Dict[int, List] = {}
        self._worker_cursor: Dict[int, int] = {}
        self._stale_sites = set()
        self._foreign_shipped: Dict[int, object] = {}
        self.inner_name = resolve_planner_name(inner)
        if self.inner_name == "federated":
            raise PlanningError("federated planners cannot nest")
        self._inner_cls = get_planner_class(self.inner_name)
        #: query id -> owning shard site id, or the coordinator marker.
        self._owner: Dict[int, Union[int, str]] = {}
        #: (coordinator fingerprint, owned-query set) -> remainder cache;
        #: invalidated on topology changes (plan extraction reads catalog
        #: liveness, not just allocation contents).
        self._remainder_cache = None
        # The merge must exist before the coordinator: its gateway view
        # reads the live allocation for remaining-WAN capacity, and an
        # inner planner may consult link capacities during construction.
        self._merged = Allocation(catalog)
        self._views: Dict[int, SiteCatalogView] = {}
        self._shards: Dict[int, Planner] = {}
        for site in catalog.sites:
            self._add_shard(site)
        # The coordinator plans cross-site queries greedily on top of the
        # frozen global state: shard-owned structures are reusable
        # background, never re-planning victims — shards stay the sole
        # owners of their placements.
        coordinator_config = replace(
            self.config, replan_overlapping=False, two_stage=False
        )
        self._gateway_view = GatewayCatalogView(catalog, lambda: self._merged)
        self._coordinator = self._inner_cls(
            self._gateway_view, config=coordinator_config
        )
        self._coordinator.name = f"{self.inner_name}@coordinator"

    def _add_shard(self, site: int) -> None:
        view = SiteCatalogView(self.catalog, site)
        shard = self._inner_cls(view, config=self.config)
        shard.name = f"{self.inner_name}@site{site}"
        if shard.allocation is None:
            raise PlanningError(
                f"federated planning needs an allocation-keeping inner "
                f"planner; {self.inner_name!r} keeps none"
            )
        self._views[site] = view
        self._shards[site] = shard

    def _refresh_shards(self) -> None:
        """Track topology growth: new sites get shards, existing views
        re-snapshot their host membership (hosts can join a site)."""
        for site in self.catalog.sites:
            if site in self._shards:
                self._views[site].refresh()
            else:
                self._add_shard(site)

    # ----------------------------------------------------- process-pool fabric
    def _ensure_pool(self) -> None:
        """Fork the persistent worker pool on first use (process backend).

        Forking *after* the shards exist means every worker inherits warm
        replicas — planners, reuse caches, views, current allocations —
        without pickling a single byte; only the later deltas cross the
        pipe.  Sites are assigned round-robin over ``workers`` slots;
        sites appearing after the fork stay parent-planned.
        """
        if self._pool is not None or self.backend != "process":
            return
        sites = sorted(self._shards)
        if not sites:
            return
        width = max(1, min(self.workers or 1, len(sites)))
        assignment = {site: index % width for index, site in enumerate(sites)}
        payloads = []
        for worker_id in range(width):
            owned = [site for site in sites if assignment[site] == worker_id]
            payloads.append(
                {
                    "catalog": self.catalog,
                    "views": {site: self._views[site] for site in owned},
                    "shards": {site: self._shards[site] for site in owned},
                    "inner_cls": self._inner_cls,
                    "inner_name": self.inner_name,
                    "config": self.config,
                    "cursor": self.catalog.num_registrations,
                }
            )
        self._pool = PersistentProcessPool(
            make_shard_worker, payloads, name="federated-shard"
        )
        self._site_worker = assignment
        self._worker_sites = {
            worker_id: [site for site in sites if assignment[site] == worker_id]
            for worker_id in range(width)
        }
        self._worker_events = {worker_id: [] for worker_id in range(width)}
        self._worker_cursor = {
            worker_id: self.catalog.num_registrations
            for worker_id in range(width)
        }
        self._stale_sites = set()
        self._foreign_shipped = {}
        for site, view in self._views.items():
            foreign = view.foreign_allocation
            self._foreign_shipped[site] = (
                None if foreign is None else foreign.fingerprint()
            )

    def _queue_shard_event(self, event, site: Optional[int] = None) -> None:
        """Queue a replay-ready mutation for the owning worker's replica.

        Events ride along with the next plan request (no extra round
        trip).  Any replay divergence — e.g. a drop replayed under
        different catalog liveness than the parent computed it — is
        caught by the pre-plan fingerprint check and answered with a
        full-state resync, so queued events can be lossy in the worst
        case but never wrong.
        """
        if self._pool is None:
            return
        if site is None:
            for worker_id in self._worker_events:
                self._worker_events[worker_id].append(event)
            return
        worker_id = self._site_worker.get(site)
        if worker_id is not None:
            self._worker_events[worker_id].append(event)

    def _build_plan_body(self, worker_id, groups, time_limit):
        """Assemble one worker's plan request: deltas, events, groups."""
        events = self._worker_events[worker_id]
        self._worker_events[worker_id] = []
        log = self.catalog.registration_log
        cursor = self._worker_cursor[worker_id]
        self._worker_cursor[worker_id] = len(log)
        foreign = {}
        for site in self._worker_sites[worker_id]:
            view_foreign = self._views[site].foreign_allocation
            fingerprint = (
                None if view_foreign is None else view_foreign.fingerprint()
            )
            if self._foreign_shipped.get(site, "unsent") != fingerprint:
                foreign[site] = (
                    None
                    if view_foreign is None
                    else dump_allocation(view_foreign)
                )
                self._foreign_shipped[site] = fingerprint
        body_groups = []
        for site, group in groups:
            shard = self._shards[site]
            body_groups.append(
                {
                    "site": site,
                    "query_ids": [query.query_id for query in group],
                    "expect_fp": shard.allocation.fingerprint(),
                    # A site mutated parent-side since the last sync (a
                    # single submit outside any batch) ships its full
                    # allocation proactively, skipping the mismatch
                    # round-trip the fingerprint check would force.
                    "alloc": (
                        dump_allocation(shard.allocation)
                        if site in self._stale_sites
                        else None
                    ),
                }
            )
            self._stale_sites.discard(site)
        return {
            "registrations": log[cursor:],
            "sync": self.catalog.sync_state(),
            "struct_sig": self.catalog.structure_signature(),
            "events": events,
            "foreign": foreign,
            "groups": body_groups,
            "time_limit": time_limit,
        }

    def _resync_worker(self, worker_id: int) -> None:
        """Full-state fallback: ship the catalog and allocation dumps."""
        sites = {}
        foreign = {}
        for site in self._worker_sites[worker_id]:
            sites[site] = dump_allocation(self._shards[site].allocation)
            view_foreign = self._views[site].foreign_allocation
            foreign[site] = (
                None if view_foreign is None else dump_allocation(view_foreign)
            )
            self._foreign_shipped[site] = (
                None if view_foreign is None else view_foreign.fingerprint()
            )
            self._stale_sites.discard(site)
        self._worker_events[worker_id] = []
        self._worker_cursor[worker_id] = self.catalog.num_registrations
        self._pool.call(
            worker_id,
            "resync",
            {
                "catalog": self.catalog,
                "cursor": self.catalog.num_registrations,
                "sites": sites,
                "foreign": foreign,
            },
        )
        self._pool.stats[worker_id].resyncs += 1

    def _adopt_worker_group(self, entry):
        """Replay one worker group's allocation ops onto the parent shard.

        The parent shard allocation is mutated with exactly the ops the
        worker's solve produced, then cross-checked against the worker's
        post-solve rolling fingerprint — the merge that follows therefore
        sees bit-identical contents to the thread path.
        """
        site = entry["site"]
        shard = self._shards[site]
        apply_allocation_ops(shard.allocation, entry["ops"])
        if shard.allocation.fingerprint() != entry["post_fp"]:
            raise PlanningError(
                f"federated process backend: site {site} allocation "
                "diverged from its worker replica after op replay"
            )
        # Mirror the worker-side recording so shard_stats() and shard
        # hooks behave exactly as on the thread path.
        shard._record_many(entry["outcomes"])
        return site, entry["outcomes"], entry["changed"]

    def close(self) -> None:
        """Shut the persistent worker pool down (no-op on thread/serial)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def worker_stats(self) -> Dict[str, object]:
        """Backend and per-worker utilisation (tasks, busy time, resyncs)."""
        if self._pool is None:
            return {"backend": self.backend, "workers": []}
        workers = []
        for worker_id, stats in enumerate(self._pool.stats):
            record = stats.as_dict()
            record["sites"] = list(self._worker_sites.get(worker_id, []))
            workers.append(record)
        return {"backend": self.backend, "workers": workers}

    # -------------------------------------------------------- merged allocation
    @property
    def allocation(self) -> Allocation:
        """The merged global allocation (union of shards + coordinator)."""
        return self._merged

    @allocation.setter
    def allocation(self, value: Allocation) -> None:
        # External assignment (the simulation harness adopting the cluster
        # engine's post-eviction state, the adaptive replanner removing
        # victims): the assigned state is authoritative — inner planners
        # retire everything it no longer admits, then the merge is rebuilt.
        if value is self._merged:
            return
        self._reconcile_external(value)

    def _inner_planners(self) -> List[Planner]:
        return [self._shards[site] for site in sorted(self._shards)] + [
            self._coordinator
        ]

    def _coordinator_remainder(self) -> Allocation:
        """The structures only the coordinator's own queries need.

        The coordinator's allocation is a synced copy of the whole merged
        state plus its own admissions; garbage-collecting every query it
        does *not* own leaves exactly the cross-site plans (including any
        shard structures they reuse, which the union below keeps alive even
        if the owning shard retires them).
        """
        alloc = self._coordinator.allocation
        owned = frozenset(
            qid
            for qid in alloc.admitted_queries
            if self._owner.get(qid) == _COORDINATOR
        )
        # Garbage-collecting the coordinator's (global-sized) allocation on
        # every merge would make each submission O(system size); the result
        # only depends on the allocation contents and the owned set, so it
        # is cached on the O(1) rolling fingerprint.
        key = (alloc.fingerprint(), owned)
        if self._remainder_cache is not None and self._remainder_cache[0] == key:
            return self._remainder_cache[1]
        foreign = sorted(set(alloc.admitted_queries) - owned)
        remainder = alloc if not foreign else alloc.without_queries(foreign)
        self._remainder_cache = (key, remainder)
        return remainder

    def _rebuild_merged(self, inherit_from: Optional[Allocation] = None) -> None:
        """Re-derive the global allocation from the shards + coordinator.

        ``inherit_from`` names the allocation whose pending touched state
        (plus the diff to the rebuilt result) the merge must carry, so the
        harness's per-event delta validation stays complete across the
        object replacement; it defaults to the previous merged state.
        """
        source = inherit_from if inherit_from is not None else self._merged
        remainder = self._coordinator_remainder()
        merged = Allocation(self.catalog)
        parts = [self._shards[site].allocation for site in sorted(self._shards)]
        parts.append(remainder)
        for part in parts:
            merged.flows |= part.flows
            merged.available |= part.available
            merged.placements |= part.placements
            merged.admitted_queries |= part.admitted_queries
            merged.provided.update(part.provided)
        merged.inherit_touched(source)
        self._merged = merged
        self._update_foreign(remainder)

    def _update_foreign(self, remainder: Optional[Allocation]) -> None:
        """Publish the coordinator's usage to every site view, so shard
        planners see reduced capacities on hosts the coordinator shares.

        Each view gets the remainder *minus* the structures already present
        in that shard's own allocation (a cross-site plan may reuse a
        shard-produced stream, and the shard already accounts its own
        structures as background) — publishing the raw remainder would
        double-count them and shrink the shard's visible capacity below
        what is actually free.
        """
        if remainder is None or not (
            remainder.placements or remainder.flows or remainder.provided
        ):
            for view in self._views.values():
                view.set_foreign_allocation(None)
            return
        for site, view in self._views.items():
            own = self._shards[site].allocation
            pruned = Allocation(self.catalog)
            for key in remainder.placements:
                if key not in own.placements:
                    pruned.placements.add(key)
            for key in remainder.flows:
                if key not in own.flows:
                    pruned.flows.add(key)
            for stream_id, host in remainder.provided.items():
                if own.provided.get(stream_id) != host:
                    pruned.provided[stream_id] = host
            if pruned.placements or pruned.flows or pruned.provided:
                view.set_foreign_allocation(pruned)
            else:
                view.set_foreign_allocation(None)

    def _reconcile_external(self, value: Allocation) -> None:
        keep = set(value.admitted_queries)
        unknown = sorted(q for q in keep if q not in self._owner)
        if unknown:
            # The assigned state is authoritative for *removals* (engine
            # evictions, the adaptive replanner); queries this planner never
            # planned have no owning shard and cannot be adopted — dropping
            # them silently would desynchronise the engine, so refuse.
            raise PlanningError(
                "federated planner cannot adopt an allocation containing "
                f"queries it did not plan: {unknown}"
            )
        for site in sorted(self._shards):
            shard = self._shards[site]
            stale = sorted(set(shard.allocation.admitted_queries) - keep)
            if stale:
                shard.allocation = shard.allocation.without_queries(stale)
                self._queue_shard_event(("drop", site, stale), site)
        coordinator = self._coordinator
        stale = sorted(
            qid
            for qid in coordinator.allocation.admitted_queries
            if qid not in keep and self._owner.get(qid) == _COORDINATOR
        )
        if stale:
            coordinator.allocation = coordinator.allocation.without_queries(stale)
        for qid in [q for q in self._owner if q not in keep]:
            del self._owner[qid]
        # External assignments follow engine-level events (host failures,
        # partitions) whose catalog changes can alter plan extraction.
        self._remainder_cache = None
        self._rebuild_merged(inherit_from=value)

    # ----------------------------------------------------------------- routing
    def route(self, query: Query) -> Optional[int]:
        """The site that can plan ``query`` locally, or ``None``.

        A query is site-local when some single site currently injects *all*
        of its base streams (multi-homed streams intersect); the smallest
        such site id wins for determinism.  Everything else — including
        queries whose sources went offline — escalates to the coordinator.
        """
        catalog = self.catalog
        candidates = None
        for base_id in sorted(query.base_streams):
            stream_sites = {
                catalog.site_of_host(h) for h in catalog.base_hosts_of(base_id)
            }
            if candidates is None:
                candidates = stream_sites
            else:
                candidates &= stream_sites
            if not candidates:
                return None
        if not candidates:
            return None
        return min(candidates)

    def _sync_coordinator(self) -> None:
        """Hand the coordinator the merged global state as background."""
        self._coordinator.allocation = self._merged.copy()

    # -------------------------------------------------------------- submission
    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Route one query to its site shard or the coordinator."""
        query = self._resolve_query(query)
        return self._record(self._plan_one(query))

    def _route_registered(self, query: Query) -> Optional[int]:
        """Route an already-resolved query, materialising missing shards."""
        site = self.route(query)
        if site is not None and site not in self._shards:
            # A host joined a brand-new site without an explicit
            # on_topology_change(); materialise its shard on demand.
            self._refresh_shards()
        return site

    def _plan_one(self, query: Query) -> PlanningOutcome:
        """Plan one resolved query through its shard or the coordinator."""
        site = self._route_registered(query)
        if site is None:
            self._sync_coordinator()
            owner_key: Union[int, str] = _COORDINATOR
            target = self._coordinator
        else:
            owner_key = site
            target = self._shards[site]
        before = target.allocation
        before_fp = before.fingerprint()
        outcome = target.submit(query)
        if outcome.admitted:
            self._owner[query.query_id] = owner_key
        # A rejection leaves the inner allocation untouched (checked via the
        # O(1) fingerprint, defensively against custom inner planners), and
        # then the O(allocation) merge rebuild can be skipped entirely.
        changed = (
            target.allocation is not before
            or target.allocation.fingerprint() != before_fp
        )
        if outcome.admitted or changed:
            self._rebuild_merged()
        if changed and site is not None and self._pool is not None:
            # A parent-side single submit leaves the worker replica behind;
            # ship the full allocation proactively with the next batch
            # instead of paying a fingerprint-mismatch round trip.
            self._stale_sites.add(site)
        outcome.extras["site"] = owner_key
        return outcome

    def submit_batch(
        self,
        queries: Sequence[Union[Query, QueryWorkloadItem]],
        time_limit: Optional[float] = None,
    ) -> List[PlanningOutcome]:
        """Plan a batch with per-site grouping and optional shard concurrency.

        The batch is routed first: queries local to one site form per-site
        groups, everything else escalates to the coordinator.  Site groups
        are independent of each other — each shard reads the shared catalog
        (immutable during the batch) and mutates only its own state — so
        with ``workers > 1`` they are planned concurrently on a thread
        pool.  Site groups hand the whole group to the shard's own
        ``submit_batch`` (one MILP build + solve per group for the SQPR
        inner planner), the merged global allocation is rebuilt **once**
        per batch instead of once per query, and only then are cross-site
        queries planned serially through the coordinator (each needs the
        up-to-date merge as background).

        Within a site, group order is submission order; outcomes are
        returned in submission order.  Results are identical to the serial
        path for any ``workers`` value — concurrency changes wall-clock
        only.

        ``time_limit`` is the solver budget **per site group** (the inner
        planner's default — ``config.time_limit`` scaled by group size —
        applies when ``None``).  A flat cap keeps joint solves bounded
        when an admission service coalesces large batches under load.
        """
        if not queries:
            return []
        resolved = [self._resolve_query(q) for q in queries]
        site_groups: "OrderedDict[int, List[Query]]" = OrderedDict()
        cross: List[Query] = []
        for query in resolved:
            site = self._route_registered(query)
            if site is None:
                cross.append(query)
            else:
                site_groups.setdefault(site, []).append(query)

        outcomes: List[PlanningOutcome] = []
        mutated = False

        def plan_site(site: int, group: List[Query]):
            shard = self._shards[site]
            before = shard.allocation
            before_fp = before.fingerprint()
            group_outcomes = shard.submit_batch(group, time_limit=time_limit)
            changed = (
                shard.allocation is not before
                or shard.allocation.fingerprint() != before_fp
            )
            return site, group_outcomes, changed

        if self.backend == "process" and site_groups:
            planned = self._plan_groups_process(
                site_groups, time_limit, plan_site
            )
        else:
            planned = map_in_pool(
                lambda entry: plan_site(*entry),
                list(site_groups.items()),
                workers=self.workers,
                thread_name_prefix="federated-shard",
                backend="serial" if self.backend == "serial" else "thread",
            )
        for site, group_outcomes, changed in planned:
            mutated = mutated or changed
            for outcome in group_outcomes:
                if outcome.admitted:
                    self._owner[outcome.query.query_id] = site
                outcome.extras["site"] = site
                outcomes.append(outcome)
        if mutated:
            # One merge rebuild for the whole site-local phase — this is
            # where batching beats per-query submission even without
            # concurrency: the O(allocation) merge is amortised over the
            # batch.
            self._rebuild_merged()
        for query in cross:
            outcomes.append(self._plan_one(query))
        ordered = self._reorder(resolved, outcomes)
        return self._record_many(ordered)

    def _plan_groups_process(self, site_groups, time_limit, plan_site):
        """Fan the per-site groups out over the persistent process pool.

        Each worker plans its owned sites' groups on warm replicas and
        ships back sanitized outcomes plus allocation op-diffs; the
        parent replays the ops onto its own shard allocations, so the
        merge that follows sees bit-identical contents to the thread
        path.  A worker answering ``resync`` (fingerprint or structure
        drift) gets a full-state resync and one retry; sites that
        appeared after the fork are planned parent-side.
        """
        self._ensure_pool()
        by_worker: Dict[int, List] = {}
        local: List = []
        for site, group in site_groups.items():
            worker_id = self._site_worker.get(site)
            if worker_id is None:
                local.append((site, group))
            else:
                by_worker.setdefault(worker_id, []).append((site, group))
        planned_by_site: Dict[int, object] = {}

        def adopt(response) -> None:
            for entry in response["groups"]:
                planned_by_site[entry["site"]] = self._adopt_worker_group(entry)

        if by_worker:
            assignments = {
                worker_id: (
                    "plan",
                    self._build_plan_body(worker_id, groups, time_limit),
                )
                for worker_id, groups in by_worker.items()
            }
            retry = {}
            for worker_id, response in self._pool.scatter(assignments).items():
                if response["status"] == "resync":
                    self._resync_worker(worker_id)
                    # After a full-state resync the rebuilt body carries no
                    # deltas and fresh expected fingerprints, so the retry
                    # can only fail on a genuine protocol bug.
                    retry[worker_id] = (
                        "plan",
                        self._build_plan_body(
                            worker_id, by_worker[worker_id], time_limit
                        ),
                    )
                else:
                    adopt(response)
            if retry:
                for worker_id, response in self._pool.scatter(retry).items():
                    if response["status"] != "ok":
                        raise PlanningError(
                            f"federated worker {worker_id} still out of sync "
                            "after a full-state resync "
                            f"({response.get('reason', 'unknown')})"
                        )
                    adopt(response)
        for site, group in local:
            planned_by_site[site] = plan_site(site, group)
        return [planned_by_site[site] for site in site_groups]

    # --------------------------------------------------------------- lifecycle
    def retire(self, query_id: int) -> bool:
        """Retire through the owning shard (or the coordinator)."""
        owner_key = self._owner.get(query_id)
        if owner_key is None:
            return False
        planner = (
            self._coordinator
            if owner_key == _COORDINATOR
            else self._shards[owner_key]
        )
        removed = planner.retire(query_id)
        if removed and owner_key != _COORDINATOR:
            self._queue_shard_event(("retire", owner_key, query_id), owner_key)
        self._owner.pop(query_id, None)
        self._rebuild_merged()
        return removed

    def on_topology_change(self) -> List[int]:
        """Forward topology changes to every shard and the coordinator.

        Also tracks topology *growth*: views re-snapshot their site's host
        membership and newly appeared sites get their own shard, so joined
        capacity becomes plannable.
        """
        self._refresh_shards()
        self._remainder_cache = None
        self._queue_shard_event(("topology", None, None))
        dropped: List[int] = []
        for planner in self._inner_planners():
            dropped.extend(planner.on_topology_change())
        self._rebuild_merged()
        return dropped

    def reset(self) -> None:
        """Reset every inner planner and start from an empty merge."""
        with self._stats_guard():
            self.outcomes.clear()
        for planner in self._inner_planners():
            planner.reset()
        self._owner.clear()
        self._remainder_cache = None
        self._merged = Allocation(self.catalog)
        self._update_foreign(None)
        # Tear the pool down; the next batch re-forks with fresh replicas.
        self.close()
        self._worker_sites = {}
        self._site_worker = {}
        self._worker_events = {}
        self._worker_cursor = {}
        self._stale_sites = set()
        self._foreign_shipped = {}

    # ------------------------------------------------------------------- stats
    @property
    def reuse_stats(self) -> Dict[str, int]:
        """Model-reuse hits/misses summed over the shards + coordinator."""
        totals = {"hits": 0, "misses": 0, "basis_hits": 0, "basis_misses": 0}
        for planner in self._inner_planners():
            stats = getattr(planner, "reuse_stats", None)
            if stats:
                for key in totals:
                    totals[key] += stats.get(key, 0)
        if self._pool is not None:
            # Worker replicas solve the batches (parent shards only the
            # odd single submit), so their reuse counters are additive,
            # never double-counted.
            for response in self._pool.broadcast("stats"):
                for key in totals:
                    totals[key] += response["reuse"].get(key, 0)
        return totals

    def shard_stats(self) -> Dict[Union[int, str], Dict[str, int]]:
        """Per-shard submission/admission counts (sites plus coordinator)."""
        stats: Dict[Union[int, str], Dict[str, int]] = {}
        for site in sorted(self._shards):
            shard = self._shards[site]
            stats[site] = {
                "submitted": shard.num_submitted,
                "admitted": sum(1 for o in shard.outcomes if o.admitted),
            }
        stats[_COORDINATOR] = {
            "submitted": self._coordinator.num_submitted,
            "admitted": sum(1 for o in self._coordinator.outcomes if o.admitted),
        }
        return stats

    def __repr__(self) -> str:
        return (
            f"FederatedPlanner(inner={self.inner_name!r}, "
            f"sites={sorted(self._shards)}, "
            f"admitted={self.num_admitted}/{self.num_submitted})"
        )
