"""Worker-side protocol of the federated process execution backend.

The federated planner's process backend keeps one long-lived forked
worker per slot (:class:`~repro.utils.pool.PersistentProcessPool`), each
holding *warm shard replicas* — the per-site inner planners, their
:class:`~repro.core.model_builder.ModelReuseCache`/basis stores and
:class:`~repro.dsps.catalog.SiteCatalogView`\\ s — inherited by fork at
pool creation and kept in sync from then on with compact picklable
deltas.  The wire format is the delta, not the state:

* **registrations** — a suffix of the catalog's registration log
  (:attr:`SystemCatalog.registration_log`); replaying it reproduces the
  parent's query/stream/operator ids exactly, because registration is a
  deterministic function of catalog state and item order;
* **dynamic catalog state** — host liveness, site partitions and WAN
  drift (:meth:`SystemCatalog.sync_state`), everything the churn
  harness mutates mid-run;
* **events** — replay-ready retire/drop/topology operations targeted at
  the worker's shards;
* **allocation ops** — per-collection set-difference operations
  (:func:`diff_allocation_ops`) shipped *back* from worker to parent,
  so the coordinator merges process-backend results exactly as it
  merges thread-backend results.

Every plan request carries the parent's expected shard fingerprint (the
O(1) rolling :meth:`Allocation.fingerprint`) and the catalog's
structural signature; any mismatch makes the worker answer
``resync`` instead of planning, and the parent falls back to a
full-state resync (pickled catalog + allocation dumps) before retrying.
Divergence can therefore cost a round-trip, never correctness.

Allocations themselves are deliberately unpicklable (their observed
containers refuse pickling to catch accidental cross-process sharing),
so the full-state fallback ships plain-tuple dumps
(:func:`dump_allocation` / :func:`load_allocation`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dsps.allocation import Allocation

__all__ = [
    "dump_allocation",
    "load_allocation",
    "snapshot_allocation",
    "diff_allocation_ops",
    "apply_allocation_ops",
    "sanitize_outcomes",
    "make_shard_worker",
]


# ------------------------------------------------------------ wire helpers
def dump_allocation(alloc: Allocation) -> Dict[str, Any]:
    """Flatten an allocation into plain picklable tuples (full-state sync)."""
    return {
        "flows": sorted(alloc.flows),
        "available": sorted(alloc.available),
        "placements": sorted(alloc.placements),
        "admitted": sorted(alloc.admitted_queries),
        "provided": sorted(alloc.provided.items()),
    }


def load_allocation(catalog, dump: Mapping[str, Any]) -> Allocation:
    """Rebuild an allocation over ``catalog`` from :func:`dump_allocation`.

    Insertion runs through the observed containers, so the rolling
    fingerprint and the touched-state accumulators come out exactly as
    if the contents had been planned locally.
    """
    alloc = Allocation(catalog)
    for stream_id, host in dump["provided"]:
        alloc.provided[stream_id] = host
    for key in dump["flows"]:
        alloc.flows.add(tuple(key))
    for key in dump["available"]:
        alloc.available.add(tuple(key))
    for key in dump["placements"]:
        alloc.placements.add(tuple(key))
    for query_id in dump["admitted"]:
        alloc.admitted_queries.add(query_id)
    return alloc


def snapshot_allocation(alloc: Allocation) -> Dict[str, Any]:
    """Plain-container snapshot of an allocation's contents (for diffing)."""
    return {
        "flows": set(alloc.flows),
        "available": set(alloc.available),
        "placements": set(alloc.placements),
        "admitted": set(alloc.admitted_queries),
        "provided": dict(alloc.provided),
    }


_SET_FIELDS = ("flows", "available", "placements", "admitted")


def diff_allocation_ops(
    before: Mapping[str, Any], alloc: Allocation
) -> Dict[str, Any]:
    """Replay-ready ops taking ``before`` to ``alloc``'s current contents.

    Sorted per-collection add/remove lists plus provided-stream
    set/unset pairs — compact (proportional to the change, not the
    state) and order-independent to apply.
    """
    after = snapshot_allocation(alloc)
    ops: Dict[str, Any] = {}
    for name in _SET_FIELDS:
        ops[name + "_add"] = sorted(after[name] - before[name])
        ops[name + "_del"] = sorted(before[name] - after[name])
    ops["provided_set"] = sorted(
        (stream_id, host)
        for stream_id, host in after["provided"].items()
        if before["provided"].get(stream_id) != host
    )
    ops["provided_del"] = sorted(
        stream_id
        for stream_id in before["provided"]
        if stream_id not in after["provided"]
    )
    return ops


def apply_allocation_ops(alloc: Allocation, ops: Mapping[str, Any]) -> None:
    """Apply :func:`diff_allocation_ops` output to ``alloc`` in place."""
    for stream_id in ops["provided_del"]:
        del alloc.provided[stream_id]
    for stream_id, host in ops["provided_set"]:
        alloc.provided[stream_id] = host
    collections = {
        "flows": alloc.flows,
        "available": alloc.available,
        "placements": alloc.placements,
        "admitted": alloc.admitted_queries,
    }
    for name, collection in collections.items():
        for key in ops[name + "_del"]:
            collection.discard(tuple(key) if isinstance(key, tuple) else key)
        for key in ops[name + "_add"]:
            collection.add(tuple(key) if isinstance(key, tuple) else key)


def sanitize_outcomes(outcomes: Sequence) -> List:
    """Strip unpicklable extras from a batch of outcomes, in place.

    ``solve_result`` holds live :class:`~repro.milp.expression.Variable`
    references into the worker's model cache — meaningless (and heavy)
    across the process boundary.  The shared ``solver_counters`` dicts
    are kept: the whole response is pickled in one call, so their
    identity-based deduplication survives the trip.
    """
    for outcome in outcomes:
        if "solve_result" in outcome.extras:
            outcome.extras["solve_result"] = None
    return list(outcomes)


# ------------------------------------------------------------- worker state
class _ShardWorker:
    """The child-process half: warm shard replicas plus the sync cursor."""

    def __init__(self, payload: Mapping[str, Any]) -> None:
        self.catalog = payload["catalog"]
        self.views = dict(payload["views"])
        self.shards = dict(payload["shards"])
        self.inner_cls = payload["inner_cls"]
        self.inner_name = payload["inner_name"]
        self.config = payload["config"]
        self.cursor = payload["cursor"]

    def __call__(self, tag: str, body: Any) -> Any:
        return getattr(self, "_op_" + tag)(body)

    # ------------------------------------------------------------- sync ops
    def _apply_registrations(self, items: Sequence) -> None:
        self.catalog.replay_registrations(items)
        self.cursor += len(items)

    def _apply_events(self, events: Sequence[Tuple]) -> None:
        for kind, site, extra in events:
            if kind == "retire":
                self.shards[site].retire(extra)
            elif kind == "drop":
                shard = self.shards[site]
                stale = [
                    qid
                    for qid in extra
                    if qid in shard.allocation.admitted_queries
                ]
                if stale:
                    shard.allocation = shard.allocation.without_queries(stale)
            elif kind == "topology":
                for view in self.views.values():
                    view.refresh()
                for shard in self.shards.values():
                    shard.on_topology_change()
            else:  # pragma: no cover - protocol bug guard
                raise ValueError(f"unknown shard event kind {kind!r}")

    def _apply_foreign(self, foreign: Mapping[int, Optional[Mapping]]) -> None:
        for site, dump in foreign.items():
            view = self.views.get(site)
            if view is None:
                continue
            view.set_foreign_allocation(
                None if dump is None else load_allocation(self.catalog, dump)
            )

    # ------------------------------------------------------------- handlers
    def _op_plan(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        if self.catalog.structure_signature() != body["struct_sig"]:
            return {"status": "resync", "reason": "structure"}
        self._apply_registrations(body["registrations"])
        self.catalog.apply_sync_state(body["sync"])
        self._apply_events(body["events"])
        self._apply_foreign(body["foreign"])
        for group in body["groups"]:
            shard = self.shards[group["site"]]
            if group["alloc"] is not None:
                shard.allocation = load_allocation(self.catalog, group["alloc"])
            if shard.allocation.fingerprint() != group["expect_fp"]:
                return {"status": "resync", "reason": "fingerprint"}
        results = []
        for group in body["groups"]:
            shard = self.shards[group["site"]]
            before = shard.allocation
            before_snapshot = snapshot_allocation(before)
            before_fp = before.fingerprint()
            queries = [self.catalog.get_query(q) for q in group["query_ids"]]
            outcomes = shard.submit_batch(
                queries, time_limit=body["time_limit"]
            )
            changed = (
                shard.allocation is not before
                or shard.allocation.fingerprint() != before_fp
            )
            results.append(
                {
                    "site": group["site"],
                    "outcomes": sanitize_outcomes(outcomes),
                    "ops": diff_allocation_ops(
                        before_snapshot, shard.allocation
                    ),
                    "post_fp": shard.allocation.fingerprint(),
                    "changed": changed,
                }
            )
        return {"status": "ok", "groups": results}

    def _op_resync(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Full-state fallback: adopt the parent's catalog and allocations."""
        if body["catalog"] is not None:
            self.catalog = body["catalog"]
        self.cursor = body["cursor"]
        from repro.dsps.catalog import SiteCatalogView

        self.views = {}
        self.shards = {}
        for site, dump in body["sites"].items():
            view = SiteCatalogView(self.catalog, site)
            shard = self.inner_cls(view, config=self.config)
            shard.name = f"{self.inner_name}@site{site}"
            shard.allocation = load_allocation(self.catalog, dump)
            self.views[site] = view
            self.shards[site] = shard
        self._apply_foreign(body["foreign"])
        return {"status": "ok"}

    def _op_stats(self, body: Any) -> Dict[str, Any]:
        totals = {"hits": 0, "misses": 0, "basis_hits": 0, "basis_misses": 0}
        for shard in self.shards.values():
            stats = getattr(shard, "reuse_stats", None)
            if stats:
                for key in totals:
                    totals[key] += stats.get(key, 0)
        return {"reuse": totals, "cursor": self.cursor}


def make_shard_worker(payload: Mapping[str, Any]) -> _ShardWorker:
    """Top-level initializer for :class:`PersistentProcessPool` workers."""
    return _ShardWorker(payload)
