"""The optimistic upper bound of §V-A.

All hosts are merged into a single "aggregate host" that owns every base
stream and the sum of all CPU resources; network constraints vanish.  The
number of queries this aggregate host can satisfy upper-bounds what any real
planner can achieve, because any feasible distributed allocation can be
collapsed onto the aggregate host.

With a single host and no network, the optimisation model collapses to a
covering problem that admits the analytical greedy solution implemented
here: process queries in submission order, pay only for the operators whose
output streams are not yet produced (perfect reuse), and admit a query while
the aggregate CPU budget allows it.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Union

from repro.api.base import (
    Planner,
    PlannerConfig,
    PlanningOutcome,
    deprecated_outcome_getattr,
)
from repro.api.registry import register_planner
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanningError
from repro.utils.timer import Stopwatch

__all__ = ["OptimisticBoundPlanner"]


__getattr__ = deprecated_outcome_getattr(__name__, ("OptimisticOutcome",))


@register_planner("optimistic", aliases=("optimistic_bound",))
class OptimisticBoundPlanner(Planner):
    """Upper bound on the number of satisfiable queries."""

    def __init__(
        self, catalog: SystemCatalog, config: Optional[PlannerConfig] = None
    ) -> None:
        super().__init__(catalog, config)
        self.cpu_capacity = catalog.total_cpu_capacity()
        self.cpu_used = 0.0
        self._produced_streams: Set[int] = set()
        self._admitted_results: Set[int] = set()
        self._admitted_order: List[int] = []
        #: Result stream of each entry of ``_admitted_order`` (kept parallel
        #: so retirement can detect free riders without catalog lookups).
        self._admitted_streams: List[int] = []

    def reset(self) -> None:
        """Forget all outcomes and release the aggregate CPU budget."""
        super().reset()
        self.cpu_used = 0.0
        self._produced_streams.clear()
        self._admitted_results.clear()
        self._admitted_order.clear()
        self._admitted_streams.clear()

    # ------------------------------------------------------------------ lifecycle
    @property
    def active_queries(self) -> FrozenSet[int]:
        """Ids of the queries currently counted against the aggregate budget."""
        return frozenset(self._admitted_order)

    def retire(self, query_id: int) -> bool:
        """Remove an admitted query and replay the survivors from scratch.

        The bound's state (produced streams, consumed CPU) is the result of
        order-dependent greedy accounting, so the faithful way to release
        exactly what the departing query paid for — and nothing a surviving
        query still relies on — is to replay the surviving queries in their
        original admission order.  The replayed state is identical to
        submitting only the survivors, which is the invariant the
        property-based churn tests pin down.

        Free riders skip the replay entirely: a query whose result stream
        was already admitted by an *earlier* entry paid nothing and marked
        nothing as produced, so a replay without it would reproduce the
        current accounting step for step — removal from the admission order
        is the whole retirement.  Under result-stream sharing (the Zipf
        workloads) this turns most retirements into O(n) list surgery
        instead of a full greedy re-plan of every survivor.
        """
        try:
            index = self._admitted_order.index(query_id)
        except ValueError:
            return False
        stream = self._admitted_streams[index]
        if stream in self._admitted_streams[:index]:
            del self._admitted_order[index]
            del self._admitted_streams[index]
            return True
        survivors = [qid for qid in self._admitted_order if qid != query_id]
        self._replay(survivors)
        return True

    def on_topology_change(self) -> List[int]:
        """Re-read the aggregate capacity; drop queries that no longer fit.

        A host failure shrinks the aggregate host.  Replaying the admitted
        queries in order under the new budget keeps the earliest-admitted
        prefix that still fits (mirroring the engine's eviction of concrete
        placements) and reports the dropped ids.
        """
        self.cpu_capacity = self.catalog.total_cpu_capacity()
        return self._replay(list(self._admitted_order))

    def _replay(self, query_ids: List[int]) -> List[int]:
        """Rebuild the aggregate accounting by re-admitting ``query_ids`` in
        order; returns the ids that no longer fit the budget."""
        self.cpu_used = 0.0
        self._produced_streams.clear()
        self._admitted_results.clear()
        self._admitted_order = []
        self._admitted_streams = []
        dropped: List[int] = []
        for query_id in query_ids:
            query = self.catalog.get_query(query_id)
            if query.result_stream in self._admitted_results:
                self._admitted_order.append(query_id)
                self._admitted_streams.append(query.result_stream)
                continue
            marginal_cpu, operators = self._cheapest_plan_cost(query)
            if self.cpu_used + marginal_cpu > self.cpu_capacity + 1e-9:
                dropped.append(query_id)
                continue
            self.cpu_used += marginal_cpu
            self._admitted_results.add(query.result_stream)
            for operator_id in operators:
                operator = self.catalog.get_operator(operator_id)
                self._produced_streams.add(operator.output_stream)
            self._admitted_order.append(query_id)
            self._admitted_streams.append(query.result_stream)
        return dropped

    def _cheapest_plan_cost(self, query: Query) -> tuple:
        """CPU cost and operator set of the cheapest plan with full reuse.

        For the canonical decomposition there is exactly one plan; for the
        exhaustive decomposition we greedily pick, for each needed stream,
        the cheapest producer whose inputs are recursively obtainable.
        Streams already produced for earlier queries cost nothing.
        """
        produced = self._produced_streams

        memo = {}

        def cost_of_stream(stream_id: int, visiting: frozenset) -> Optional[tuple]:
            stream = self.catalog.streams.get(stream_id)
            if stream.is_base or stream_id in produced:
                return (0.0, frozenset())
            if stream_id in memo:
                return memo[stream_id]
            if stream_id in visiting:
                return None
            best: Optional[tuple] = None
            for operator in self.catalog.producers_of(stream_id):
                if operator.operator_id not in query.candidate_operators:
                    continue
                total = operator.cpu_cost
                operators = {operator.operator_id}
                feasible = True
                for input_id in operator.input_streams:
                    sub = cost_of_stream(input_id, visiting | {stream_id})
                    if sub is None:
                        feasible = False
                        break
                    total += sub[0]
                    operators |= set(sub[1])
                if feasible and (best is None or total < best[0]):
                    best = (total, frozenset(operators))
            memo[stream_id] = best
            return best

        result = cost_of_stream(query.result_stream, frozenset())
        if result is None:
            raise PlanningError(
                f"query {query.query_id} has no producible plan in the catalog"
            )
        return result

    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Decide admission of one query under the aggregate-host relaxation."""
        watch = Stopwatch()
        query = self._resolve_query(query)
        if query.result_stream in self._admitted_results:
            if query.query_id not in self._admitted_order:
                self._admitted_order.append(query.query_id)
                self._admitted_streams.append(query.result_stream)
            outcome = PlanningOutcome(
                query=query,
                admitted=True,
                duplicate=True,
                planning_time=watch.elapsed(),
                extras={"marginal_cpu": 0.0},
            )
            return self._record(outcome)
        marginal_cpu, operators = self._cheapest_plan_cost(query)
        admitted = self.cpu_used + marginal_cpu <= self.cpu_capacity + 1e-9
        if admitted:
            self.cpu_used += marginal_cpu
            self._admitted_results.add(query.result_stream)
            self._admitted_order.append(query.query_id)
            self._admitted_streams.append(query.result_stream)
            # Mark every intermediate stream of the chosen plan as produced.
            for operator_id in operators:
                operator = self.catalog.get_operator(operator_id)
                self._produced_streams.add(operator.output_stream)
        outcome = PlanningOutcome(
            query=query,
            admitted=admitted,
            planning_time=watch.elapsed(),
            objective_value=-marginal_cpu,
            rejection_reason="" if admitted else "insufficient-aggregate-cpu",
            extras={"marginal_cpu": marginal_cpu},
        )
        return self._record(outcome)
