"""The optimistic upper bound of §V-A.

All hosts are merged into a single "aggregate host" that owns every base
stream and the sum of all CPU resources; network constraints vanish.  The
number of queries this aggregate host can satisfy upper-bounds what any real
planner can achieve, because any feasible distributed allocation can be
collapsed onto the aggregate host.

With a single host and no network, the optimisation model collapses to a
covering problem that admits the analytical greedy solution implemented
here: process queries in submission order, pay only for the operators whose
output streams are not yet produced (perfect reuse), and admit a query while
the aggregate CPU budget allows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Union

from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanningError


@dataclass
class OptimisticOutcome:
    """Admission decision of the optimistic bound for one query."""

    query: Query
    admitted: bool
    marginal_cpu: float


class OptimisticBoundPlanner:
    """Upper bound on the number of satisfiable queries."""

    name = "optimistic"

    def __init__(self, catalog: SystemCatalog) -> None:
        self.catalog = catalog
        self.cpu_capacity = catalog.total_cpu_capacity()
        self.cpu_used = 0.0
        self._produced_streams: Set[int] = set()
        self.outcomes: List[OptimisticOutcome] = []
        self._admitted_results: Set[int] = set()

    def _resolve(self, query: Union[Query, QueryWorkloadItem]) -> Query:
        if isinstance(query, QueryWorkloadItem):
            return self.catalog.register_query(query)
        if isinstance(query, Query):
            return query
        raise PlanningError(
            f"submit expects a Query or QueryWorkloadItem, got {type(query).__name__}"
        )

    def _cheapest_plan_cost(self, query: Query) -> tuple:
        """CPU cost and operator set of the cheapest plan with full reuse.

        For the canonical decomposition there is exactly one plan; for the
        exhaustive decomposition we greedily pick, for each needed stream,
        the cheapest producer whose inputs are recursively obtainable.
        Streams already produced for earlier queries cost nothing.
        """
        produced = self._produced_streams

        memo = {}

        def cost_of_stream(stream_id: int, visiting: frozenset) -> Optional[tuple]:
            stream = self.catalog.streams.get(stream_id)
            if stream.is_base or stream_id in produced:
                return (0.0, frozenset())
            if stream_id in memo:
                return memo[stream_id]
            if stream_id in visiting:
                return None
            best: Optional[tuple] = None
            for operator in self.catalog.producers_of(stream_id):
                if operator.operator_id not in query.candidate_operators:
                    continue
                total = operator.cpu_cost
                operators = {operator.operator_id}
                feasible = True
                for input_id in operator.input_streams:
                    sub = cost_of_stream(input_id, visiting | {stream_id})
                    if sub is None:
                        feasible = False
                        break
                    total += sub[0]
                    operators |= set(sub[1])
                if feasible and (best is None or total < best[0]):
                    best = (total, frozenset(operators))
            memo[stream_id] = best
            return best

        result = cost_of_stream(query.result_stream, frozenset())
        if result is None:
            raise PlanningError(
                f"query {query.query_id} has no producible plan in the catalog"
            )
        return result

    def submit(self, query: Union[Query, QueryWorkloadItem]) -> OptimisticOutcome:
        """Decide admission of one query under the aggregate-host relaxation."""
        query = self._resolve(query)
        if query.result_stream in self._admitted_results:
            outcome = OptimisticOutcome(query=query, admitted=True, marginal_cpu=0.0)
            self.outcomes.append(outcome)
            return outcome
        marginal_cpu, operators = self._cheapest_plan_cost(query)
        admitted = self.cpu_used + marginal_cpu <= self.cpu_capacity + 1e-9
        if admitted:
            self.cpu_used += marginal_cpu
            self._admitted_results.add(query.result_stream)
            # Mark every intermediate stream of the chosen plan as produced.
            for operator_id in operators:
                operator = self.catalog.get_operator(operator_id)
                self._produced_streams.add(operator.output_stream)
        outcome = OptimisticOutcome(query=query, admitted=admitted, marginal_cpu=marginal_cpu)
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------- statistics
    @property
    def num_admitted(self) -> int:
        """Number of queries admitted so far."""
        return sum(1 for o in self.outcomes if o.admitted)

    @property
    def num_submitted(self) -> int:
        """Number of queries submitted so far."""
        return len(self.outcomes)
