"""The optimistic upper bound of §V-A.

All hosts are merged into a single "aggregate host" that owns every base
stream and the sum of all CPU resources; network constraints vanish.  The
number of queries this aggregate host can satisfy upper-bounds what any real
planner can achieve, because any feasible distributed allocation can be
collapsed onto the aggregate host.

With a single host and no network, the optimisation model collapses to a
covering problem that admits the analytical greedy solution implemented
here: process queries in submission order, pay only for the operators whose
output streams are not yet produced (perfect reuse), and admit a query while
the aggregate CPU budget allows it.
"""

from __future__ import annotations

from typing import Optional, Set, Union

from repro.api.base import (
    Planner,
    PlannerConfig,
    PlanningOutcome,
    deprecated_outcome_getattr,
)
from repro.api.registry import register_planner
from repro.dsps.catalog import SystemCatalog
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanningError
from repro.utils.timer import Stopwatch

__all__ = ["OptimisticBoundPlanner"]


__getattr__ = deprecated_outcome_getattr(__name__, ("OptimisticOutcome",))


@register_planner("optimistic", aliases=("optimistic_bound",))
class OptimisticBoundPlanner(Planner):
    """Upper bound on the number of satisfiable queries."""

    def __init__(
        self, catalog: SystemCatalog, config: Optional[PlannerConfig] = None
    ) -> None:
        super().__init__(catalog, config)
        self.cpu_capacity = catalog.total_cpu_capacity()
        self.cpu_used = 0.0
        self._produced_streams: Set[int] = set()
        self._admitted_results: Set[int] = set()

    def reset(self) -> None:
        """Forget all outcomes and release the aggregate CPU budget."""
        super().reset()
        self.cpu_used = 0.0
        self._produced_streams.clear()
        self._admitted_results.clear()

    def _cheapest_plan_cost(self, query: Query) -> tuple:
        """CPU cost and operator set of the cheapest plan with full reuse.

        For the canonical decomposition there is exactly one plan; for the
        exhaustive decomposition we greedily pick, for each needed stream,
        the cheapest producer whose inputs are recursively obtainable.
        Streams already produced for earlier queries cost nothing.
        """
        produced = self._produced_streams

        memo = {}

        def cost_of_stream(stream_id: int, visiting: frozenset) -> Optional[tuple]:
            stream = self.catalog.streams.get(stream_id)
            if stream.is_base or stream_id in produced:
                return (0.0, frozenset())
            if stream_id in memo:
                return memo[stream_id]
            if stream_id in visiting:
                return None
            best: Optional[tuple] = None
            for operator in self.catalog.producers_of(stream_id):
                if operator.operator_id not in query.candidate_operators:
                    continue
                total = operator.cpu_cost
                operators = {operator.operator_id}
                feasible = True
                for input_id in operator.input_streams:
                    sub = cost_of_stream(input_id, visiting | {stream_id})
                    if sub is None:
                        feasible = False
                        break
                    total += sub[0]
                    operators |= set(sub[1])
                if feasible and (best is None or total < best[0]):
                    best = (total, frozenset(operators))
            memo[stream_id] = best
            return best

        result = cost_of_stream(query.result_stream, frozenset())
        if result is None:
            raise PlanningError(
                f"query {query.query_id} has no producible plan in the catalog"
            )
        return result

    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Decide admission of one query under the aggregate-host relaxation."""
        watch = Stopwatch()
        query = self._resolve_query(query)
        if query.result_stream in self._admitted_results:
            outcome = PlanningOutcome(
                query=query,
                admitted=True,
                duplicate=True,
                planning_time=watch.elapsed(),
                extras={"marginal_cpu": 0.0},
            )
            return self._record(outcome)
        marginal_cpu, operators = self._cheapest_plan_cost(query)
        admitted = self.cpu_used + marginal_cpu <= self.cpu_capacity + 1e-9
        if admitted:
            self.cpu_used += marginal_cpu
            self._admitted_results.add(query.result_stream)
            # Mark every intermediate stream of the chosen plan as produced.
            for operator_id in operators:
                operator = self.catalog.get_operator(operator_id)
                self._produced_streams.add(operator.output_stream)
        outcome = PlanningOutcome(
            query=query,
            admitted=admitted,
            planning_time=watch.elapsed(),
            objective_value=-marginal_cpu,
            rejection_reason="" if admitted else "insufficient-aggregate-cpu",
            extras={"marginal_cpu": marginal_cpu},
        )
        return self._record(outcome)
