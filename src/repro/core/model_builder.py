"""Build the reduced SQPR MILP for one planning round.

This module translates §III-B of the paper into a
:class:`repro.milp.model.Model`:

* decision variables ``d`` (provide stream to clients), ``x`` (ship stream
  between hosts), ``y`` (stream available at host), ``z`` (operator placed on
  host) and ``p`` (acyclicity potentials);
* demand constraints (III.4), availability constraints (III.5), resource
  constraints (III.6) and acyclicity constraints (III.7);
* the weighted objective λ1·O1 − λ2·O2 − λ3·O3 − λ4·O4, with O4 linearised
  through an auxiliary "maximum load" variable;
* the keep-admitted constraint (IV.9) for already-provided streams in scope.

Only variables for streams/operators inside the :class:`ReplanScope` are
created — this *is* the paper's problem-reduction step (§IV-A): variables for
irrelevant streams are conceptually fixed to their previous values, which we
realise by not instantiating them and instead subtracting their resource
usage from the capacities ("background usage").

Two planning modes are supported:

``replan`` (paper behaviour)
    Structures involving scope streams/operators may be torn down and
    rebuilt; their current resource usage is excluded from the background.

``frozen`` (ablation: greedy reuse without re-planning)
    Existing structures are immutable.  Their usage stays in the background,
    already-available scope streams earn an availability credit in (III.5a)
    and already-placed scope operators earn a generation credit instead of a
    ``z`` variable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.reduction import ReplanScope
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SystemCatalog
from repro.milp import LinExpr, Model, ObjectiveSense, Variable, VarType, lin_sum
from repro.exceptions import ModelError


@dataclass
class SqprModel:
    """The reduced MILP plus the bookkeeping needed to decode its solution."""

    model: Model
    scope: ReplanScope
    frozen_mode: bool
    d_vars: Dict[Tuple[int, int], Variable] = field(default_factory=dict)  # (host, stream)
    x_vars: Dict[Tuple[int, int, int], Variable] = field(default_factory=dict)  # (src, dst, stream)
    y_vars: Dict[Tuple[int, int], Variable] = field(default_factory=dict)  # (host, stream)
    z_vars: Dict[Tuple[int, int], Variable] = field(default_factory=dict)  # (host, operator)
    requested_streams: FrozenSet[int] = frozenset()
    new_result_streams: FrozenSet[int] = frozenset()
    placed_operator_credit: Set[Tuple[int, int]] = field(default_factory=set)
    availability_credit: Set[Tuple[int, int]] = field(default_factory=set)
    teardown_streams: FrozenSet[int] = frozenset()
    teardown_operators: FrozenSet[int] = frozenset()

    @property
    def num_binary_variables(self) -> int:
        """Number of binary variables in the reduced model."""
        return self.model.num_integer_variables


def build_model(
    catalog: SystemCatalog,
    allocation: Allocation,
    scope: ReplanScope,
    weights: ObjectiveWeights,
    frozen_mode: bool = False,
    allow_relay: bool = True,
    max_relay_hops: int = 3,
    force_admission: bool = False,
) -> SqprModel:
    """Build the reduced MILP for ``scope`` on top of ``allocation``.

    Parameters
    ----------
    frozen_mode:
        Use the "frozen" ablation mode (see module docstring).
    allow_relay:
        When false, a host may only ship a stream it generates locally
        (disables the relay operator µ, reproducing the Fig. 2 discussion).
    max_relay_hops:
        Bound on the length of relay chains.  The paper's potentials allow
        chains up to H-1 hops with a big-M of H+2; long chains are never
        useful in a flat data-centre network, and a small bound makes the
        big-M acyclicity constraints (III.7) far tighter for the solver.
    force_admission:
        Require every new result stream to be provided (Σ_h d = 1 instead of
        ≤ 1).  With λ1 chosen "sufficiently large" the objective is already
        lexicographic in admissions; turning the preference into a hard
        constraint turns the solve into a feasibility search, which is what
        the re-planning fallback stage needs under tight timeouts.
    """
    hosts = catalog.host_ids
    if not hosts:
        raise ModelError("cannot plan on a catalog with no hosts")
    scope_streams = sorted(scope.streams)
    scope_operators = sorted(scope.operators)
    new_results = frozenset(
        catalog.get_query(qid).result_stream for qid in scope.new_queries
    )

    model = Model("sqpr", sense=ObjectiveSense.MAXIMIZE)

    # ----------------------------------------------------- protection & teardown
    # Streams/operators that also belong to admitted queries *outside* the
    # re-planning set must not be torn down: those queries keep running
    # unchanged, so their structures act as immutable background that the new
    # plan may reuse (availability credits) but not move.  In frozen mode
    # everything existing is protected.
    if frozen_mode:
        protected_streams: Set[int] = set(scope_streams)
        protected_operators: Set[int] = set(scope_operators)
    else:
        # A scope stream/operator is protected iff some *untouched* admitted
        # query (outside the replanned and new sets) lists it among its
        # candidates.  The allocation's query-membership index answers that
        # per entity: a candidate user set larger than the excluded set
        # must contain an untouched query (the excluded ids are the only
        # ones that could be discounted); otherwise the handful of users
        # is checked directly.  O(|scope| × |excluded|) instead of a loop over
        # every resident query.
        protected_streams = set()
        protected_operators = set()
        excluded = set(scope.replanned_queries) | set(scope.new_queries)
        for stream_id in scope_streams:
            users = allocation.queries_using_stream(stream_id)
            if len(users) > len(excluded) or any(
                qid not in excluded for qid in users
            ):
                protected_streams.add(stream_id)
        for operator_id in scope_operators:
            users = allocation.queries_using_operator(operator_id)
            if len(users) > len(excluded) or any(
                qid not in excluded for qid in users
            ):
                protected_operators.add(operator_id)
    teardown_streams = set(scope_streams) - protected_streams
    teardown_operators = set(scope_operators) - protected_operators

    # Client deliveries (d) are only re-decided for new result streams and for
    # kept streams that are actually being torn down; protected kept streams
    # simply stay with their current provider.
    requested_for_d = set(new_results) | (set(scope.keep_provided) & teardown_streams)

    built = SqprModel(
        model=model,
        scope=scope,
        frozen_mode=frozen_mode,
        requested_streams=frozenset(requested_for_d),
        new_result_streams=new_results,
        teardown_streams=frozenset(teardown_streams),
        teardown_operators=frozenset(teardown_operators),
    )

    # Background usage: resources consumed by structures the model does not
    # control.  Only torn-down structures are excluded; protected and
    # out-of-scope structures keep consuming their resources.
    exclude_streams: Set[int] = set(teardown_streams)
    exclude_operators: Set[int] = set(teardown_operators)

    # ----------------------------------------------------------------- variables
    for s in scope_streams:
        for h in hosts:
            built.y_vars[(h, s)] = model.add_binary(f"y[{h},{s}]")
    for s in sorted(requested_for_d):
        for h in hosts:
            built.d_vars[(h, s)] = model.add_binary(f"d[{h},{s}]")
    for s in scope_streams:
        for h in hosts:
            for m in hosts:
                if h != m:
                    built.x_vars[(h, m, s)] = model.add_binary(f"x[{h},{m},{s}]")
    for o in scope_operators:
        for h in hosts:
            if o in protected_operators and allocation.has_placement(h, o):
                # Already running here and immutable: credit its output
                # availability instead of modelling it.
                built.placed_operator_credit.add((h, o))
                continue
            built.z_vars[(h, o)] = model.add_binary(f"z[{h},{o}]")
    # Acyclicity potentials.  The potential range caps the length of relay
    # chains; big_m only needs to dominate the largest possible potential
    # difference plus one.
    num_hosts = len(hosts)
    potential_cap = min(max(1, max_relay_hops), num_hosts + 1)
    big_m = potential_cap + 2
    p_vars: Dict[Tuple[int, int], Variable] = {}
    for s in scope_streams:
        for h in hosts:
            p_vars[(h, s)] = model.add_continuous(f"p[{h},{s}]", 0.0, potential_cap)
    # Linearised O4 (maximum CPU load over hosts).
    max_cpu_capacity = max(catalog.hosts.get(h).cpu_capacity for h in hosts)
    load_var = model.add_continuous("max_load", 0.0, max_cpu_capacity * 10.0 + 1.0)

    # Availability credit: protected scope streams already available at a host
    # through immutable structures stay available there.  The stream→hosts
    # index makes this O(|protected| × degree) instead of a full scan of
    # every availability entry in the system.
    for s in protected_streams:
        for h in allocation.hosts_with_stream(s):
            built.availability_credit.add((h, s))

    # --------------------------------------------------------- demand constraints
    for s in sorted(requested_for_d):
        for h in hosts:
            model.add_constr(
                built.d_vars[(h, s)] <= built.y_vars[(h, s)],
                name=f"demand_avail[{h},{s}]",
            )
        total_d = lin_sum(built.d_vars[(h, s)] for h in hosts)
        if s in scope.keep_provided:
            # (IV.9): already admitted queries may move but not be dropped.
            model.add_constr(total_d == 1, name=f"keep_admitted[{s}]")
        elif force_admission and s in new_results:
            model.add_constr(total_d == 1, name=f"force_admit[{s}]")
        else:
            model.add_constr(total_d <= 1, name=f"demand_once[{s}]")

    # --------------------------------------------------- availability constraints
    producers_in_scope: Dict[int, List[int]] = {}
    for o in scope_operators:
        operator = catalog.get_operator(o)
        producers_in_scope.setdefault(operator.output_stream, []).append(o)

    for s in scope_streams:
        stream = catalog.streams.get(s)
        for m in hosts:
            sources: List = [
                built.x_vars[(h, m, s)] for h in hosts if h != m
            ]
            for o in producers_in_scope.get(s, []):
                var = built.z_vars.get((m, o))
                if var is not None:
                    sources.append(var)
            credit = 0.0
            if stream.is_base and m in catalog.base_hosts_of(s):
                credit += 1.0
            if (m, s) in built.availability_credit:
                credit += 1.0
            for h, o in built.placed_operator_credit:
                if h == m and catalog.get_operator(o).output_stream == s:
                    credit += 1.0
            model.add_constr(
                built.y_vars[(m, s)] <= lin_sum(sources) + credit,
                name=f"avail_source[{m},{s}]",
            )

    for o in scope_operators:
        operator = catalog.get_operator(o)
        for h in hosts:
            z_var = built.z_vars.get((h, o))
            if z_var is None:
                continue
            for s in operator.input_streams:
                if s in scope.streams:
                    model.add_constr(
                        z_var <= built.y_vars[(h, s)],
                        name=f"op_inputs[{h},{o},{s}]",
                    )
                elif not allocation.is_available(h, s):
                    # Input outside the scope and not already present: the
                    # operator cannot run here in this round.
                    model.add_constr(z_var <= 0, name=f"op_inputs_fixed[{h},{o},{s}]")

    for (h, m, s), x_var in built.x_vars.items():
        model.add_constr(x_var <= built.y_vars[(h, s)], name=f"flow_avail[{h},{m},{s}]")
        if not allow_relay:
            # Sender must generate the stream locally (no relaying).
            stream = catalog.streams.get(s)
            generators: List = [
                built.z_vars[(h, o)]
                for o in producers_in_scope.get(s, [])
                if (h, o) in built.z_vars
            ]
            credit = 0.0
            if stream.is_base and h in catalog.base_hosts_of(s):
                credit += 1.0
            if (h, s) in built.availability_credit:
                credit += 1.0
            for hh, o in built.placed_operator_credit:
                if hh == h and catalog.get_operator(o).output_stream == s:
                    credit += 1.0
            model.add_constr(
                x_var <= lin_sum(generators) + credit,
                name=f"no_relay[{h},{m},{s}]",
            )

    # ------------------------------------------------------- resource constraints
    rate = catalog.stream_rate
    for h in hosts:
        for m in hosts:
            if h == m:
                continue
            link_free = catalog.link_capacity(h, m) - allocation.link_used(
                h, m, exclude_streams=exclude_streams
            )
            terms = [rate(s) * built.x_vars[(h, m, s)] for s in scope_streams]
            model.add_constr(lin_sum(terms) <= link_free, name=f"link[{h},{m}]")

    if catalog.num_sites > 1:
        # Shared WAN gateways (federated topologies): every flow crossing
        # one ordered site pair shares that gateway's effective capacity,
        # *across* host pairs — the per-link rows above cannot express
        # this.  Background usage follows the same teardown-exclusion rule
        # as the per-link background.
        site_of = catalog.site_of_host
        wan_rows: Dict[Tuple[int, int], List] = {}
        for (h, m, s), x_var in built.x_vars.items():
            src_site = site_of(h)
            dst_site = site_of(m)
            if src_site != dst_site:
                wan_rows.setdefault((src_site, dst_site), []).append(
                    rate(s) * x_var
                )
        for (src_site, dst_site), terms in sorted(wan_rows.items()):
            effective = catalog.effective_wan_capacity(src_site, dst_site)
            if effective is None:
                continue
            wan_free = effective - allocation.wan_used(
                src_site, dst_site, exclude_streams=exclude_streams
            )
            model.add_constr(
                lin_sum(terms) <= wan_free,
                name=f"wan[{src_site},{dst_site}]",
            )

    for m in hosts:
        bandwidth = catalog.hosts.get(m).bandwidth_capacity
        in_free = bandwidth - allocation.in_bandwidth_used(m, exclude_streams=exclude_streams)
        in_terms = [
            rate(s) * built.x_vars[(h, m, s)]
            for s in scope_streams
            for h in hosts
            if h != m
        ]
        model.add_constr(lin_sum(in_terms) <= in_free, name=f"in_bw[{m}]")

        out_free = bandwidth - allocation.out_bandwidth_used(m, exclude_streams=exclude_streams)
        out_terms: List[LinExpr] = [
            rate(s) * built.x_vars[(m, dst, s)]
            for s in scope_streams
            for dst in hosts
            if dst != m
        ]
        out_terms.extend(
            rate(s) * built.d_vars[(m, s)] for s in sorted(requested_for_d)
        )
        model.add_constr(lin_sum(out_terms) <= out_free, name=f"out_bw[{m}]")

    for h in hosts:
        cpu_background = allocation.cpu_used(h, exclude_operators=exclude_operators)
        cpu_free = catalog.hosts.get(h).cpu_capacity - cpu_background
        cpu_terms = [
            catalog.get_operator(o).cpu_cost * built.z_vars[(h, o)]
            for o in scope_operators
            if (h, o) in built.z_vars
        ]
        model.add_constr(lin_sum(cpu_terms) <= cpu_free, name=f"cpu[{h}]")
        # Linearisation of O4: max_load >= total CPU on every host.
        model.add_constr(
            lin_sum(cpu_terms) + cpu_background <= load_var,
            name=f"max_load[{h}]",
        )

    # ----------------------------------------------------- acyclicity constraints
    for (h, m, s), x_var in built.x_vars.items():
        model.add_constr(
            p_vars[(h, s)] >= p_vars[(m, s)] + 1 - big_m * (1 - x_var.to_expr()),
            name=f"acyclic[{h},{m},{s}]",
        )

    # ------------------------------------------------------------------ objective
    admission_terms = [
        built.d_vars[(h, s)] for s in new_results for h in hosts if (h, s) in built.d_vars
    ]
    network_terms = [rate(s) * var for (h, m, s), var in built.x_vars.items()]
    cpu_cost_terms = [
        catalog.get_operator(o).cpu_cost * var for (h, o), var in built.z_vars.items()
    ]
    objective = (
        weights.admission * lin_sum(admission_terms)
        - weights.network * lin_sum(network_terms)
        - weights.cpu * lin_sum(cpu_cost_terms)
        - weights.balance * load_var
    )
    model.set_objective(objective)
    return built


# --------------------------------------------------------------------- reuse
def catalog_fingerprint(catalog: SystemCatalog, scope: ReplanScope) -> Tuple:
    """A hashable snapshot of the catalog state ``build_model`` reads.

    Streams, operators and queries are immutable once registered, so the
    scope's id sets already pin them.  What *can* change between planning
    rounds is host/link provisioning (``set_link_capacity``, ``add_host``)
    and base-stream placement (``add_base_stream_location``) — resource
    sweeps like fig. 5(b) do exactly this — so those go into the reuse key
    explicitly.
    """
    hosts = catalog.host_ids
    sites = catalog.sites
    return (
        tuple(
            (h, catalog.hosts.get(h).cpu_capacity, catalog.hosts.get(h).bandwidth_capacity)
            for h in hosts
        ),
        tuple(
            catalog.link_capacity(h, m) for h in hosts for m in hosts if h != m
        ),
        # Effective WAN gateway state (partitions, drift): the shared-WAN
        # rows read it, and the per-pair link capping alone does not always
        # reveal a change (a gateway wider than the links it carries).
        tuple(
            (a, b, catalog.effective_wan_capacity(a, b))
            for a in sites
            for b in sites
            if a != b
        ),
        tuple(
            (s, catalog.base_hosts_of(s))
            for s in sorted(scope.streams)
            if catalog.streams.get(s).is_base
        ),
    )


def allocation_fingerprint(allocation: Allocation) -> Tuple:
    """A hashable snapshot of everything ``build_model`` reads from an allocation.

    The model depends on the allocation through background resource usage
    (flows, placements), availability credits (``available``), protection of
    structures shared with untouched queries (``admitted_queries``) and the
    provided map.  This returns the allocation's *rolling* fingerprint — an
    order-independent XOR digest maintained in O(1) per mutation by
    ``Allocation.apply`` and friends — so fingerprinting a planning round
    costs O(1) instead of re-hashing every structure in the system.  Equal
    contents always fingerprint equally; distinct contents collide only
    with 64-bit-hash probability (see :meth:`Allocation.fingerprint`).
    """
    return allocation.fingerprint()


def allocation_fingerprint_exact(allocation: Allocation) -> Tuple:
    """The exact (content-enumerating) fingerprint, kept as a test oracle.

    O(allocation size) — this is what every planning round used to pay
    before the rolling fingerprint; ``tests/test_allocation_indexes.py``
    compares the two across random mutation histories to pin the
    equal-content ⇒ equal-fingerprint contract.
    """
    return (
        frozenset(allocation.flows),
        frozenset(allocation.available),
        frozenset(allocation.placements),
        frozenset(allocation.admitted_queries),
        tuple(sorted(allocation.provided.items())),
    )


class ModelReuseCache:
    """LRU cache of built :class:`SqprModel` keyed by their full build inputs.

    This is the paper's reuse idea applied to the solver layer: a planning
    round whose reduced scope *and* system state match a previous round gets
    the previous round's model back verbatim — no variable creation, no
    constraint assembly, and (through the standard-form cache on the model)
    no re-lowering.  Hits require resubmitting the *same* registered
    :class:`~repro.dsps.query.Query` while the allocation is unchanged —
    the retry-after-rejection loop (a rejection leaves the allocation
    untouched).  Submitting a fresh ``QueryWorkloadItem`` registers a new
    query id and therefore always misses; such rounds pay only the
    fingerprinting cost.

    Keys include a :func:`catalog_fingerprint` and an
    :func:`allocation_fingerprint` — the allocation part is the O(1)
    rolling digest maintained by ``Allocation.apply``, so keying a round no
    longer re-hashes the whole system state.  A hit therefore means the
    model would be rebuilt identically (up to the astronomically unlikely
    64-bit digest collision); reuse never changes planning results.

    The cache is safe to share across threads (the federated planner's
    concurrent shard mode, a planner behind the admission service): every
    LRU/counter mutation happens under one lock.  Model *construction* on a
    miss deliberately runs outside the lock, so a slow build never blocks
    concurrent lookups; two threads racing on the same key both build and
    the later insert wins, which only costs duplicate work, never
    correctness (the models are identical by keying).
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, SqprModel]" = OrderedDict()
        # Incumbent simplex bases keyed by model *structure* (not full build
        # inputs): a basis survives bound/RHS perturbations of the same
        # row/column layout, which is exactly what the dual simplex resumes
        # from.  A structurally stale basis is detected and discarded by the
        # LP engine itself, so an imperfect key costs a cold fallback, never
        # a wrong answer.
        self._basis_store: "OrderedDict[Tuple, object]" = OrderedDict()
        self._hot_basis_key: Optional[Tuple] = None
        self.basis_hits = 0
        self.basis_misses = 0
        self._lock = threading.Lock()

    def clear(self) -> None:
        """Drop all cached models and counters (e.g. on planner reset)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self._basis_store.clear()
            self._hot_basis_key = None
            self.basis_hits = 0
            self.basis_misses = 0

    # ----------------------------------------------------------- basis store
    def store_basis(self, key: Tuple, basis) -> None:
        """Remember the incumbent basis for a model structure.

        Only the most recently stored basis keeps its ``m x m`` inverse
        (the next solve under the same structure re-installs it without a
        refactorisation); older entries are stripped to their column/bound
        vectors, bounding the store's memory at one inverse regardless of
        how many structures are live.
        """
        if basis is None:
            return
        with self._lock:
            if (
                self._hot_basis_key is not None
                and self._hot_basis_key != key
                and self._hot_basis_key in self._basis_store
            ):
                self._basis_store[self._hot_basis_key].binv = None
            self._hot_basis_key = key
            self._basis_store[key] = basis
            self._basis_store.move_to_end(key)
            while len(self._basis_store) > self.max_entries:
                evicted_key, _ = self._basis_store.popitem(last=False)
                if evicted_key == self._hot_basis_key:
                    self._hot_basis_key = None

    def basis_for(self, key: Tuple):
        """The stored incumbent basis for ``key``, or ``None`` (counted)."""
        with self._lock:
            basis = self._basis_store.get(key)
            if basis is not None:
                self._basis_store.move_to_end(key)
                self.basis_hits += 1
                return basis
            self.basis_misses += 1
            return None

    def get_or_build(
        self,
        catalog: SystemCatalog,
        allocation: Allocation,
        scope: ReplanScope,
        weights: ObjectiveWeights,
        frozen_mode: bool = False,
        allow_relay: bool = True,
        max_relay_hops: int = 3,
        force_admission: bool = False,
    ) -> Tuple[SqprModel, bool]:
        """Return ``(model, reused)`` — a cached model when the inputs match."""
        key = (
            frozen_mode,
            allow_relay,
            max_relay_hops,
            force_admission,
            scope.new_queries,
            scope.streams,
            scope.operators,
            scope.keep_provided,
            scope.replanned_queries,
            (weights.admission, weights.network, weights.cpu, weights.balance),
            catalog_fingerprint(catalog, scope),
            allocation_fingerprint(allocation),
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached, True
        built = build_model(
            catalog,
            allocation,
            scope,
            weights,
            frozen_mode=frozen_mode,
            allow_relay=allow_relay,
            max_relay_hops=max_relay_hops,
            force_admission=force_admission,
        )
        with self._lock:
            self._entries[key] = built
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self.misses += 1
        return built, False
