"""Public planner API: protocol, outcome, config, hooks and registry.

>>> from repro.api import create_planner, PlannerConfig
>>> planner = create_planner("sqpr", catalog, config=PlannerConfig(time_limit=0.5))
>>> outcome = planner.submit(item)          # -> PlanningOutcome
"""

from repro.api.base import (
    Planner,
    PlannerConfig,
    PlannerHooks,
    PlannerStats,
    PlanningOutcome,
)
from repro.api.registry import (
    available_planners,
    create_planner,
    get_planner_class,
    register_planner,
    resolve_planner_name,
    unregister_planner,
)

__all__ = [
    "Planner",
    "PlannerConfig",
    "PlannerHooks",
    "PlannerStats",
    "PlanningOutcome",
    "available_planners",
    "create_planner",
    "get_planner_class",
    "register_planner",
    "resolve_planner_name",
    "unregister_planner",
]
