"""The unified planner API: one protocol, one outcome type, one config.

Every planner in the repository — the SQPR MILP planner, the greedy-reuse
heuristic, the SODA-like epoch planner and the optimistic aggregate-host
bound — implements the :class:`Planner` abstract base class:

* ``submit(query)`` plans one query and returns a :class:`PlanningOutcome`,
* ``submit_batch(items)`` plans a group (a batch for SQPR, an epoch for
  SODA, a loop of single submissions otherwise),
* ``retire(query_id)`` removes an admitted query again (a client leaving),
  garbage-collecting the structures only it needed,
* ``on_topology_change()`` lets a planner react to hosts failing, joining
  or recovering (cache invalidation, capacity re-accounting),
* ``reset()`` returns the planner to its freshly-constructed state,
* the :class:`PlannerStats` mixin provides ``num_admitted`` /
  ``num_submitted`` / ``admission_rate()`` / ``average_planning_time()``,
* :class:`PlannerHooks` lets monitors observe admissions, rejections and
  adaptive re-planning rounds without subclassing.

Planner-specific result fields (SODA's rejecting stage, the heuristic's
chosen host, the optimistic bound's marginal CPU, SQPR's solver statistics)
live in :attr:`PlanningOutcome.extras`; attribute access falls through to
that dict so ``outcome.marginal_cpu`` keeps working.
"""

from __future__ import annotations

import threading
import warnings
from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.catalog import SystemCatalog
from repro.dsps.plan import QueryPlan, extract_plan
from repro.dsps.query import Query, QueryWorkloadItem
from repro.exceptions import PlanError, PlanningError
from repro.milp import SolverBackend


@dataclass
class PlannerConfig:
    """Unified configuration accepted by every registered planner.

    Planners read the fields that apply to them and ignore the rest, so one
    config object can drive a whole planner comparison.

    Attributes
    ----------
    time_limit:
        Per-query solver timeout in seconds (the paper uses 5–60 s; the
        scaled-down experiments use fractions of a second).  Only the MILP
        planner enforces it.
    replan_overlapping:
        Whether admitted queries sharing streams with the new query are
        pulled into the scope and may be re-planned (paper behaviour).
    max_replanned_queries:
        Cap on how many overlapping admitted queries join the re-planning
        scope (see :func:`repro.core.reduction.compute_scope`).
    two_stage:
        Solve a small greedy-reuse (frozen) model first and fall back to the
        full re-planning model only when that fails to admit the query.  The
        paper solves the re-planning model directly with a 5–60 s CPLEX
        timeout; with the sub-second timeouts used here the restriction-first
        order finds admitting incumbents far more reliably while preserving
        the same search space overall.
    allow_relay:
        Whether hosts may relay streams they do not generate (§II-C).
    max_relay_hops:
        Bound on relay chain length in the acyclicity constraints.
    load_balancing:
        The λ3/λ4 trade-off passed to :class:`ObjectiveWeights`.
    validate_after_apply:
        Run the full allocation validator after every admission (slower, but
        catches decoding bugs; enabled by default in tests).
    backend:
        MILP solver backend.
    max_abstract_plans:
        Cap on abstract plan enumeration in the heuristic planner.
    use_miniw:
        Whether the SODA-like planner polishes placements with miniW swaps.
    record_plans:
        Extract the admitted query's deployed :class:`QueryPlan` into
        :attr:`PlanningOutcome.plan` (planners that keep a live allocation
        only; costs one plan extraction per admission).
    reuse_model:
        Reuse the built MILP across planning rounds whose reduced scope and
        system state are identical (see
        :class:`repro.core.model_builder.ModelReuseCache`).  A reuse hit
        skips model construction and lowering entirely; it never changes
        planning results, because the key covers every build input.
    warm_start:
        Warm-start successive solves from the previous planning round: the
        last deployed placement seeds the branch-and-bound incumbent (by
        variable name, so it survives model rebuilds), and within one solve
        child nodes re-start the simplex from their parent's basis.
        Disabling this forces every solve fully cold.  Warm and cold solves
        reach the same optimum; only the time to get there differs.
    reuse_index:
        Maintain a persistent sub-plan index
        (:class:`repro.dsps.subplan.SubPlanIndex`) of every resident
        query's deployed sub-plan, keyed by the allocation points each plan
        reads.  Admission-time garbage collection then re-extracts only the
        plans an admission delta could have changed instead of rebuilding
        the whole minimal allocation, and retirement removes exactly the
        structures whose reference count dropped to zero.  The index never
        changes planning results — the index-off path
        (:func:`repro.dsps.plan.rebuild_minimal_allocation`) is the
        cross-check oracle, and both produce identical allocations and
        fingerprints.  SQPR-planner only; other planners ignore it.
    exec_backend:
        Execution backend for planners that fan independent work units
        out on a pool (the federated planner's per-site shard groups):
        ``"serial"``, ``"thread"`` (default) or ``"process"``.  The
        process backend runs shard solves on long-lived worker processes
        holding warm planner replicas — true multicore on the GIL-bound
        solver core.  Decisions and allocation fingerprints are
        identical across backends; only wall-clock differs.
    """

    time_limit: Optional[float] = 1.0
    replan_overlapping: bool = True
    max_replanned_queries: int = 4
    two_stage: bool = True
    allow_relay: bool = True
    max_relay_hops: int = 3
    load_balancing: float = 0.5
    mip_gap: float = 1e-3
    garbage_collect: bool = True
    validate_after_apply: bool = False
    backend: SolverBackend = SolverBackend.AUTO
    max_abstract_plans: int = 64
    use_miniw: bool = True
    record_plans: bool = False
    reuse_model: bool = True
    warm_start: bool = True
    reuse_index: bool = True
    exec_backend: str = "thread"


#: Defaults for well-known planner-specific extras, so the legacy attribute
#: names stay readable on outcomes produced by *other* planners (a duplicate
#: SQPR admission has no solver result; a heuristic rejection has no host).
_EXTRA_DEFAULTS: Dict[str, Any] = {
    "solve_result": None,
    "model_size": 0,
    "scope_streams": 0,
    "scope_operators": 0,
    "host": None,
    "plans_considered": 0,
    "rejected_by": "",
    "marginal_cpu": 0.0,
    "reused_model": False,
    "warm_seeded": False,
    "reuse_exact": False,
    "reuse_partial": False,
    "reuse_overlapping_queries": 0,
    "solver_counters": None,
    "perturbation_resolve": False,
}


@dataclass
class PlanningOutcome:
    """The result of planning one query, identical across all planners.

    Attributes
    ----------
    query:
        The resolved :class:`~repro.dsps.query.Query`.
    admitted:
        Whether the query was admitted.
    duplicate:
        Whether the query was satisfied for free because its result stream
        was already delivered (Algorithm 1, line 3).
    planning_time:
        Wall-clock seconds spent planning this query (batch members share
        the batch time equally).
    plan:
        The deployed query plan, when the planner was configured with
        ``record_plans=True``.
    delta:
        The placement delta applied on admission, when the planner computes
        a per-query delta (batch planners apply one delta per batch).
    objective_value:
        The planner's score for the chosen placement (MILP incumbent
        objective, heuristic candidate score), if any.
    rejection_reason:
        Short machine-readable reason when ``admitted`` is ``False``
        (e.g. ``"macroq"``, ``"no-feasible-placement"``).
    extras:
        Planner-specific fields (SQPR solver statistics, heuristic host,
        optimistic marginal CPU, …).  Attribute access on the outcome falls
        through to this dict.
    """

    query: Query
    admitted: bool
    duplicate: bool = False
    planning_time: float = 0.0
    plan: Optional[QueryPlan] = None
    delta: Optional[PlacementDelta] = None
    objective_value: Optional[float] = None
    rejection_reason: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal attribute lookup fails: fall through to
        # the planner-specific extras, then to the known defaults.
        if name.startswith("__"):
            raise AttributeError(name)
        extras = self.__dict__.get("extras")
        if extras and name in extras:
            return extras[name]
        if name in _EXTRA_DEFAULTS:
            return _EXTRA_DEFAULTS[name]
        raise AttributeError(
            f"{type(self).__name__} has no attribute or extra {name!r}"
        )

    def __repr__(self) -> str:
        verdict = "admitted" if self.admitted else "rejected"
        reason = f", reason={self.rejection_reason}" if self.rejection_reason else ""
        return (
            f"PlanningOutcome(query={self.query.query_id}, {verdict}, "
            f"{self.planning_time * 1000:.1f} ms{reason})"
        )


def deprecated_outcome_getattr(
    module_name: str, names: Sequence[str]
) -> Callable[[str], Any]:
    """Build a module-level ``__getattr__`` (PEP 562) that maps the legacy
    per-planner outcome names in ``names`` to :class:`PlanningOutcome` with
    a :class:`DeprecationWarning`.  Shared by every module that used to
    define its own outcome type."""

    def __getattr__(attr: str) -> Any:
        if attr in names:
            warnings.warn(
                f"{module_name}.{attr} is deprecated; all planners now "
                "return repro.api.PlanningOutcome (planner-specific fields "
                "are in outcome.extras; only reads are preserved — the "
                "legacy constructor signature is not)",
                DeprecationWarning,
                stacklevel=2,
            )
            return PlanningOutcome
        raise AttributeError(f"module {module_name!r} has no attribute {attr!r}")

    return __getattr__


@dataclass
class PlannerHooks:
    """Callback lists fired as a planner makes decisions.

    ``on_admit`` and ``on_reject`` receive the :class:`PlanningOutcome`;
    ``on_replan`` receives the re-planning report of an adaptive round
    (see :class:`repro.core.adaptive.ReplanReport`).
    """

    on_admit: List[Callable[[PlanningOutcome], None]] = field(default_factory=list)
    on_reject: List[Callable[[PlanningOutcome], None]] = field(default_factory=list)
    on_replan: List[Callable[[Any], None]] = field(default_factory=list)


class PlannerStats:
    """Shared admission statistics over a planner's recorded outcomes.

    Planners that maintain a live :class:`~repro.dsps.allocation.Allocation`
    report ``num_admitted`` from the currently-admitted query set (adaptive
    re-planning can shrink it); planners without one (the optimistic bound)
    count admitted outcomes.  For a planner that never re-plans the two
    coincide — ``tests/test_api.py`` asserts this parity.

    Recording and reading are safe under concurrent use (several threads
    driving one planner, the federated planner's concurrent shard mode):
    :meth:`Planner._record` appends under the planner's stats lock and the
    aggregate readers iterate a snapshot taken under the same lock, so a
    rate or mean computed mid-append never mixes a stale length with fresh
    contents.
    """

    outcomes: List[PlanningOutcome]

    def _stats_guard(self):
        """The planner's stats lock, or a no-op guard for bare mixin use."""
        return self.__dict__.get("_stats_lock") or nullcontext()

    def _outcomes_snapshot(self) -> Tuple[PlanningOutcome, ...]:
        """A point-in-time copy of the recorded outcomes."""
        with self._stats_guard():
            return tuple(self.outcomes)

    @property
    def num_submitted(self) -> int:
        """Number of queries submitted so far."""
        return len(self._outcomes_snapshot())

    @property
    def num_admitted(self) -> int:
        """Number of queries admitted so far."""
        allocation = getattr(self, "allocation", None)
        if allocation is not None:
            return len(allocation.admitted_queries)
        return sum(1 for outcome in self._outcomes_snapshot() if outcome.admitted)

    def admission_rate(self) -> float:
        """Fraction of submitted queries that were admitted."""
        outcomes = self._outcomes_snapshot()
        if not outcomes:
            return 0.0
        return sum(1 for o in outcomes if o.admitted) / len(outcomes)

    def average_planning_time(self) -> float:
        """Mean planning time per submitted query (seconds)."""
        outcomes = self._outcomes_snapshot()
        if not outcomes:
            return 0.0
        return sum(o.planning_time for o in outcomes) / len(outcomes)

    def solver_counters(self) -> Dict[str, int]:
        """Summed simplex counters over all recorded outcomes.

        Outcomes of one planning round (a batch, or stage A + stage B of a
        two-stage solve) share a single counters dict, so aggregation
        dedupes by object identity — a batch of ten queries counts its
        solve once.  Empty when no outcome carries counters (non-MILP
        planners, scipy backends).
        """
        totals: Dict[str, int] = {}
        seen: set = set()
        for outcome in self._outcomes_snapshot():
            counters = outcome.extras.get("solver_counters")
            if not counters or id(counters) in seen:
                continue
            seen.add(id(counters))
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


class Planner(PlannerStats, ABC):
    """Abstract base class every query planner implements.

    Subclasses must define :attr:`name` (the registry key), implement
    :meth:`submit`, and route every finished outcome through
    :meth:`_record` so statistics and hooks stay consistent.
    """

    #: Canonical registry name of the planner.
    name: ClassVar[str] = ""

    #: Whether the planner is designed to plan whole epochs at once (SODA);
    #: experiment drivers use this to pick a submission group size without
    #: special-casing planner names.
    plans_in_epochs: ClassVar[bool] = False

    #: The live allocation the planner maintains, or ``None`` for planners
    #: that only decide admission (the optimistic bound).  Subclasses with
    #: state assign it in ``__init__``; callers test ``is not None``.
    allocation: Optional[Allocation] = None

    def __init__(
        self, catalog: SystemCatalog, config: Optional[PlannerConfig] = None
    ) -> None:
        self.catalog = catalog
        self.config = config or PlannerConfig()
        self.hooks = PlannerHooks()
        self.outcomes: List[PlanningOutcome] = []
        # Guards outcome recording and the aggregate stats readers; RLock so
        # a hook that reads stats from inside _record does not deadlock.
        self._stats_lock = threading.RLock()

    # ----------------------------------------------------------------- protocol
    @abstractmethod
    def submit(self, query: Union[Query, QueryWorkloadItem]) -> PlanningOutcome:
        """Plan one query and return its outcome."""

    def resubmit(
        self,
        query: Union[Query, QueryWorkloadItem],
        time_limit: Optional[float] = None,
    ) -> PlanningOutcome:
        """Re-plan a query the system already knows (churn victim, retry).

        Admission decisions are identical to :meth:`submit`; the distinction
        lets planners route perturbation re-solves through a warm-start path
        (the SQPR planner resumes the incumbent simplex basis with the dual
        simplex) and lets metrics separate re-plan cost from first-admission
        cost.  The default simply delegates to :meth:`submit`.
        """
        return self.submit(query)

    def submit_batch(
        self,
        queries: Sequence[Union[Query, QueryWorkloadItem]],
        time_limit: Optional[float] = None,
    ) -> List[PlanningOutcome]:
        """Plan a group of queries; by default one at a time, in order.

        ``time_limit`` is an advisory solver budget for the whole batch.
        Planners that build one joint model per batch (SQPR, federated
        shards) honour it; the default per-query loop ignores it — each
        submission keeps its configured per-query budget.
        """
        return [self.submit(query) for query in queries]

    @property
    def active_queries(self) -> FrozenSet[int]:
        """Ids of the queries currently admitted (shrinks on retirement).

        Unlike :attr:`PlannerStats.num_admitted` — which for planners
        without a live allocation counts admitted *outcomes* cumulatively —
        this is always the current set, which is what churn simulations
        chart over time.
        """
        if self.allocation is not None:
            return frozenset(self.allocation.admitted_queries)
        raise PlanningError(
            f"planner {self.name!r} keeps no live allocation; "
            "it must override active_queries"
        )

    def retire(self, query_id: int) -> bool:
        """Remove an admitted query from the system (the query *departs*).

        Returns ``True`` when the query was admitted and has now been
        removed, ``False`` when it was not admitted (never submitted,
        rejected, or already retired) — retiring is idempotent.

        The default implementation serves every planner that maintains a
        live :class:`~repro.dsps.allocation.Allocation`: the query leaves
        the admitted set and the allocation is garbage-collected down to
        what the surviving queries still need
        (:meth:`Allocation.without_queries`, built on
        :func:`repro.dsps.plan.rebuild_minimal_allocation`).  Stateful
        planners without an allocation must override this.
        """
        if self.allocation is None:
            raise PlanningError(
                f"planner {self.name!r} keeps no live allocation; "
                "it must override retire()"
            )
        if query_id not in self.allocation.admitted_queries:
            return False
        self.allocation = self.allocation.without_queries([query_id])
        return True

    def on_topology_change(self) -> List[int]:
        """React to hosts failing, joining or recovering.

        Called by :class:`repro.dsps.engine.ClusterEngine` users (notably
        the simulation harness) after the catalog's active host set changed.
        Returns the ids of admitted queries the *planner itself* had to drop
        because of the change — non-empty only for planners that track
        aggregate capacity instead of placements (the optimistic bound);
        placement-level eviction is the engine's job.  The default is a
        no-op returning an empty list.
        """
        return []

    def reset(self) -> None:
        """Forget all outcomes and return to an empty-system state.

        The planner's allocation is replaced with a fresh, empty one —
        including an allocation that was injected at construction time,
        which is discarded (not cleared in place): callers sharing that
        object must re-inject it after a reset.
        """
        with self._stats_guard():
            self.outcomes.clear()
        if self.allocation is not None:
            self.allocation = Allocation(self.catalog)

    # -------------------------------------------------------------------- hooks
    def on_admit(self, callback: Callable[[PlanningOutcome], None]) -> Callable:
        """Register ``callback`` to run after every admission."""
        self.hooks.on_admit.append(callback)
        return callback

    def on_reject(self, callback: Callable[[PlanningOutcome], None]) -> Callable:
        """Register ``callback`` to run after every rejection."""
        self.hooks.on_reject.append(callback)
        return callback

    def on_replan(self, callback: Callable[[Any], None]) -> Callable:
        """Register ``callback`` to run after every adaptive re-planning round."""
        self.hooks.on_replan.append(callback)
        return callback

    # ------------------------------------------------------------------ helpers
    def _record(self, outcome: PlanningOutcome) -> PlanningOutcome:
        """Append ``outcome`` to the history and fire admit/reject hooks."""
        with self._stats_guard():
            self.outcomes.append(outcome)
        callbacks = self.hooks.on_admit if outcome.admitted else self.hooks.on_reject
        for callback in callbacks:
            callback(outcome)
        return outcome

    def _record_many(
        self, outcomes: Sequence[PlanningOutcome]
    ) -> List[PlanningOutcome]:
        return [self._record(outcome) for outcome in outcomes]

    @staticmethod
    def _reorder(
        resolved: Sequence[Query], outcomes: Sequence[PlanningOutcome]
    ) -> List[PlanningOutcome]:
        """Put batch outcomes back into the submission order of ``resolved``."""
        by_query = {outcome.query.query_id: outcome for outcome in outcomes}
        return [by_query[query.query_id] for query in resolved]

    def _notify_replan(self, report: Any) -> None:
        """Fire the ``on_replan`` hooks with an adaptive re-planning report."""
        for callback in self.hooks.on_replan:
            callback(report)

    def _resolve_query(self, query: Union[Query, QueryWorkloadItem]) -> Query:
        """Register a workload item with the catalog, or pass a query through."""
        if isinstance(query, QueryWorkloadItem):
            return self.catalog.register_query(query)
        if isinstance(query, Query):
            return query
        raise PlanningError(
            f"submit expects a Query or QueryWorkloadItem, got {type(query).__name__}"
        )

    def _maybe_extract_plan(self, query: Query) -> Optional[QueryPlan]:
        """Extract the deployed plan when ``record_plans`` is enabled.

        Returns ``None`` for planners without a live allocation.  An
        inconsistent allocation (``PlanError``) also yields ``None`` but is
        reported with a warning — callers opted into plan recording, so a
        missing plan on an admitted query should not pass silently.
        """
        if not self.config.record_plans:
            return None
        if self.allocation is None:
            return None
        try:
            return extract_plan(self.catalog, self.allocation, query.result_stream)
        except PlanError as exc:
            warnings.warn(
                f"record_plans: could not extract the plan of query "
                f"{query.query_id}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"admitted={self.num_admitted}/{self.num_submitted})"
        )
