"""Planner registry and factory.

Planners register themselves under a canonical name (plus optional aliases)
with the :func:`register_planner` decorator; experiment drivers construct
them by name with :func:`create_planner` and discover them with
:func:`available_planners`.  The four built-in planners are imported lazily
so that importing :mod:`repro.api` stays cheap and cycle-free.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Dict, List, Optional, Type

from repro.api.base import Planner, PlannerConfig
from repro.dsps.catalog import SystemCatalog
from repro.exceptions import PlanningError

#: canonical name -> planner class
_REGISTRY: Dict[str, Type[Planner]] = {}
#: alias -> canonical name
_ALIASES: Dict[str, str] = {}
#: alias -> canonical name it pointed at before a registration displaced it
_DISPLACED_ALIASES: Dict[str, str] = {}

#: Modules whose import registers the built-in planners.
_BUILTIN_MODULES = (
    "repro.core.planner",
    "repro.baselines.heuristic",
    "repro.baselines.soda.planner",
    "repro.core.optimistic",
    "repro.core.federated",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only flip the flag once every import succeeded, so a transient import
    # failure is retried instead of poisoning the registry for the process.
    _builtins_loaded = True


def register_planner(name, cls=None, *, aliases=()):
    """Register a :class:`Planner` subclass under ``name``.

    Usable as a decorator (``@register_planner("sqpr")``) or as a direct
    call (``register_planner("sqpr", SQPRPlanner)``).  Registering a new
    class under an existing name replaces it, so downstream code can swap
    in experimental planner implementations.
    """

    def _register(planner_cls: Type[Planner]) -> Type[Planner]:
        if not (isinstance(planner_cls, type) and issubclass(planner_cls, Planner)):
            raise PlanningError(
                f"register_planner expects a Planner subclass, got {planner_cls!r}"
            )
        _REGISTRY[name] = planner_cls
        # Stamp the class only when it does not declare a name of its own,
        # so registering an existing class under a second name never renames
        # the original registration (instances are stamped in create_planner).
        if not planner_cls.__dict__.get("name"):
            planner_cls.name = name
        # An explicit registration always wins over an alias of the same
        # name, so downstream code can take over an aliased slot too; the
        # displaced alias is remembered so unregister_planner can restore it.
        displaced = _ALIASES.pop(name, None)
        if displaced is not None:
            _DISPLACED_ALIASES[name] = displaced
        for alias in aliases:
            _ALIASES[alias] = name
        return planner_cls

    if cls is None:
        return _register
    return _register(cls)


def unregister_planner(name: str) -> None:
    """Remove ``name`` from the registry.

    A canonical name is removed together with its aliases; an alias name
    removes just that alias.  An alias that the registration of ``name``
    displaced is restored, so temporarily overriding an aliased slot is
    fully reversible.
    """
    _ALIASES.pop(name, None)
    _REGISTRY.pop(name, None)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == name:
            del _ALIASES[alias]
    previous = _DISPLACED_ALIASES.pop(name, None)
    if previous is not None and previous in _REGISTRY:
        _ALIASES[name] = previous


def resolve_planner_name(name: str) -> str:
    """Map an alias to its canonical planner name (identity for canonical).

    A canonical registration always wins over an alias of the same name, so
    an alias can never hijack an existing planner.
    """
    _ensure_builtins()
    if name in _REGISTRY:
        return name
    return _ALIASES.get(name, name)


def get_planner_class(name: str) -> Type[Planner]:
    """Look up the planner class registered under ``name`` (or an alias)."""
    canonical = resolve_planner_name(name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise PlanningError(
            f"unknown planner {name!r}; registered planners: {known}"
        ) from None


def available_planners() -> List[str]:
    """Sorted canonical names of every registered planner."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def create_planner(
    name: str,
    catalog: SystemCatalog,
    config: Optional[PlannerConfig] = None,
    **kwargs,
) -> Planner:
    """Construct the planner registered under ``name``.

    ``config`` is the unified :class:`PlannerConfig`; planner-specific
    constructor arguments (``weights``, ``solver``, ``allocation``, …) pass
    through ``kwargs``.  The instance's ``name`` is the canonical registry
    name it was created under, even when the class is registered under
    several names.

    Parameterised names of the form ``"<outer>:<inner>"`` (e.g.
    ``"federated:sqpr"``) construct the planner registered under ``outer``
    with ``inner=<inner canonical name>``; the instance's ``name`` is the
    fully resolved ``"outer:inner"`` pair.  A literal registration under
    the colon name always wins over the parameterised interpretation.
    """
    canonical = resolve_planner_name(name)
    if canonical not in _REGISTRY and ":" in name:
        outer, _, inner = name.partition(":")
        planner_cls = get_planner_class(outer)
        parameters = inspect.signature(planner_cls.__init__).parameters
        if "inner" not in parameters:
            raise PlanningError(
                f"planner {outer!r} is not parameterised (its constructor "
                f"takes no 'inner'); cannot create {name!r}"
            )
        if "inner" in kwargs:
            raise PlanningError(
                f"pass the inner planner through the name ({name!r}), "
                "not the inner= keyword"
            )
        inner_canonical = resolve_planner_name(inner)
        planner = planner_cls(catalog, config=config, inner=inner_canonical, **kwargs)
        planner.name = f"{resolve_planner_name(outer)}:{inner_canonical}"
        return planner
    planner_cls = get_planner_class(name)
    planner = planner_cls(catalog, config=config, **kwargs)
    planner.name = resolve_planner_name(name)
    return planner
