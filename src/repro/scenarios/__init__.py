"""Declarative scenario matrix: specs, named regimes and cell artifacts.

The correctness-tooling layer over the churn simulator: a
:class:`ScenarioSpec` declares *field overrides* over base configs, the
:data:`SCENARIO_MATRIX` names the operating regimes (composable via
``+`` expressions such as ``flash_crowd+site_partition``), and
:class:`CellArtifact` is the per-run bundle — resolved inputs, KPI
deltas vs. the pinned baseline cell, invariant-check outcomes and the
determinism fingerprint — the sweep runner in
:mod:`repro.experiments.matrix` writes for every cell.
"""

from repro.scenarios.spec import ResolvedScenario, ScenarioSpec, parse_spec
from repro.scenarios.matrix import (
    BASELINE_SCENARIO,
    MATRIX_REGIMES,
    MATRIX_SCALES,
    MatrixScale,
    SCENARIO_MATRIX,
)
from repro.scenarios.artifacts import (
    ARTIFACT_SCHEMA,
    CellArtifact,
    attach_baseline,
    build_cell_artifact,
    cell_id,
    diff_golden,
    golden_json,
    golden_payload,
    result_fingerprint,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "BASELINE_SCENARIO",
    "CellArtifact",
    "MATRIX_REGIMES",
    "MATRIX_SCALES",
    "MatrixScale",
    "ResolvedScenario",
    "SCENARIO_MATRIX",
    "ScenarioSpec",
    "attach_baseline",
    "build_cell_artifact",
    "cell_id",
    "diff_golden",
    "golden_json",
    "golden_payload",
    "parse_spec",
    "result_fingerprint",
]
