"""Per-cell artifact bundles of the scenario-matrix sweep.

Every matrix cell (scenario × planner × scale) produces one
:class:`CellArtifact`: the *resolved* inputs (full trace/topology configs
after override resolution, not just the spec), the schedule shape, the
run's KPIs and their deltas against the pinned baseline cell, every
invariant-check outcome, and the determinism fingerprint.  Artifacts are
JSON with sorted keys and **no wall-clock fields**, so regenerating a
cell from the same seeds produces byte-identical files — the property
the golden-matrix fixture and its idempotency test pin down.
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.sim.harness import SimulationResult

#: Artifact schema version, bumped on any breaking field change.
ARTIFACT_SCHEMA = 1


def jsonify(value: Any) -> Any:
    """Recursively convert configs into JSON-stable primitives.

    Enums become their names, tuples become lists, mappings are key-sorted
    — the stability half of the byte-identical regeneration contract.
    """
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


def result_fingerprint(result: SimulationResult) -> str:
    """Hex digest of a run's determinism fingerprint.

    Hashes the repr of :meth:`SimulationResult.fingerprint` — counters and
    the per-tick trajectory, never wall-clock — so two runs of the same
    cell agree on it exactly, and any behavioural drift changes it.
    """
    return hashlib.sha256(repr(result.fingerprint()).encode()).hexdigest()


def cell_id(scenario: str, planner: str, scale: str) -> str:
    """The canonical ``scenario/planner/scale`` cell identifier."""
    return f"{scenario}/{planner}/{scale}"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


@dataclass
class CellArtifact:
    """Everything one matrix cell produced, JSON-serialisable."""

    cell_id: str
    scenario: str
    planner: str
    scale: str
    seed: int
    spec: Dict[str, Any]
    inputs: Dict[str, Any]
    schedule: Dict[str, Any]
    kpis: Dict[str, float]
    baseline_cell: Optional[str]
    kpi_deltas: Dict[str, float] = field(default_factory=dict)
    invariants: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    service_replay: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell finished with zero invariant violations."""
        return bool(self.invariants.get("ok", False))

    def to_json_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["schema"] = ARTIFACT_SCHEMA
        return jsonify(payload)

    def to_json(self) -> str:
        return (
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )

    def file_name(self) -> str:
        return (
            f"{_slug(self.scenario)}__{_slug(self.planner)}"
            f"__{_slug(self.scale)}.json"
        )

    def write(self, directory: Path) -> Path:
        """Write the bundle under ``directory``; returns the file path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.file_name()
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def build_cell_artifact(
    *,
    scenario: str,
    planner: str,
    scale: str,
    resolved,
    schedule,
    result: SimulationResult,
    service_replay: bool = False,
) -> CellArtifact:
    """Fold one cell's resolved inputs and simulation result into a bundle.

    ``resolved`` is the :class:`~repro.scenarios.spec.ResolvedScenario`
    the cell ran; baseline linkage (``baseline_cell`` / ``kpi_deltas``) is
    attached afterwards by the sweep runner, which owns the baseline.
    """
    violations_ok = (
        not result.violation_events and not result.final_violations
    )
    return CellArtifact(
        cell_id=cell_id(scenario, planner, scale),
        scenario=scenario,
        planner=planner,
        scale=scale,
        seed=result.seed,
        spec=resolved.spec.to_dict(),
        inputs={
            "trace": asdict(resolved.trace),
            "topology": asdict(resolved.topology),
        },
        schedule={
            "num_events": len(schedule),
            "num_arrivals": schedule.num_arrivals,
            "duration": schedule.duration,
            "counts_by_kind": schedule.counts_by_kind(),
        },
        kpis=result.kpis(),
        baseline_cell=None,
        invariants={
            "ok": violations_ok,
            "violation_events": [dict(v) for v in result.violation_events],
            "final_violations": list(result.final_violations),
            "validation": {
                "mode": result.validation_mode,
                "calls": result.validate_calls,
            },
        },
        fingerprint=result_fingerprint(result),
        service_replay=service_replay,
    )


def attach_baseline(
    artifact: CellArtifact, baseline: CellArtifact
) -> CellArtifact:
    """Link ``artifact`` to its pinned baseline cell and compute KPI deltas
    (``cell KPI − baseline KPI`` for every KPI both cells report)."""
    artifact.baseline_cell = baseline.cell_id
    artifact.kpi_deltas = {
        key: artifact.kpis[key] - baseline.kpis[key]
        for key in sorted(artifact.kpis)
        if key in baseline.kpis
    }
    return artifact


# ------------------------------------------------------------------ golden
def golden_payload(artifacts: Mapping[str, CellArtifact]) -> Dict[str, Any]:
    """The golden-matrix fixture body: every cell's fingerprint digest."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "cells": {
            cid: artifact.fingerprint
            for cid, artifact in sorted(artifacts.items())
        },
    }


def golden_json(artifacts: Mapping[str, CellArtifact]) -> str:
    """Serialised golden fixture (stable bytes)."""
    return (
        json.dumps(golden_payload(artifacts), indent=2, sort_keys=True) + "\n"
    )


def kpi_band_payload(artifacts: Mapping[str, CellArtifact]) -> Dict[str, Any]:
    """Reference-KPI fixture body for non-deterministic scale tiers.

    Tiers running under a solver time limit cannot pin determinism
    fingerprints (the incumbent at timeout is machine-dependent), so
    their regression contract is every cell's KPI vector, checked back
    within relative tolerance bands by :func:`diff_kpi_bands`.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "cells": {
            cid: {key: artifact.kpis[key] for key in sorted(artifact.kpis)}
            for cid, artifact in sorted(artifacts.items())
        },
    }


def diff_kpi_bands(
    expected: Mapping[str, Any],
    artifacts: Mapping[str, CellArtifact],
    tolerances: Mapping[str, float],
) -> List[str]:
    """Drift list between a KPI reference and a sweep, within tolerances.

    ``tolerances`` maps KPI name to the accepted relative deviation; a
    KPI absent from the map is not checked.  The band for reference
    value ``v`` is ``tol * max(1, |v|)`` — the absolute floor keeps
    near-zero references from demanding exact equality.  Missing and
    unexpected cells are reported like :func:`diff_golden`.
    """
    problems: List[str] = []
    expected_cells: Mapping[str, Mapping[str, float]] = expected.get(
        "cells", {}
    )
    for cid, reference in sorted(expected_cells.items()):
        artifact = artifacts.get(cid)
        if artifact is None:
            problems.append(f"cell {cid} missing from this sweep")
            continue
        for key, tolerance in sorted(tolerances.items()):
            if key not in reference:
                continue
            value = artifact.kpis.get(key)
            if value is None:
                problems.append(f"cell {cid} reports no KPI {key!r}")
                continue
            band = tolerance * max(1.0, abs(reference[key]))
            if abs(value - reference[key]) > band:
                problems.append(
                    f"cell {cid} KPI {key!r} out of band: expected "
                    f"{reference[key]:g} ± {band:g}, got {value:g}"
                )
    for cid in sorted(set(artifacts) - set(expected_cells)):
        problems.append(f"cell {cid} not present in the KPI reference")
    return problems


def diff_golden(
    expected: Mapping[str, Any], artifacts: Mapping[str, CellArtifact]
) -> List[str]:
    """Human-readable drift list between a golden fixture and a sweep.

    Reports fingerprint mismatches, cells missing from the sweep and
    cells the fixture has never seen; empty means no drift.
    """
    problems: List[str] = []
    expected_cells: Mapping[str, str] = expected.get("cells", {})
    for cid, fingerprint in sorted(expected_cells.items()):
        artifact = artifacts.get(cid)
        if artifact is None:
            problems.append(f"cell {cid} missing from this sweep")
        elif artifact.fingerprint != fingerprint:
            problems.append(
                f"cell {cid} fingerprint drifted: expected "
                f"{fingerprint[:12]}…, got {artifact.fingerprint[:12]}…"
            )
    for cid in sorted(set(artifacts) - set(expected_cells)):
        problems.append(f"cell {cid} not present in the golden fixture")
    return problems
