"""Declarative scenario specifications over the churn-simulation configs.

A :class:`ScenarioSpec` names a set of *field overrides* over a base
:class:`~repro.workloads.churn.ChurnTraceConfig` (the ``trace`` namespace)
and a base
:class:`~repro.workloads.scenarios.SimulationScenarioConfig` (the
``topology`` namespace).  Specs compose: ``flash_crowd + site_partition``
is a spec *expression* — a new spec whose overrides are the union of both
operands' — not a new hand-written config, which is what turns "as many
scenarios as you can imagine" into an enumerable table.

Resolution semantics (pinned by the property tests in
``tests/test_scenario_spec.py``):

* overrides are applied depth-first over ``extends`` (left to right),
  then the spec's own overrides — **last writer wins** on conflicts;
* composition of specs with *disjoint* override keys is therefore
  order-independent: ``(a + b).resolve() == (b + a).resolve()``;
* resolving the **empty** spec is bit-identical to the base config path:
  no override means ``dataclasses.replace`` with no changes, so the
  resolved configs — and every schedule generated from them — equal the
  plain ``ChurnTraceConfig`` route exactly;
* every resolved config re-runs the target dataclass's ``__post_init__``
  validation, so an override chain either yields a *valid* config or
  raises :class:`~repro.exceptions.WorkloadError` at resolution time,
  never a half-checked config at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.sim.events import EventSchedule
from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    Scenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)

_TRACE_FIELDS = frozenset(f.name for f in fields(ChurnTraceConfig))
_TOPOLOGY_FIELDS = frozenset(f.name for f in fields(SimulationScenarioConfig))


@dataclass(frozen=True)
class ScenarioSpec:
    """Named field overrides over the base trace/topology configs.

    ``trace`` overrides fields of :class:`ChurnTraceConfig`, ``topology``
    fields of :class:`SimulationScenarioConfig`; unknown field names are
    rejected at construction so a typo fails where the spec is written,
    not where it is run.  ``extends`` lists parent specs whose overrides
    apply first (the ``+`` operator builds exactly such a child).
    """

    name: str
    description: str = ""
    trace: Mapping[str, Any] = field(default_factory=dict)
    topology: Mapping[str, Any] = field(default_factory=dict)
    extends: Tuple["ScenarioSpec", ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("a scenario spec needs a non-empty name")
        object.__setattr__(self, "trace", dict(self.trace))
        object.__setattr__(self, "topology", dict(self.topology))
        object.__setattr__(self, "extends", tuple(self.extends))
        unknown = set(self.trace) - _TRACE_FIELDS
        if unknown:
            raise WorkloadError(
                f"spec {self.name!r} overrides unknown ChurnTraceConfig "
                f"field(s): {sorted(unknown)}"
            )
        unknown = set(self.topology) - _TOPOLOGY_FIELDS
        if unknown:
            raise WorkloadError(
                f"spec {self.name!r} overrides unknown "
                f"SimulationScenarioConfig field(s): {sorted(unknown)}"
            )
        for parent in self.extends:
            if not isinstance(parent, ScenarioSpec):
                raise WorkloadError(
                    f"spec {self.name!r} extends a non-spec: {parent!r}"
                )

    # -------------------------------------------------------------- composition
    def __add__(self, other: "ScenarioSpec") -> "ScenarioSpec":
        """Compose two specs: both parents' overrides, left one first."""
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return ScenarioSpec(
            name=f"{self.name}+{other.name}",
            description=(
                f"composition of {self.name!r} and {other.name!r}"
            ),
            extends=(self, other),
        )

    # --------------------------------------------------------------- resolution
    def flattened_overrides(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """The merged ``(trace, topology)`` override dicts of the whole
        inheritance chain — parents depth-first left-to-right, own
        overrides last, later writers replacing earlier ones."""
        trace: Dict[str, Any] = {}
        topology: Dict[str, Any] = {}
        for parent in self.extends:
            parent_trace, parent_topology = parent.flattened_overrides()
            trace.update(parent_trace)
            topology.update(parent_topology)
        trace.update(self.trace)
        topology.update(self.topology)
        return trace, topology

    def resolve(
        self,
        base_trace: Optional[ChurnTraceConfig] = None,
        base_topology: Optional[SimulationScenarioConfig] = None,
    ) -> "ResolvedScenario":
        """Apply the override chain to the base configs.

        Defaults resolve over the default-constructed configs.  Both
        replacements re-run the dataclass validation, so an invalid
        override combination raises :class:`WorkloadError` here.
        """
        base_trace = base_trace or ChurnTraceConfig()
        base_topology = base_topology or SimulationScenarioConfig()
        trace_overrides, topology_overrides = self.flattened_overrides()
        return ResolvedScenario(
            spec=self,
            trace=replace(base_trace, **trace_overrides),
            topology=replace(base_topology, **topology_overrides),
            trace_overrides=trace_overrides,
            topology_overrides=topology_overrides,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly description (the artifact's ``spec`` block)."""
        trace, topology = self.flattened_overrides()
        return {
            "name": self.name,
            "description": self.description,
            "extends": [parent.name for parent in self.extends],
            "trace_overrides": dict(sorted(trace.items())),
            "topology_overrides": dict(sorted(topology.items())),
        }


@dataclass(frozen=True)
class ResolvedScenario:
    """A spec applied to concrete base configs: everything a matrix cell
    needs to build its catalog and schedule."""

    spec: ScenarioSpec
    trace: ChurnTraceConfig
    topology: SimulationScenarioConfig
    trace_overrides: Mapping[str, Any] = field(default_factory=dict)
    topology_overrides: Mapping[str, Any] = field(default_factory=dict)

    def build_scenario(self) -> Scenario:
        """The catalog/workload factory of the resolved topology."""
        return build_simulation_scenario(self.topology)

    def build_schedule(
        self, scenario: Optional[Scenario] = None
    ) -> EventSchedule:
        """The event schedule of the resolved trace over the topology."""
        return build_churn_schedule(
            scenario or self.build_scenario(), self.trace
        )


def parse_spec(
    expression: str, registry: Mapping[str, ScenarioSpec]
) -> ScenarioSpec:
    """Resolve a ``name`` or ``name+name+...`` spec expression.

    Each operand is looked up in ``registry``; composition is the same
    ``+`` the specs themselves implement (left-to-right, last writer
    wins).  Unknown names raise :class:`WorkloadError` listing what the
    registry knows.
    """
    parts = [part.strip() for part in expression.split("+")]
    if not all(parts):
        if not expression.strip():
            detail = "expression is empty"
        elif expression.strip().startswith("+"):
            detail = "leading '+'"
        elif expression.strip().endswith("+"):
            detail = "trailing '+'"
        else:
            detail = "consecutive '+' operators"
        raise WorkloadError(
            f"malformed spec expression {expression!r} (empty operand: {detail})"
        )
    specs = []
    for part in parts:
        try:
            specs.append(registry[part])
        except KeyError:
            known = ", ".join(sorted(registry))
            raise WorkloadError(
                f"unknown scenario {part!r}; known scenarios: {known}"
            ) from None
    combined = specs[0]
    for spec in specs[1:]:
        combined = combined + spec
    return combined
