"""The declarative scenario matrix: named regimes × scale tiers.

``SCENARIO_MATRIX`` holds one :class:`~repro.scenarios.spec.ScenarioSpec`
per operating regime.  Regimes are *specs*, not configs: each names only
the fields it perturbs, so regimes compose — the default sweep includes
the expression ``flash_crowd+site_partition`` rather than a hand-written
"flash crowd during a partition" file.

``MATRIX_SCALES`` pins the base configs a spec resolves over: the
catalog/topology (:class:`SimulationScenarioConfig`) and the trace
envelope (:class:`ChurnTraceConfig` — duration, arrival rate, seeds).
Every scale is solver-deterministic by construction (small enough that
``PlannerConfig(time_limit=None)`` solves to optimality), which is what
makes matrix fingerprints reproducible across machines.

``MATRIX_REGIMES`` is the default sweep list — the enumerable table the
ROADMAP's "as many scenarios as you can imagine" item asks for.
"""

from __future__ import annotations

from typing import Dict, Tuple

from dataclasses import dataclass

from repro.dsps.query import DecompositionMode
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.churn import ChurnTraceConfig
from repro.workloads.scenarios import SimulationScenarioConfig

#: The pinned baseline regime every cell's KPI deltas are taken against.
BASELINE_SCENARIO = "baseline"

_SPECS = [
    ScenarioSpec(
        BASELINE_SCENARIO,
        "The unperturbed open system: Poisson arrivals, Zipf lifetimes, "
        "no failures, no drift — the pinned delta reference of the matrix.",
    ),
    ScenarioSpec(
        "flash_crowd",
        "A 3x arrival burst in the middle third of the run — admission "
        "under pressure and recovery after.",
        trace={
            "burst_factor": 3.0,
            "burst_start_frac": 1.0 / 3.0,
            "burst_end_frac": 2.0 / 3.0,
        },
    ),
    ScenarioSpec(
        "site_partition",
        "Mostly site-local arrivals with one site cut off the WAN "
        "mid-run, healing later — eviction and re-planning at the cut.",
        trace={
            "site_locality": 0.7,
            "num_site_partitions": 1,
            "partition_recovery_delay": 12.0,
        },
    ),
    ScenarioSpec(
        "diurnal_wave",
        "Sinusoidal day/night arrival modulation (amplitude 0.85) — the "
        "smooth load swing of a planetary user base, unlike the flash "
        "crowd's step.",
        trace={"diurnal_period": 12.0, "diurnal_amplitude": 0.85},
    ),
    ScenarioSpec(
        "correlated_site_failures",
        "Two sites partitioned at the same instant by a shared-cause WAN "
        "outage, healing together — the failure mode independent "
        "partitions never produce.",
        topology={"num_sites": 3},
        trace={
            "site_locality": 0.6,
            "correlated_site_partitions": 2,
            "partition_recovery_delay": 12.0,
        },
    ),
    ScenarioSpec(
        "hot_key_skew",
        "All global arrivals hit the first five base streams with an "
        "extreme Zipf exponent — the hot-key regime where popular streams "
        "receive nearly every query.",
        trace={"zipf_exponent": 3.0, "universe_limit": 5},
    ),
    ScenarioSpec(
        "reuse_heavy",
        "Strongly skewed stream popularity (Zipf 2.0): most arrivals "
        "overlap popular streams, the regime where SQPR's sub-plan reuse "
        "should dominate.",
        trace={"zipf_exponent": 2.0},
    ),
    ScenarioSpec(
        "reuse_free",
        "Uniform stream popularity (Zipf 0): arrivals barely overlap, so "
        "reuse opportunities vanish and every planner pays full freight.",
        trace={"zipf_exponent": 0.0},
    ),
    ScenarioSpec(
        "adversarial_fragmentation",
        "40% of arrivals replaced by capacity-fragmenting queries that "
        "join streams from three distinct hosts each — crafted to "
        "splinter CPU and link headroom into unusable slivers.",
        trace={"adversarial_fraction": 0.4, "adversarial_span": 3},
    ),
]

#: Name -> spec.  Compound regimes are *expressions* over these names
#: (see :func:`~repro.scenarios.spec.parse_spec`), not registry entries.
SCENARIO_MATRIX: Dict[str, ScenarioSpec] = {spec.name: spec for spec in _SPECS}

#: The default sweep: every registered regime plus the compound
#: flash-crowd-during-partition expression.
MATRIX_REGIMES: Tuple[str, ...] = (
    BASELINE_SCENARIO,
    "flash_crowd",
    "site_partition",
    "flash_crowd+site_partition",
    "diurnal_wave",
    "correlated_site_failures",
    "hot_key_skew",
    "reuse_heavy",
    "reuse_free",
    "adversarial_fragmentation",
)


@dataclass(frozen=True)
class MatrixScale:
    """One scale tier: the base configs a regime's overrides resolve over.

    ``deterministic`` tiers are small enough that every cell solves to
    optimality, so their artifact fingerprints are machine-independent
    and pinned by the golden fixture.  Non-deterministic tiers (the
    ``large`` stress tier runs under a solver time limit, where the
    incumbent at timeout can differ across machines) are checked against
    **KPI tolerance bands** instead: ``kpi_tolerances`` maps KPI name to
    the accepted relative deviation from a reference sweep (see
    :func:`~repro.scenarios.artifacts.diff_kpi_bands`).
    """

    name: str
    description: str
    topology: SimulationScenarioConfig
    trace: ChurnTraceConfig
    deterministic: bool = True
    kpi_tolerances: Tuple[Tuple[str, float], ...] = ()

    def tolerance_map(self) -> Dict[str, float]:
        """``kpi_tolerances`` as a dict (stored as pairs to stay frozen)."""
        return dict(self.kpi_tolerances)


MATRIX_SCALES: Dict[str, MatrixScale] = {
    scale.name: scale
    for scale in (
        MatrixScale(
            name="quick",
            description=(
                "CI tier: 4 hosts / 2 sites / 12 streams over 40 time "
                "units — every cell solver-deterministic and sub-second."
            ),
            topology=SimulationScenarioConfig(
                num_hosts=4,
                num_base_streams=12,
                host_cpu_capacity=5.0,
                host_bandwidth=150.0,
                decomposition=DecompositionMode.CANONICAL,
                seed=3,
                num_sites=2,
                wan_capacity=300.0,
            ),
            trace=ChurnTraceConfig(
                duration=40.0,
                arrival_rate=0.6,
                arities=(2,),
                min_lifetime=8.0,
                lifetime_buckets=8,
                seed=9406,
            ),
        ),
        MatrixScale(
            name="small",
            description=(
                "Laptop tier: 6 hosts / 3 sites / 24 streams over 100 "
                "time units with mixed arities."
            ),
            topology=SimulationScenarioConfig(
                num_hosts=6,
                num_base_streams=24,
                host_cpu_capacity=6.0,
                host_bandwidth=250.0,
                decomposition=DecompositionMode.CANONICAL,
                seed=5,
                num_sites=3,
                wan_capacity=400.0,
            ),
            trace=ChurnTraceConfig(
                duration=100.0,
                arrival_rate=0.6,
                arities=(2, 3),
                seed=9407,
            ),
        ),
        MatrixScale(
            name="medium",
            description=(
                "Workstation tier: the §V-A simulated data centre (8 "
                "hosts / 4 sites / 60 streams) over 150 time units."
            ),
            topology=SimulationScenarioConfig(
                num_hosts=8,
                num_base_streams=60,
                decomposition=DecompositionMode.CANONICAL,
                seed=7,
                num_sites=4,
                wan_capacity=600.0,
            ),
            trace=ChurnTraceConfig(
                duration=150.0,
                arrival_rate=0.7,
                arities=(2, 3),
                seed=9408,
            ),
        ),
        MatrixScale(
            name="large",
            description=(
                "Stress tier: 12 hosts / 4 sites / 96 streams over 200 "
                "time units under a solver time limit — sized for the "
                "process execution backend; checked by KPI tolerance "
                "bands, not determinism fingerprints."
            ),
            topology=SimulationScenarioConfig(
                num_hosts=12,
                num_base_streams=96,
                host_cpu_capacity=6.0,
                host_bandwidth=250.0,
                decomposition=DecompositionMode.CANONICAL,
                seed=11,
                num_sites=4,
                wan_capacity=800.0,
            ),
            trace=ChurnTraceConfig(
                duration=200.0,
                arrival_rate=0.8,
                arities=(2, 3),
                seed=9409,
            ),
            deterministic=False,
            kpi_tolerances=(
                ("admitted", 0.10),
                ("rejected", 0.15),
                ("dropped", 0.25),
                ("departed", 0.10),
                ("submitted", 0.0),
            ),
        ),
    )
}
