"""Wall-clock helpers used by the solvers and the planner.

The paper runs CPLEX with a per-query timeout and takes the best incumbent.
:class:`Deadline` gives solver backends and the planner a single shared
notion of "how much time is left", and :class:`Stopwatch` is used to measure
planning time for the Figure 6 experiments.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Stopwatch:
    """Measure elapsed wall-clock time.

    The stopwatch starts on construction; :meth:`elapsed` can be called any
    number of times and :meth:`restart` resets the origin.
    """

    _start: float = field(default_factory=time.perf_counter)

    def restart(self) -> None:
        """Reset the stopwatch origin to now."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start


class Deadline:
    """A wall-clock budget shared between nested solver components.

    A ``Deadline`` with ``limit=None`` never expires, which keeps calling code
    free of ``if timeout is not None`` branches.
    """

    def __init__(self, limit: Optional[float] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"time limit must be non-negative, got {limit}")
        self._limit = limit
        self._start = time.perf_counter()

    @property
    def limit(self) -> Optional[float]:
        """The configured limit in seconds, or ``None`` for unlimited."""
        return self._limit

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        """Seconds remaining, ``math.inf`` when unlimited, never negative."""
        if self._limit is None:
            return math.inf
        return max(0.0, self._limit - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self.remaining() <= 0.0
