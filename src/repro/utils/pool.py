"""Shared fan-out helpers with pluggable execution backends.

:class:`~repro.core.federated.FederatedPlanner` plans its per-site groups
concurrently and the scenario-matrix sweep runner executes independent
matrix cells concurrently — both are the same shape: a list of
independent tasks whose results must come back *in submission order* so
that concurrency never changes observable output, only wall-clock.
:func:`map_in_pool` is that shape, factored out so both layers share one
audited implementation.

Three backends cover the latency/parallelism trade-off:

``serial``
    Run in the calling thread, always.  The reference semantics every
    other backend must reproduce bit-identically.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap to spin
    up and shares all state by reference, but the GIL serialises the
    pure-Python solver core — threads only help when tasks block.
``process``
    A fork-context :class:`~concurrent.futures.ProcessPoolExecutor` —
    true multicore execution.  ``fn`` and every item (and result) must
    be picklable; per-call pool startup costs milliseconds, so this
    pays off for coarse tasks (whole matrix cells, whole site batches).

For workloads with expensive per-worker state (a warm planner replica
per federated site), :class:`PersistentProcessPool` keeps long-lived
fork workers alive across calls: each worker is initialised once from an
inherited payload and then serves small picklable requests over a pipe.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")

#: The execution backends :func:`map_in_pool` accepts.
BACKENDS = ("serial", "thread", "process")


def process_backend_available() -> bool:
    """Whether the process backend can run here.

    Worker state (catalogs, planner replicas) is shipped by fork-time
    memory inheritance, so the ``fork`` start method is required —
    available on POSIX, absent on Windows.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _fork_context():
    if not process_backend_available():
        raise ValueError(
            "the process execution backend needs the 'fork' start method "
            f"(available: {multiprocessing.get_all_start_methods()}); "
            "use backend='thread' on this platform"
        )
    return multiprocessing.get_context("fork")


def map_in_pool(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    thread_name_prefix: str = "pool",
    backend: str = "thread",
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the result.

    ``workers`` bounds the pool width (``None``, ``0`` or ``1`` runs
    sequentially in the calling thread — no pool, no thread-switch
    overhead); a negative ``workers`` is a caller bug and raises
    :class:`ValueError` rather than silently degrading to the sequential
    path.  The effective width never exceeds ``len(items)``.  Exceptions
    propagate from the first failing item in submission order, exactly as
    the sequential path would raise them; on failure the not-yet-started
    remainder of the batch is cancelled instead of being run to
    completion behind the caller's back.

    ``backend`` picks the execution substrate: ``"serial"`` forces the
    sequential path regardless of ``workers``; ``"thread"`` (the
    default) fans out on a thread pool; ``"process"`` fans out on a
    fork-context process pool — true multicore, but ``fn``, the items
    and the results must all be picklable.  All three produce identical
    results for deterministic ``fn``; only wall-clock differs.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    width = min(workers or 1, len(items))
    if width <= 1 or backend == "serial":
        return [fn(item) for item in items]
    pool: Executor
    if backend == "process":
        pool = ProcessPoolExecutor(
            max_workers=width, mp_context=_fork_context()
        )
    else:
        pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix=thread_name_prefix
        )
    with pool:
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise


class WorkerError(RuntimeError):
    """A persistent worker's task raised; carries the child traceback."""

    def __init__(self, worker_id: int, child_traceback: str) -> None:
        super().__init__(
            f"persistent worker {worker_id} failed:\n{child_traceback}"
        )
        self.worker_id = worker_id
        self.child_traceback = child_traceback


@dataclass
class WorkerStats:
    """Utilisation bookkeeping of one persistent worker (parent-side)."""

    tasks: int = 0
    busy_seconds: float = 0.0
    resyncs: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tasks": self.tasks,
            "busy_seconds": self.busy_seconds,
            "resyncs": self.resyncs,
        }


def _worker_main(initializer, payload, conn) -> None:
    """Child loop of one persistent worker.

    Builds the handler once from the fork-inherited payload, then serves
    ``(tag, body)`` requests until the parent sends ``None`` or closes
    the pipe.  Task failures are caught and shipped back as formatted
    tracebacks — a bad task must not kill the worker.
    """
    try:
        handler = initializer(payload)
    except BaseException:
        conn.send(("init_err", traceback.format_exc(), 0.0))
        conn.close()
        return
    conn.send(("ready", None, 0.0))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        tag, body = message
        started = time.perf_counter()
        try:
            result = handler(tag, body)
            status = "ok"
        except BaseException:
            result = traceback.format_exc()
            status = "err"
        conn.send((status, result, time.perf_counter() - started))
    conn.close()


class PersistentProcessPool:
    """Long-lived fork workers with warm, call-to-call state.

    Each worker is a forked child holding whatever the ``initializer``
    built from its (fork-inherited, never pickled) ``payload`` — e.g. a
    planner replica over a catalog copy.  Requests and responses travel
    over a per-worker pipe and *are* pickled, so keep them compact:
    deltas and ids, not whole catalogs.

    One request is outstanding per worker at a time;
    :meth:`scatter` overlaps workers by sending every request before
    collecting any response.  A task exception is returned (and raised
    parent-side as :class:`WorkerError`) without killing the worker.
    """

    def __init__(
        self,
        initializer: Callable[[Any], Callable[[str, Any], Any]],
        payloads: Sequence[Any],
        name: str = "persistent-pool",
    ) -> None:
        if not payloads:
            raise ValueError("a persistent pool needs at least one worker")
        ctx = _fork_context()
        self._procs = []
        self._conns = []
        self.stats: List[WorkerStats] = []
        self._closed = False
        for worker_id, payload in enumerate(payloads):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(initializer, payload, child_conn),
                name=f"{name}-{worker_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self.stats.append(WorkerStats())
        for worker_id, conn in enumerate(self._conns):
            status, result, _ = conn.recv()
            if status != "ready":
                failure = result
                self.terminate()
                raise WorkerError(worker_id, failure)

    def __len__(self) -> int:
        return len(self._procs)

    # ------------------------------------------------------------------ calls
    def _send(self, worker_id: int, tag: str, body: Any) -> None:
        if self._closed:
            raise RuntimeError("the persistent pool is closed")
        self._conns[worker_id].send((tag, body))

    def _recv(self, worker_id: int) -> Any:
        try:
            status, result, elapsed = self._conns[worker_id].recv()
        except EOFError:
            raise WorkerError(
                worker_id, "worker exited without replying (EOF)"
            ) from None
        stats = self.stats[worker_id]
        stats.tasks += 1
        stats.busy_seconds += elapsed
        if status == "err":
            raise WorkerError(worker_id, result)
        return result

    def call(self, worker_id: int, tag: str, body: Any = None) -> Any:
        """Run one task on one worker and return its result."""
        self._send(worker_id, tag, body)
        return self._recv(worker_id)

    def scatter(
        self, assignments: Mapping[int, Tuple[str, Any]]
    ) -> Dict[int, Any]:
        """Run one task per assigned worker, concurrently.

        Every request is sent before any response is collected, so the
        assigned workers execute in parallel.  On a task failure the
        remaining responses are still drained (the pipes must not
        desynchronise) before the first failing worker's
        :class:`WorkerError` is raised, in worker-id order.
        """
        ordered = sorted(assignments.items())
        for worker_id, (tag, body) in ordered:
            self._send(worker_id, tag, body)
        results: Dict[int, Any] = {}
        first_error: Optional[WorkerError] = None
        for worker_id, _ in ordered:
            try:
                results[worker_id] = self._recv(worker_id)
            except WorkerError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def broadcast(self, tag: str, body: Any = None) -> List[Any]:
        """Run the same task on every worker; results in worker order."""
        return [
            result
            for _, result in sorted(
                self.scatter(
                    {worker_id: (tag, body) for worker_id in range(len(self))}
                ).items()
            )
        ]

    # -------------------------------------------------------------- lifecycle
    def close(self, timeout: float = 5.0) -> None:
        """Ask every worker to exit and join it; escalate to terminate."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for proc, conn in zip(self._procs, self._conns):
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            conn.close()

    def terminate(self) -> None:
        """Kill every worker immediately (error paths, interpreter exit)."""
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(1.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "PersistentProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.terminate()
        except Exception:
            pass

    def worker_stats(self) -> List[Dict[str, float]]:
        """Per-worker utilisation counters (tasks, busy seconds, resyncs)."""
        return [stats.as_dict() for stats in self.stats]
