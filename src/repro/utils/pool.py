"""Shared thread-pool fan-out helper.

:class:`~repro.core.federated.FederatedPlanner` plans its per-site groups
concurrently and the scenario-matrix sweep runner executes independent
matrix cells concurrently — both are the same shape: a list of
independent tasks whose results must come back *in submission order* so
that concurrency never changes observable output, only wall-clock.
:func:`map_in_pool` is that shape, factored out so both layers share one
audited implementation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def map_in_pool(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    thread_name_prefix: str = "pool",
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the result.

    ``workers`` bounds the pool width (``None``, ``0`` or ``1`` runs
    sequentially in the calling thread — no pool, no thread-switch
    overhead); a negative ``workers`` is a caller bug and raises
    :class:`ValueError` rather than silently degrading to the sequential
    path.  The effective width never exceeds ``len(items)``.  Exceptions
    propagate from the first failing item in submission order, exactly as
    the sequential path would raise them; on failure the not-yet-started
    remainder of the batch is cancelled instead of being run to
    completion behind the caller's back.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    width = min(workers or 1, len(items))
    if width <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(
        max_workers=width, thread_name_prefix=thread_name_prefix
    ) as pool:
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
