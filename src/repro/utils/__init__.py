"""Small shared utilities (timers, RNG helpers, validation helpers)."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Stopwatch, Deadline
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Stopwatch",
    "Deadline",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]
