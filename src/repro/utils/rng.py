"""Deterministic random number generator helpers.

All randomness in the library flows through :class:`numpy.random.Generator`
objects.  These helpers normalise the many ways callers may specify a source
of randomness (``None``, an integer seed, or an existing generator) and allow
deriving independent child generators so that separate components of an
experiment do not share a stream of random numbers.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

RandomLike = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` (fresh non-deterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int seed or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive a child generator from ``rng`` that is tied to ``label``.

    The child is seeded from the parent stream combined with a stable hash of
    ``label`` so that adding a new consumer of randomness does not perturb the
    sequences observed by existing consumers with different labels.

    The label hash is CRC32, not Python's ``hash()``: string hashing is
    randomised per process (PYTHONHASHSEED), which would make "seeded"
    schedules differ between runs — the golden churn fixture caught exactly
    that.
    """
    label_seed = zlib.crc32(label.encode("utf-8")) % (2**31)
    parent_seed = int(rng.integers(0, 2**31 - 1))
    return np.random.default_rng((parent_seed, label_seed))
