"""Argument-validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def _check_finite(name: str, value: Number) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def check_positive(name: str, value: Number) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is > 0."""
    value = _check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(name: str, value: Number) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is >= 0."""
    value = _check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(name: str, value: Number) -> float:
    """Return ``value`` as a float, raising unless it lies in [0, 1]."""
    value = _check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> float:
    """Return ``value`` as a float, raising unless ``low <= value <= high``."""
    value = _check_finite(name, value)
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
