"""A warm-starting branch-and-bound MILP solver built on LP relaxations.

This is the pure-Python stand-in for CPLEX's MILP search.  It implements the
textbook algorithm the paper relies on ("standard branch and bound
algorithms", §III-B):

* best-bound node selection with a priority queue,
* branching on the most fractional integer variable,
* LP relaxations solved via :mod:`repro.milp.lp_backend`,
* incumbent tracking, and
* wall-clock time limits after which the best incumbent found so far is
  returned — exactly how SQPR uses its solver ("prematurely terminate the
  branch and bound algorithm after a given time interval and use the best
  solution that the method found").

Two reuse mechanisms speed up the search (both on by default):

* **Basis warm starts** — a child node differs from its parent by a single
  bound change, so its LP relaxation is re-solved starting from the
  parent's optimal :class:`~repro.milp.simplex.SimplexBasis` instead of
  from scratch (simplex engine only; scipy re-solves cold).
* **Incumbent seeding** — when the model carries a warm-start hint (see
  :meth:`Model.set_warm_start`; the SQPR planner passes the previous
  planning round's deployed placement), a feasible hint becomes the initial
  incumbent, so large parts of the tree are pruned before the first branch.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.milp.lp_backend import solve_lp
from repro.milp.model import Model
from repro.milp.result import SolveResult, SolveStatus
from repro.milp.simplex import SimplexBasis, SolverCounters
from repro.milp.standard_form import StandardForm, to_standard_form
from repro.utils.timer import Deadline

_INT_TOL = 1e-6
_FEAS_TOL = 1e-6


@dataclass
class BnbOptions:
    """Tuning knobs for the branch-and-bound search."""

    time_limit: Optional[float] = None
    node_limit: int = 200_000
    relative_gap: float = 1e-6
    absolute_gap: float = 1e-9
    lp_engine: str = "auto"
    warm_start: bool = True  # parent-basis warm starts + incumbent seeding


class _Node:
    """A branch-and-bound node: variable bounds, parent bound, parent basis."""

    __slots__ = ("lower", "upper", "bound", "basis")

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        bound: float,
        basis: Optional[SimplexBasis] = None,
    ) -> None:
        self.lower = lower
        self.upper = upper
        self.bound = bound
        self.basis = basis


def _most_fractional(x: np.ndarray, integrality: np.ndarray) -> int:
    """Index of the integer variable whose value is most fractional, or -1."""
    best_index = -1
    best_score = _INT_TOL
    for i in np.nonzero(integrality > 0.5)[0]:
        frac = abs(x[i] - round(x[i]))
        score = 0.5 - abs(frac - 0.5)
        if score > best_score:
            best_score = score
            best_index = int(i)
    return best_index


def _round_integievable(x: np.ndarray, integrality: np.ndarray) -> np.ndarray:
    """Round integer coordinates of ``x`` (used when they are near-integral)."""
    rounded = x.copy()
    int_idx = integrality > 0.5
    rounded[int_idx] = np.round(rounded[int_idx])
    return rounded


def _seed_incumbent(model: Model, form: StandardForm) -> Optional[np.ndarray]:
    """Turn the model's warm-start hint into a feasible incumbent, if it is one.

    The hint may be partial: missing variables default to their lower bound.
    Returns the standard-form vector or ``None`` when the hint is absent or
    infeasible (bounds, integrality or any constraint violated).
    """
    hint = model.warm_start
    if not hint:
        return None
    x = np.where(np.isfinite(form.lower), form.lower, 0.0)
    for var, value in hint.items():
        try:
            x[form.index_of(var)] = float(value)
        except KeyError:
            return None  # hint refers to a variable of another model
    x = _round_integievable(x, form.integrality)
    if np.any(x < form.lower - _FEAS_TOL) or np.any(x > form.upper + _FEAS_TOL):
        return None
    if form.a_ub.shape[0] and np.any(form.a_ub.matvec(x) > form.b_ub + _FEAS_TOL):
        return None
    if form.a_eq.shape[0] and np.any(np.abs(form.a_eq.matvec(x) - form.b_eq) > _FEAS_TOL):
        return None
    return x


def solve_branch_and_bound(model: Model, options: Optional[BnbOptions] = None) -> SolveResult:
    """Solve ``model`` with branch and bound and return the best incumbent."""
    options = options or BnbOptions()
    deadline = Deadline(options.time_limit)
    form = to_standard_form(model)
    result = _search(model, form, options, deadline)
    result.backend = "branch_and_bound"
    result.solve_time = deadline.elapsed()
    return result


def _search(
    model: Model, form: StandardForm, options: BnbOptions, deadline: Deadline
) -> SolveResult:
    c, a_ub, b_ub, a_eq, b_eq = form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq
    integrality = form.integrality
    # Summed over every node LP (the simplex engine reports per-solve
    # counters; scipy/dense report none and contribute nothing).
    counters = SolverCounters()

    def lp(lower: np.ndarray, upper: np.ndarray, warm: Optional[SimplexBasis] = None):
        solution = solve_lp(
            c,
            a_ub,
            b_ub,
            a_eq,
            b_eq,
            lower,
            upper,
            engine=options.lp_engine,
            warm_basis=warm if options.warm_start else None,
        )
        if solution.counters is not None:
            counters.add(solution.counters)
        return solution

    # The root relaxation resumes from the model's basis hint when one is
    # attached (the planner feeds back the previous solve's root basis, so a
    # perturbation re-solve starts with one dual-simplex walk instead of a
    # full primal phase 1).
    root = lp(form.lower, form.upper, warm=model.basis_hint)
    if root.status == "infeasible":
        return SolveResult(SolveStatus.INFEASIBLE, lp_counters=counters.to_dict())
    if root.status == "unbounded":
        return SolveResult(SolveStatus.UNBOUNDED, lp_counters=counters.to_dict())
    if not root.is_optimal:
        return SolveResult(SolveStatus.ERROR, lp_counters=counters.to_dict())
    root_basis = root.basis

    # Only the most recent solution keeps its basis *inverse* (so the next
    # node — usually a child of the node just solved — warm-starts without
    # refactorising).  Older bases are stripped to bound memory at one
    # m x m matrix regardless of heap size.
    hot_basis = root.basis

    def retire_hot(new_basis) -> None:
        nonlocal hot_basis
        if new_basis is None:
            return
        if hot_basis is not None and hot_basis is not new_basis:
            hot_basis.binv = None
        hot_basis = new_basis

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf  # in minimisation space
    if options.warm_start:
        seeded = _seed_incumbent(model, form)
        if seeded is not None:
            incumbent_x = seeded
            incumbent_obj = float(c @ seeded)
    best_bound = root.objective if root.objective is not None else -math.inf

    counter = itertools.count()
    heap: List[Tuple[float, int, _Node]] = []
    heapq.heappush(
        heap,
        (
            root.objective,
            next(counter),
            _Node(form.lower.copy(), form.upper.copy(), root.objective, root.basis),
        ),
    )
    nodes_processed = 0
    hit_limit = False
    gap_closed = False
    # A node LP that fails for numerical reasons (iteration limit, singular
    # refactorisation) silently drops its subtree; remember that so the
    # final incumbent is never over-claimed as proven OPTIMAL.
    subtree_lost = False

    while heap:
        if deadline.expired() or nodes_processed >= options.node_limit:
            hit_limit = True
            break
        bound, _, node = heapq.heappop(heap)
        best_bound = bound
        if incumbent_x is not None:
            gap = incumbent_obj - bound
            if gap <= options.absolute_gap or gap <= options.relative_gap * max(1.0, abs(incumbent_obj)):
                gap_closed = True
                break
        relaxation = lp(node.lower, node.upper, warm=node.basis)
        nodes_processed += 1
        retire_hot(relaxation.basis)
        if not relaxation.is_optimal:
            if relaxation.status != "infeasible":
                subtree_lost = True
            continue
        if relaxation.objective is None or relaxation.objective >= incumbent_obj - options.absolute_gap:
            continue
        x = relaxation.x
        branch_var = _most_fractional(x, integrality)
        if branch_var < 0:
            candidate = _round_integievable(x, integrality)
            obj = float(c @ candidate)
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent_x = candidate
            continue
        value = x[branch_var]
        floor_val = math.floor(value + _INT_TOL)
        ceil_val = floor_val + 1
        # Down branch: upper bound <- floor.
        if floor_val >= node.lower[branch_var] - _INT_TOL:
            lower_d, upper_d = node.lower.copy(), node.upper.copy()
            upper_d[branch_var] = floor_val
            heapq.heappush(
                heap,
                (
                    relaxation.objective,
                    next(counter),
                    _Node(lower_d, upper_d, relaxation.objective, relaxation.basis),
                ),
            )
        # Up branch: lower bound <- ceil.
        if ceil_val <= node.upper[branch_var] + _INT_TOL:
            lower_u, upper_u = node.lower.copy(), node.upper.copy()
            lower_u[branch_var] = ceil_val
            heapq.heappush(
                heap,
                (
                    relaxation.objective,
                    next(counter),
                    _Node(lower_u, upper_u, relaxation.objective, relaxation.basis),
                ),
            )

    if incumbent_x is None:
        if hit_limit or subtree_lost:
            # Without a full tree walk there is no infeasibility proof.
            return SolveResult(
                SolveStatus.TIMEOUT, nodes=nodes_processed, lp_counters=counters.to_dict()
            )
        return SolveResult(
            SolveStatus.INFEASIBLE, nodes=nodes_processed, lp_counters=counters.to_dict()
        )

    # The incumbent is optimal when the search tree was exhausted or the
    # best remaining bound came within the configured gap of the incumbent —
    # unless a subtree was lost to an LP failure, in which case the proof
    # does not cover the whole tree.
    if not subtree_lost and (gap_closed or (not heap and not hit_limit)):
        status = SolveStatus.OPTIMAL
    else:
        status = SolveStatus.FEASIBLE
    values = form.assignment(incumbent_x)
    model_obj = form.objective_sign * incumbent_obj + form.objective_offset
    model_bound = form.objective_sign * best_bound + form.objective_offset
    return SolveResult(
        status=status,
        objective=model_obj,
        values=values,
        bound=model_bound,
        nodes=nodes_processed,
        lp_counters=counters.to_dict(),
        root_basis=root_basis,
    )
