"""Linear constraints for the MILP modelling layer."""

from __future__ import annotations

import enum
from typing import Mapping, Optional

from repro.exceptions import ModelError
from repro.milp.expression import LinExpr, Variable


class ConstraintSense(enum.Enum):
    """The relational sense of a constraint (expression SENSE 0)."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint of the form ``expr (<=|>=|==) 0``.

    A constraint is stored in homogeneous form: the left-hand side is an
    affine :class:`LinExpr` and the right-hand side is implicitly zero.  The
    convenience properties :attr:`lhs_terms` and :attr:`rhs` expose the more
    familiar ``sum(coeff*var) SENSE rhs`` view used by solver backends.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(
        self,
        expr: LinExpr,
        sense: ConstraintSense,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(expr, LinExpr):
            raise ModelError("Constraint expects a LinExpr left-hand side")
        self.expr = expr
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "Constraint":
        """Return this constraint with ``name`` attached (fluent helper)."""
        self.name = name
        return self

    # -- solver-facing views -------------------------------------------------------
    @property
    def lhs_terms(self) -> Mapping[Variable, float]:
        """Variable terms of the constraint (left-hand side)."""
        return self.expr.terms

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant across the relation."""
        return -self.expr.constant

    # -- evaluation ----------------------------------------------------------------
    def violation(self, assignment: Mapping[Variable, float], tol: float = 1e-7) -> float:
        """How much the constraint is violated under ``assignment`` (>= 0).

        A value of 0 means the constraint is satisfied within ``tol``.
        """
        value = self.expr.value(assignment)
        if self.sense is ConstraintSense.LE:
            return max(0.0, value - tol) if value > tol else 0.0
        if self.sense is ConstraintSense.GE:
            return max(0.0, -value - tol) if value < -tol else 0.0
        return abs(value) if abs(value) > tol else 0.0

    def is_satisfied(self, assignment: Mapping[Variable, float], tol: float = 1e-7) -> bool:
        """Whether the constraint holds under ``assignment`` within ``tol``."""
        return self.violation(assignment, tol) == 0.0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"
