"""A small mixed-integer linear programming (MILP) toolkit.

The SQPR paper formulates query planning as a MILP and solves it with
CPLEX 11.2.  CPLEX (and PuLP/OR-Tools) are not available in this
environment, so this subpackage provides the substrate the planner needs:

* a modelling layer (:class:`Variable`, :class:`LinExpr`,
  :class:`Constraint`, :class:`Model`) in the spirit of PuLP,
* a sparse lowering to standard form (:mod:`repro.milp.standard_form` over
  :class:`~repro.milp.sparse.CsrMatrix`),
* a warm-starting pure-Python branch-and-bound solver over LP relaxations
  (:mod:`repro.milp.branch_and_bound`), with LP relaxations solved by the
  vectorized revised simplex (:mod:`repro.milp.simplex`), by
  ``scipy.optimize.linprog``, or by the dense reference tableau
  (:mod:`repro.milp.dense_simplex`),
* an optional ``scipy.optimize.milp`` (HiGHS) backend, and
* a :class:`MilpSolver` facade that picks a backend, honours wall-clock
  time limits and always reports the best incumbent found — mirroring the
  way SQPR invokes CPLEX with a timeout.
"""

from repro.milp.expression import LinExpr, Variable, VarType, lin_sum
from repro.milp.constraint import Constraint, ConstraintSense
from repro.milp.model import Model, ObjectiveSense
from repro.milp.solver import MilpSolver, SolverBackend
from repro.milp.result import SolveResult, SolveStatus
from repro.milp.simplex import (
    LpSolution,
    SimplexBasis,
    SolverCounters,
    SOLVER_COUNTER_FIELDS,
)
from repro.milp.sparse import CsrMatrix

__all__ = [
    "Variable",
    "VarType",
    "LinExpr",
    "lin_sum",
    "Constraint",
    "ConstraintSense",
    "Model",
    "ObjectiveSense",
    "MilpSolver",
    "SolverBackend",
    "SolveResult",
    "SolveStatus",
    "LpSolution",
    "SimplexBasis",
    "SolverCounters",
    "SOLVER_COUNTER_FIELDS",
    "CsrMatrix",
]
