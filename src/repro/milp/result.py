"""Solve results and statuses shared by all MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.milp.expression import Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``OPTIMAL``     — proven optimal within tolerances.
    ``FEASIBLE``    — a feasible incumbent was found but optimality was not
                      proven (typically because the time limit expired).
    ``INFEASIBLE``  — proven infeasible.
    ``UNBOUNDED``   — proven unbounded.
    ``TIMEOUT``     — the time limit expired without any feasible incumbent.
    ``ERROR``       — the backend failed.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"
    ERROR = "error"


@dataclass
class SolveResult:
    """The result of solving a :class:`repro.milp.model.Model`.

    Attributes
    ----------
    status:
        Final :class:`SolveStatus`.
    objective:
        Objective value of the incumbent (``None`` if no incumbent).
    values:
        Mapping from variable to value for the incumbent (empty if none).
    bound:
        Best proven dual bound (``None`` if the backend does not report one).
    solve_time:
        Wall-clock seconds spent inside the backend.
    nodes:
        Number of branch-and-bound nodes processed (0 for direct backends).
    backend:
        Name of the backend that produced this result.
    lp_counters:
        Simplex iteration/maintenance counters summed over every LP solved
        for this result (phase-1/primal/dual iterations, bound flips,
        pricing passes, refactorisations, dual resumes, warm repairs, cold
        fallbacks).  Empty for backends that do not run the in-repo simplex.
    root_basis:
        Opaque :class:`~repro.milp.simplex.SimplexBasis` of the root LP
        relaxation, when the in-repo simplex produced one.  Callers can
        feed it back via ``Model.set_basis_hint`` to dual-warm-start the
        next solve of a perturbed version of the same model.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    bound: Optional[float] = None
    solve_time: float = 0.0
    nodes: int = 0
    backend: str = ""
    lp_counters: Dict[str, int] = field(default_factory=dict)
    root_basis: Optional[Any] = None

    @property
    def has_solution(self) -> bool:
        """Whether a usable incumbent is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) and bool(self.values)

    def value(self, var: Variable, default: float = 0.0) -> float:
        """Value of ``var`` in the incumbent (``default`` when absent)."""
        return float(self.values.get(var, default))

    def value_by_name(self, name: str, default: float = 0.0) -> float:
        """Value of the variable named ``name`` in the incumbent."""
        for var, val in self.values.items():
            if var.name == name:
                return float(val)
        return default

    def gap(self) -> Optional[float]:
        """Relative optimality gap, when both incumbent and bound are known."""
        if self.objective is None or self.bound is None:
            return None
        denom = max(1e-12, abs(self.objective))
        return abs(self.bound - self.objective) / denom
