"""Lowering a :class:`~repro.milp.model.Model` to matrix standard form.

The standard form produced here matches the conventions of
``scipy.optimize.linprog``/``milp``:

* minimise ``c @ x``
* ``A_ub @ x <= b_ub``
* ``A_eq @ x == b_eq``
* ``lb <= x <= ub``
* ``integrality[i] == 1`` marks integer variables.

Maximisation models are lowered by negating ``c``; callers use
:attr:`StandardForm.objective_sign` and :attr:`StandardForm.objective_offset`
to translate optimal values back to the model's original objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.milp.constraint import ConstraintSense
from repro.milp.model import Model, ObjectiveSense
from repro.milp.expression import Variable


@dataclass
class StandardForm:
    """Matrix representation of a model, plus bookkeeping to map back."""

    variables: List[Variable]
    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    objective_sign: float
    objective_offset: float

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return len(self.variables)

    def index_of(self, var: Variable) -> int:
        """Column index of ``var``."""
        try:
            return self._index[var]
        except AttributeError:
            self._index: Dict[Variable, int] = {v: i for i, v in enumerate(self.variables)}
            return self._index[var]

    def model_objective(self, x: np.ndarray) -> float:
        """Translate a standard-form vector back to the model objective."""
        return self.objective_sign * float(self.c @ x) + self.objective_offset

    def assignment(self, x: np.ndarray) -> Dict[Variable, float]:
        """Build a variable->value mapping from a solution vector."""
        return {var: float(x[i]) for i, var in enumerate(self.variables)}


def to_standard_form(model: Model) -> StandardForm:
    """Lower ``model`` to :class:`StandardForm`.

    Fixed variables (see :meth:`Model.fix_var`) are lowered as equal lower and
    upper bounds so that all backends honour them uniformly.
    """
    variables = model.variables
    if not variables:
        raise ModelError("cannot lower a model with no variables")
    index = {var: i for i, var in enumerate(variables)}
    n = len(variables)

    # Objective: scipy always minimises, so a MAXIMIZE model flips sign.
    sign = -1.0 if model.sense is ObjectiveSense.MAXIMIZE else 1.0
    c = np.zeros(n)
    for var, coeff in model.objective.terms.items():
        c[index[var]] = sign * coeff
    offset = model.objective.constant

    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    eq_rows: List[np.ndarray] = []
    eq_rhs: List[float] = []

    for constraint in model.constraints:
        row = np.zeros(n)
        for var, coeff in constraint.lhs_terms.items():
            row[index[var]] += coeff
        rhs = constraint.rhs
        if constraint.sense is ConstraintSense.LE:
            ub_rows.append(row)
            ub_rhs.append(rhs)
        elif constraint.sense is ConstraintSense.GE:
            ub_rows.append(-row)
            ub_rhs.append(-rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(rhs)

    a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
    b_ub = np.asarray(ub_rhs, dtype=float)
    a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, n))
    b_eq = np.asarray(eq_rhs, dtype=float)

    lower = np.zeros(n)
    upper = np.zeros(n)
    integrality = np.zeros(n)
    for var, i in index.items():
        lo, hi = model.effective_bounds(var)
        lower[i] = lo
        upper[i] = hi
        integrality[i] = 1.0 if var.is_integer else 0.0

    return StandardForm(
        variables=variables,
        c=c,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        objective_sign=sign,
        objective_offset=offset,
    )
