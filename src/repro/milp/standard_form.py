"""Lowering a :class:`~repro.milp.model.Model` to sparse matrix standard form.

The standard form produced here matches the conventions of
``scipy.optimize.linprog``/``milp``:

* minimise ``c @ x``
* ``A_ub @ x <= b_ub``
* ``A_eq @ x == b_eq``
* ``lb <= x <= ub``
* ``integrality[i] == 1`` marks integer variables.

``A_ub``/``A_eq`` are :class:`~repro.milp.sparse.CsrMatrix` — SQPR models
are a few non-zeros per row across thousands of columns, and the fig. 5
scale experiments made dense lowering the dominant memory cost.  Callers
that need dense blocks use ``.toarray()``; dimension probes (``.shape``,
``.size``) behave like ``ndarray``.

Maximisation models are lowered by negating ``c``; callers use
:attr:`StandardForm.objective_sign` and :attr:`StandardForm.objective_offset`
to translate optimal values back to the model's original objective.

Lowering is cached per model revision: :func:`to_standard_form` returns the
same :class:`StandardForm` until the model is structurally modified (see
:attr:`Model.revision`; the objective sense is part of the cache key too).
The two-stage planner, the branch-and-bound solver and warm-start
feasibility checks all lower the same model, so the cache removes repeated
O(nnz) passes from the planning hot path.  Mutating ``Variable.lower`` /
``Variable.upper`` after a solve is safe: bound assignment on a registered
variable routes through a revision-bumping setter, so the cached
:class:`StandardForm` is invalidated exactly like any other structural
edit (:meth:`Model.fix_var` remains the way to fix a variable without
touching its declared bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import ModelError
from repro.milp.constraint import ConstraintSense
from repro.milp.model import Model, ObjectiveSense
from repro.milp.expression import Variable
from repro.milp.sparse import CsrMatrix


@dataclass
class StandardForm:
    """Matrix representation of a model, plus bookkeeping to map back.

    Instances are shared: :func:`to_standard_form` returns the same object
    for every call at the same model revision, so treat all fields as
    read-only.  Solvers that tighten bounds (branch and bound) must work on
    copies of ``lower``/``upper``, never mutate them in place.
    """

    variables: List[Variable]
    c: np.ndarray
    a_ub: CsrMatrix
    b_ub: np.ndarray
    a_eq: CsrMatrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    objective_sign: float
    objective_offset: float

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return len(self.variables)

    def index_of(self, var: Variable) -> int:
        """Column index of ``var``."""
        try:
            return self._index[var]
        except AttributeError:
            self._index: Dict[Variable, int] = {v: i for i, v in enumerate(self.variables)}
            return self._index[var]

    def model_objective(self, x: np.ndarray) -> float:
        """Translate a standard-form vector back to the model objective."""
        return self.objective_sign * float(self.c @ x) + self.objective_offset

    def assignment(self, x: np.ndarray) -> Dict[Variable, float]:
        """Build a variable->value mapping from a solution vector."""
        return {var: float(x[i]) for i, var in enumerate(self.variables)}

def to_standard_form(model: Model) -> StandardForm:
    """Lower ``model`` to :class:`StandardForm` (cached per model revision).

    Fixed variables (see :meth:`Model.fix_var`) are lowered as equal lower and
    upper bounds so that all backends honour them uniformly.
    """
    cached = getattr(model, "_form_cache", None)
    cache_key = (model.revision, model.sense)
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    form = _lower(model)
    model._form_cache = (cache_key, form)
    return form


def _lower(model: Model) -> StandardForm:
    variables = model.variables
    if not variables:
        raise ModelError("cannot lower a model with no variables")
    index = {var: i for i, var in enumerate(variables)}
    n = len(variables)

    # Objective: scipy always minimises, so a MAXIMIZE model flips sign.
    sign = -1.0 if model.sense is ObjectiveSense.MAXIMIZE else 1.0
    c = np.zeros(n)
    for var, coeff in model.objective.terms.items():
        c[index[var]] = sign * coeff
    offset = model.objective.constant

    ub_rows: List = []
    ub_rhs: List[float] = []
    eq_rows: List = []
    eq_rhs: List[float] = []

    for constraint in model.constraints:
        terms = constraint.lhs_terms
        cols = np.fromiter((index[var] for var in terms), dtype=np.int64, count=len(terms))
        vals = np.fromiter(terms.values(), dtype=float, count=len(terms))
        rhs = constraint.rhs
        if constraint.sense is ConstraintSense.LE:
            ub_rows.append((cols, vals))
            ub_rhs.append(rhs)
        elif constraint.sense is ConstraintSense.GE:
            ub_rows.append((cols, -vals))
            ub_rhs.append(-rhs)
        else:
            eq_rows.append((cols, vals))
            eq_rhs.append(rhs)

    a_ub = CsrMatrix.from_rows(ub_rows, n) if ub_rows else CsrMatrix.empty(n)
    b_ub = np.asarray(ub_rhs, dtype=float)
    a_eq = CsrMatrix.from_rows(eq_rows, n) if eq_rows else CsrMatrix.empty(n)
    b_eq = np.asarray(eq_rhs, dtype=float)

    lower = np.zeros(n)
    upper = np.zeros(n)
    integrality = np.zeros(n)
    for var, i in index.items():
        lo, hi = model.effective_bounds(var)
        lower[i] = lo
        upper[i] = hi
        integrality[i] = 1.0 if var.is_integer else 0.0

    return StandardForm(
        variables=variables,
        c=c,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        objective_sign=sign,
        objective_offset=offset,
    )
