"""The original dense two-phase tableau simplex, kept as a reference engine.

This is the seed repository's LP engine, unchanged apart from importing
:class:`~repro.milp.simplex.LpSolution` from its new home.  It is a
straightforward dense tableau implementation with Bland's rule: correct,
slow, and deliberately preserved so that

* the vectorized revised simplex in :mod:`repro.milp.simplex` can be
  cross-checked against it on random instances, and
* the fig. 5 planning-time benchmark can measure the speedup of the sparse
  solver against this baseline (``BENCH_fig5.json``).

It folds finite upper bounds into explicit ``x_i <= u_i`` rows, so its
tableau has ``O((m + n) * n)`` entries — the dense-tableau cost the sparse
rewrite removes.  Select it through ``solve_lp(..., engine="dense")``.
"""

from __future__ import annotations

import numpy as np

from repro.milp.simplex import LpSolution

_TOL = 1e-9
_MAX_ITER_FACTOR = 50


def _fold_bounds_into_rows(c, a_ub, b_ub, a_eq, b_eq, lower, upper):
    """Shift variables so every variable has lower bound 0.

    Returns the shifted data plus the shift vector, and appends upper-bound
    rows ``x_i <= upper_i - lower_i`` for finite upper bounds.  Variables
    with infinite lower bounds are not supported; the modelling layer in
    this package always produces finite lower bounds (>= 0 or fixed
    values), so we simply assert that here.
    """
    n = len(c)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if np.any(~np.isfinite(lower)):
        raise ValueError("simplex backend requires finite lower bounds")
    shift = lower.copy()
    b_ub = b_ub - a_ub @ shift if a_ub.size else b_ub.copy()
    b_eq = b_eq - a_eq @ shift if a_eq.size else b_eq.copy()

    extra_rows = []
    extra_rhs = []
    span = upper - lower
    for i in range(n):
        if np.isfinite(span[i]):
            row = np.zeros(n)
            row[i] = 1.0
            extra_rows.append(row)
            extra_rhs.append(span[i])
    if extra_rows:
        a_ub = np.vstack([a_ub, np.vstack(extra_rows)]) if a_ub.size else np.vstack(extra_rows)
        b_ub = np.concatenate([b_ub, np.asarray(extra_rhs)])
    return c, a_ub, b_ub, a_eq, b_eq, shift


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Perform a pivot on (row, col) in place."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: np.ndarray, num_cols: int, max_iter: int) -> str:
    """Run the primal simplex on ``tableau`` until optimality or failure.

    The last row of the tableau holds the (negated) reduced costs and the
    last column holds the right-hand side.  Uses Bland's anti-cycling rule.
    """
    for _ in range(max_iter):
        cost_row = tableau[-1, :num_cols]
        entering = -1
        for j in range(num_cols):
            if cost_row[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return "optimal"
        ratios_col = tableau[:-1, entering]
        rhs = tableau[:-1, -1]
        best_ratio = np.inf
        leaving = -1
        for i in range(len(rhs)):
            if ratios_col[i] > _TOL:
                ratio = rhs[i] / ratios_col[i]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded"
        _pivot(tableau, basis, leaving, entering)
    return "iteration_limit"


def solve_lp_dense(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> LpSolution:
    """Minimise ``c @ x`` subject to the given constraints and bounds."""
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, len(c)) if np.size(a_ub) else np.zeros((0, len(c)))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, len(c)) if np.size(a_eq) else np.zeros((0, len(c)))
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)

    c, a_ub, b_ub, a_eq, b_eq, shift = _fold_bounds_into_rows(
        c, a_ub, b_ub, a_eq, b_eq, lower, upper
    )
    n = len(c)

    # Convert <= rows with negative rhs and == rows into a canonical system
    # A x + slacks = b with b >= 0, then run phase 1 with artificials.
    rows = []
    rhs = []
    slack_count = a_ub.shape[0]
    total_cols = n + slack_count
    for i in range(a_ub.shape[0]):
        row = np.zeros(total_cols)
        row[:n] = a_ub[i]
        row[n + i] = 1.0
        b = b_ub[i]
        if b < 0:
            row = -row
            b = -b
        rows.append(row)
        rhs.append(b)
    for i in range(a_eq.shape[0]):
        row = np.zeros(total_cols)
        row[:n] = a_eq[i]
        b = b_eq[i]
        if b < 0:
            row = -row
            b = -b
        rows.append(row)
        rhs.append(b)

    if not rows:
        # Unconstrained apart from bounds: minimise each variable at its bound.
        x = np.where(c > 0, 0.0, np.where(np.isfinite(upper - shift), upper - shift, 0.0))
        x = x + shift
        return LpSolution("optimal", x, float(c @ x))

    a = np.vstack(rows)
    b = np.asarray(rhs, dtype=float)
    m = a.shape[0]
    max_iter = _MAX_ITER_FACTOR * (m + total_cols + 10)

    # Phase 1: add artificial variables and minimise their sum.
    art_cols = m
    tableau = np.zeros((m + 1, total_cols + art_cols + 1))
    tableau[:m, :total_cols] = a
    tableau[:m, total_cols : total_cols + art_cols] = np.eye(m)
    tableau[:m, -1] = b
    basis = np.array([total_cols + i for i in range(m)])
    # Phase-1 cost row: minimise sum of artificials.
    tableau[-1, total_cols : total_cols + art_cols] = 1.0
    for i in range(m):
        tableau[-1] -= tableau[i]

    status = _run_simplex(tableau, basis, total_cols + art_cols, max_iter)
    if status != "optimal":
        return LpSolution(status)
    if tableau[-1, -1] < -1e-6:
        return LpSolution("infeasible")

    # Drive remaining artificial variables out of the basis when possible.
    for i in range(m):
        if basis[i] >= total_cols:
            pivot_col = -1
            for j in range(total_cols):
                if abs(tableau[i, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)

    # Phase 2: replace the cost row with the true objective.
    phase2 = np.zeros((m + 1, total_cols + 1))
    phase2[:m, :total_cols] = tableau[:m, :total_cols]
    phase2[:m, -1] = tableau[:m, -1]
    phase2[-1, :n] = c
    for i in range(m):
        col = basis[i]
        if col < total_cols and abs(phase2[-1, col]) > _TOL:
            phase2[-1] -= phase2[-1, col] * phase2[i]

    status = _run_simplex(phase2, basis, total_cols, max_iter)
    if status == "unbounded":
        return LpSolution("unbounded")
    if status != "optimal":
        return LpSolution(status)

    x_full = np.zeros(total_cols)
    for i in range(m):
        if basis[i] < total_cols:
            x_full[basis[i]] = phase2[i, -1]
    x = x_full[:n] + shift
    return LpSolution("optimal", x, float(c @ x))
