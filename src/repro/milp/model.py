"""The :class:`Model` container tying variables, constraints and objective.

A :class:`Model` is a mutable builder object.  Solver backends consume it via
:mod:`repro.milp.standard_form`, which lowers the model to matrix form.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.exceptions import ModelError
from repro.milp.constraint import Constraint
from repro.milp.expression import LinExpr, Variable, VarType

Number = Union[int, float]


class ObjectiveSense(enum.Enum):
    """Whether the objective is maximised or minimised."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class Model:
    """A mixed-integer linear program under construction.

    Example
    -------
    >>> model = Model("toy", sense=ObjectiveSense.MAXIMIZE)
    >>> x = model.add_var("x", VarType.BINARY)
    >>> y = model.add_var("y", VarType.BINARY)
    >>> model.add_constr(x + y <= 1, name="choose_one")
    >>> model.set_objective(2 * x + y)
    """

    def __init__(self, name: str = "model", sense: ObjectiveSense = ObjectiveSense.MINIMIZE) -> None:
        self.name = name
        self.sense = sense
        self._variables: List[Variable] = []
        self._by_name: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._fixed_values: Dict[Variable, float] = {}
        self._warm_start: Dict[Variable, float] = {}
        self._basis_hint = None
        self._revision = 0

    # ------------------------------------------------------------------ revision
    @property
    def revision(self) -> int:
        """Monotonic counter bumped on every structural modification.

        Consumers that lower the model (``to_standard_form``) cache per
        revision, so repeated solves of an unchanged model skip re-lowering.
        The warm-start hint is *not* structural and does not bump it.
        """
        return self._revision

    def _bump_revision(self) -> None:
        self._revision += 1

    # ------------------------------------------------------------------ variables
    def add_var(
        self,
        name: str,
        var_type: VarType = VarType.CONTINUOUS,
        lower: Number = 0.0,
        upper: Number = math.inf,
    ) -> Variable:
        """Create a variable, register it and return it.

        Raises :class:`ModelError` if a variable with the same name exists.
        """
        if name in self._by_name:
            raise ModelError(f"variable {name!r} already exists in model {self.name!r}")
        var = Variable(name, var_type, lower, upper, index=len(self._variables))
        # Bound mutation after registration is structural: hook it into the
        # revision counter so cached standard forms are invalidated.
        var._on_bounds_change = self._bump_revision
        self._variables.append(var)
        self._by_name[name] = var
        self._bump_revision()
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for ``add_var(name, VarType.BINARY)``."""
        return self.add_var(name, VarType.BINARY)

    def add_continuous(self, name: str, lower: Number = 0.0, upper: Number = math.inf) -> Variable:
        """Shorthand for a continuous variable with the given bounds."""
        return self.add_var(name, VarType.CONTINUOUS, lower, upper)

    def get_var(self, name: str) -> Variable:
        """Look up a variable by name, raising :class:`ModelError` if missing."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"model {self.name!r} has no variable {name!r}") from None

    def has_var(self, name: str) -> bool:
        """Whether a variable named ``name`` exists."""
        return name in self._by_name

    @property
    def variables(self) -> List[Variable]:
        """All variables in creation order."""
        return list(self._variables)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self._variables)

    @property
    def num_integer_variables(self) -> int:
        """Number of integer/binary variables."""
        return sum(1 for v in self._variables if v.is_integer)

    # ---------------------------------------------------------------- constraints
    def add_constr(self, constraint: Constraint, name: Optional[str] = None) -> Constraint:
        """Register a constraint (optionally naming it) and return it."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constr expects a Constraint; build one by comparing "
                "expressions, e.g. `x + y <= 1`"
            )
        foreign = [v for v in constraint.lhs_terms if self._by_name.get(v.name) is not v]
        if foreign:
            names = ", ".join(v.name for v in foreign[:3])
            raise ModelError(
                f"constraint uses variables not registered in model {self.name!r}: {names}"
            )
        if name is not None:
            constraint.name = name
        self._constraints.append(constraint)
        self._bump_revision()
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], prefix: str = "") -> List[Constraint]:
        """Register many constraints, auto-naming them ``prefix[i]``."""
        added = []
        for i, constraint in enumerate(constraints):
            label = f"{prefix}[{i}]" if prefix else None
            added.append(self.add_constr(constraint, name=label))
        return added

    @property
    def constraints(self) -> List[Constraint]:
        """All constraints in insertion order."""
        return list(self._constraints)

    @property
    def num_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    # ------------------------------------------------------------------ objective
    def set_objective(self, expr: Union[LinExpr, Variable, Number], sense: Optional[ObjectiveSense] = None) -> None:
        """Set the objective expression (and optionally switch the sense)."""
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, expr)
        if not isinstance(expr, LinExpr):
            raise ModelError("objective must be a LinExpr, Variable or number")
        self._objective = expr
        if sense is not None:
            self.sense = sense
        self._bump_revision()

    @property
    def objective(self) -> LinExpr:
        """The current objective expression."""
        return self._objective

    # -------------------------------------------------------------------- fixing
    def fix_var(self, var: Variable, value: Number) -> None:
        """Fix ``var`` to ``value`` (used by SQPR's problem-reduction step).

        Fixing is implemented as a bound tightening recorded separately so it
        can be inspected (``fixed_values``) and is honoured by all backends.
        """
        value = float(value)
        if self._by_name.get(var.name) is not var:
            raise ModelError(f"cannot fix unknown variable {var.name!r}")
        if value < var.lower - 1e-9 or value > var.upper + 1e-9:
            raise ModelError(
                f"cannot fix {var.name!r} to {value}, outside bounds "
                f"[{var.lower}, {var.upper}]"
            )
        if var.is_integer and abs(value - round(value)) > 1e-9:
            raise ModelError(f"cannot fix integer variable {var.name!r} to {value}")
        self._fixed_values[var] = value
        self._bump_revision()

    @property
    def fixed_values(self) -> Mapping[Variable, float]:
        """Mapping of fixed variables to their values."""
        return dict(self._fixed_values)

    def effective_bounds(self, var: Variable) -> tuple:
        """Bounds of ``var`` after applying any fixing."""
        if var in self._fixed_values:
            value = self._fixed_values[var]
            return (value, value)
        return (var.lower, var.upper)

    # ---------------------------------------------------------------- warm start
    def set_warm_start(self, assignment: Mapping[Variable, float]) -> None:
        """Provide a (possibly partial) starting assignment hint."""
        self._warm_start = dict(assignment)

    @property
    def warm_start(self) -> Mapping[Variable, float]:
        """The warm-start hint (possibly empty)."""
        return dict(self._warm_start)

    def set_basis_hint(self, basis) -> None:
        """Attach an opaque simplex basis from a previous solve of a model
        with the same structure (same rows and columns; bounds and
        right-hand sides may differ).

        The branch-and-bound backend resumes its root relaxation from this
        basis with the dual simplex; a structurally mismatched hint is
        detected and silently discarded by the LP engine, so setting a
        stale hint is always safe.  Like ``set_warm_start`` this is a
        non-structural hint and does not bump the model revision.
        """
        self._basis_hint = basis

    @property
    def basis_hint(self):
        """The simplex basis hint, or ``None``."""
        return self._basis_hint

    # -------------------------------------------------------------- evaluation
    def objective_value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the objective under ``assignment``."""
        return self._objective.value(assignment)

    def is_feasible(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check bounds, integrality, fixings and all constraints."""
        for var in self._variables:
            value = float(assignment.get(var, 0.0))
            lower, upper = self.effective_bounds(var)
            if value < lower - tol or value > upper + tol:
                return False
            if var.is_integer and abs(value - round(value)) > tol:
                return False
        return all(c.is_satisfied(assignment, tol) for c in self._constraints)

    def summary(self) -> str:
        """One-line human-readable size summary."""
        return (
            f"Model {self.name!r}: {self.num_variables} vars "
            f"({self.num_integer_variables} integer), "
            f"{self.num_constraints} constraints, sense={self.sense.value}"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"
