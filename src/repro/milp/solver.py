"""The :class:`MilpSolver` facade used by the planners.

SQPR's contract with its solver is simple: "here is a MILP and a timeout;
give me the best feasible solution you can find".  The facade hides which
backend provides that service:

* ``SolverBackend.HIGHS`` — ``scipy.optimize.milp`` (default when available),
* ``SolverBackend.BRANCH_AND_BOUND`` — the pure-Python solver in
  :mod:`repro.milp.branch_and_bound`,
* ``SolverBackend.AUTO`` — HiGHS when importable, otherwise branch and bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import SolverError
from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound
from repro.milp.model import Model
from repro.milp.result import SolveResult, SolveStatus
from repro.milp.scipy_backend import highs_available, solve_with_highs


class SolverBackend(enum.Enum):
    """Which MILP engine to use."""

    AUTO = "auto"
    HIGHS = "highs"
    BRANCH_AND_BOUND = "bnb"


@dataclass
class MilpSolver:
    """Facade over the available MILP backends.

    Parameters
    ----------
    backend:
        Desired backend; ``AUTO`` picks HiGHS when available.
    time_limit:
        Default per-solve wall-clock limit in seconds (``None`` = unlimited).
        This models the per-query CPLEX timeout in the paper.
    mip_gap:
        Relative optimality gap at which the search may stop.
    warm_start:
        Let the branch-and-bound backend seed its incumbent from the
        model's warm-start hint and re-start child-node LPs from the parent
        basis.  HiGHS ignores this (scipy exposes no warm-start API).
    lp_engine:
        LP relaxation engine for the branch-and-bound backend (``"auto"``,
        ``"scipy"``, ``"simplex"``, ``"dense"`` — see
        :func:`repro.milp.lp_backend.solve_lp`).  Pin ``"simplex"`` to get
        dual-simplex warm starts, basis hand-back (``SolveResult.root_basis``)
        and solver counters in environments where scipy would otherwise be
        auto-selected.  HiGHS ignores this.
    """

    backend: SolverBackend = SolverBackend.AUTO
    time_limit: Optional[float] = None
    mip_gap: float = 1e-6
    warm_start: bool = True
    lp_engine: str = "auto"

    def resolved_backend(self) -> SolverBackend:
        """The concrete backend that will be used for the next solve."""
        if self.backend is SolverBackend.AUTO:
            return SolverBackend.HIGHS if highs_available() else SolverBackend.BRANCH_AND_BOUND
        return self.backend

    def solve(self, model: Model, time_limit: Optional[float] = None) -> SolveResult:
        """Solve ``model`` and return a :class:`SolveResult`.

        ``time_limit`` overrides the solver's default limit for this call.
        The returned result always carries the best incumbent found, even if
        optimality could not be proven within the budget.
        """
        limit = time_limit if time_limit is not None else self.time_limit
        backend = self.resolved_backend()
        if backend is SolverBackend.HIGHS:
            if not highs_available():
                raise SolverError("HiGHS backend requested but scipy.optimize.milp is missing")
            return solve_with_highs(model, time_limit=limit, mip_rel_gap=self.mip_gap)
        options = BnbOptions(
            time_limit=limit,
            relative_gap=self.mip_gap,
            warm_start=self.warm_start,
            lp_engine=self.lp_engine,
        )
        return solve_branch_and_bound(model, options)

    def is_usable_status(self, result: SolveResult) -> bool:
        """Whether a result carries a solution the planner may deploy."""
        return result.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) and result.has_solution
