"""MILP backend delegating to ``scipy.optimize.milp`` (HiGHS).

HiGHS is the fastest solver available in this environment and plays the role
of CPLEX in the original paper: it is handed the model together with a time
limit and asked for the best solution it can find in that budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.milp.model import Model
from repro.milp.result import SolveResult, SolveStatus
from repro.milp.standard_form import to_standard_form
from repro.utils.timer import Stopwatch

try:  # pragma: no cover - depends on environment
    from scipy.optimize import Bounds, LinearConstraint, milp as _scipy_milp
    from scipy.sparse import csr_matrix as _scipy_csr
except ImportError:  # pragma: no cover
    _scipy_milp = None
    Bounds = None
    LinearConstraint = None
    _scipy_csr = None


def highs_available() -> bool:
    """Whether the ``scipy.optimize.milp`` backend can be used."""
    return _scipy_milp is not None


def solve_with_highs(
    model: Model,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 1e-6,
) -> SolveResult:
    """Solve ``model`` with HiGHS via scipy, honouring ``time_limit``."""
    if not highs_available():
        raise SolverError("scipy.optimize.milp is not available in this environment")

    watch = Stopwatch()
    form = to_standard_form(model)

    # Hand HiGHS the CSR arrays directly — SQPR models are large and sparse,
    # so densifying them here would dominate the solve's memory footprint.
    def _matrix(block):
        if _scipy_csr is not None:
            return _scipy_csr(block.tocsr_arrays(), shape=block.shape)
        return block.toarray()

    constraints = []
    if form.a_ub.size:
        constraints.append(LinearConstraint(_matrix(form.a_ub), -np.inf, form.b_ub))
    if form.a_eq.size:
        constraints.append(LinearConstraint(_matrix(form.a_eq), form.b_eq, form.b_eq))

    bounds = Bounds(form.lower, form.upper)
    options = {"presolve": True, "mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = max(1e-3, float(time_limit))

    result = _scipy_milp(
        c=form.c,
        constraints=constraints or None,
        integrality=form.integrality,
        bounds=bounds,
        options=options,
    )

    elapsed = watch.elapsed()
    # scipy milp statuses: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.x is not None:
        values = form.assignment(np.asarray(result.x, dtype=float))
        objective = form.objective_sign * float(result.fun) + form.objective_offset
        bound = None
        if getattr(result, "mip_dual_bound", None) is not None:
            bound = form.objective_sign * float(result.mip_dual_bound) + form.objective_offset
        status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.FEASIBLE
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            bound=bound,
            solve_time=elapsed,
            backend="highs",
        )
    if result.status == 2:
        return SolveResult(SolveStatus.INFEASIBLE, solve_time=elapsed, backend="highs")
    if result.status == 3:
        return SolveResult(SolveStatus.UNBOUNDED, solve_time=elapsed, backend="highs")
    if result.status == 1:
        return SolveResult(SolveStatus.TIMEOUT, solve_time=elapsed, backend="highs")
    return SolveResult(SolveStatus.ERROR, solve_time=elapsed, backend="highs")
