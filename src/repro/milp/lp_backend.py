"""LP relaxation solving, dispatching to scipy (HiGHS) or the in-repo engines.

The branch-and-bound solver only needs the answer to one question per node:
"what is the optimum of this LP (with these bounds)?".  This module hides
whether that answer comes from ``scipy.optimize.linprog``, the vectorized
sparse revised simplex in :mod:`repro.milp.simplex`, or the dense reference
tableau in :mod:`repro.milp.dense_simplex`.

Constraint matrices may be passed as
:class:`~repro.milp.sparse.CsrMatrix` (what
:func:`repro.milp.standard_form.to_standard_form` now produces) or as dense
arrays; each engine receives the layout it can consume.  ``warm_basis``
carries a :class:`~repro.milp.simplex.SimplexBasis` from a previous solve
of the same system — only the sparse simplex engine uses it, the others
silently ignore it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.milp.dense_simplex import solve_lp_dense
from repro.milp.simplex import LpSolution, SimplexBasis, solve_lp_simplex
from repro.milp.sparse import CsrMatrix, as_csr

try:  # pragma: no cover - exercised implicitly depending on environment
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    _scipy_linprog = None

try:  # pragma: no cover - optional, used to hand scipy sparse matrices
    from scipy.sparse import csr_matrix as _scipy_csr
except ImportError:  # pragma: no cover
    _scipy_csr = None

_ENGINES = ("auto", "scipy", "simplex", "dense")


def scipy_available() -> bool:
    """Whether ``scipy.optimize.linprog`` can be used."""
    return _scipy_linprog is not None


def solve_lp(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    a_eq,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    engine: str = "auto",
    warm_basis: Optional[SimplexBasis] = None,
    method: str = "auto",
) -> LpSolution:
    """Minimise ``c @ x`` subject to the given system.

    Parameters
    ----------
    engine:
        ``"auto"`` (scipy when importable, else the sparse simplex),
        ``"scipy"``, ``"simplex"`` (sparse revised simplex, supports
        ``warm_basis``) or ``"dense"`` (the seed repository's dense tableau,
        kept as a reference/benchmark baseline).
    warm_basis:
        Optional :class:`SimplexBasis` from a previous solve of the same
        system; used by the ``simplex`` engine only.
    method:
        How the simplex engine resumes a warm basis: ``"auto"`` (dual
        simplex first, then primal repair), ``"dual"`` or ``"primal"``.
        Ignored by the other engines.
    """
    if engine not in _ENGINES:
        raise SolverError(f"unknown LP engine {engine!r}")
    if engine == "scipy" and not scipy_available():
        raise SolverError("scipy LP engine requested but scipy is not installed")
    use_scipy = engine == "scipy" or (engine == "auto" and scipy_available())
    if use_scipy:
        return _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
    if engine == "dense":
        n = len(c)
        a_ub = a_ub.toarray() if isinstance(a_ub, CsrMatrix) else np.asarray(a_ub, dtype=float)
        a_eq = a_eq.toarray() if isinstance(a_eq, CsrMatrix) else np.asarray(a_eq, dtype=float)
        return solve_lp_dense(c, a_ub.reshape(-1, n), b_ub, a_eq.reshape(-1, n), b_eq, lower, upper)
    return solve_lp_simplex(
        c, a_ub, b_ub, a_eq, b_eq, lower, upper, warm_basis=warm_basis, method=method
    )


def _to_scipy_matrix(matrix, num_cols: int):
    """Convert to something ``linprog`` accepts, staying sparse when possible."""
    csr = as_csr(matrix, num_cols)
    if csr.shape[0] == 0:
        return None
    if _scipy_csr is not None:
        return _scipy_csr(csr.tocsr_arrays(), shape=csr.shape)
    return csr.toarray()


def _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper) -> LpSolution:
    n = len(c)
    bounds = list(zip(lower, [u if np.isfinite(u) else None for u in upper]))
    a_ub_mat = _to_scipy_matrix(a_ub, n)
    a_eq_mat = _to_scipy_matrix(a_eq, n)
    result = _scipy_linprog(
        c,
        A_ub=a_ub_mat,
        b_ub=b_ub if a_ub_mat is not None else None,
        A_eq=a_eq_mat,
        b_eq=b_eq if a_eq_mat is not None else None,
        bounds=bounds,
        method="highs",
    )
    # scipy status codes: 0 ok, 1 iteration limit, 2 infeasible, 3 unbounded.
    if result.status == 0:
        return LpSolution("optimal", np.asarray(result.x, dtype=float), float(result.fun))
    if result.status == 2:
        return LpSolution("infeasible")
    if result.status == 3:
        return LpSolution("unbounded")
    return LpSolution("iteration_limit")
