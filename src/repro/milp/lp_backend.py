"""LP relaxation solving, dispatching to scipy (HiGHS) or the in-repo simplex.

The branch-and-bound solver only needs the answer to one question per node:
"what is the optimum of this LP (with these bounds)?".  This module hides
whether that answer comes from ``scipy.optimize.linprog`` or from the pure
Python simplex in :mod:`repro.milp.simplex`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.milp.simplex import LpSolution, solve_lp_simplex

try:  # pragma: no cover - exercised implicitly depending on environment
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    _scipy_linprog = None


def scipy_available() -> bool:
    """Whether ``scipy.optimize.linprog`` can be used."""
    return _scipy_linprog is not None


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    engine: str = "auto",
) -> LpSolution:
    """Minimise ``c @ x`` subject to the given system.

    Parameters
    ----------
    engine:
        ``"auto"`` (scipy when importable, else simplex), ``"scipy"`` or
        ``"simplex"``.
    """
    if engine not in ("auto", "scipy", "simplex"):
        raise SolverError(f"unknown LP engine {engine!r}")
    use_scipy = engine == "scipy" or (engine == "auto" and scipy_available())
    if engine == "scipy" and not scipy_available():
        raise SolverError("scipy LP engine requested but scipy is not installed")
    if use_scipy:
        return _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
    return solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)


def _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper) -> LpSolution:
    bounds = list(zip(lower, [u if np.isfinite(u) else None for u in upper]))
    result = _scipy_linprog(
        c,
        A_ub=a_ub if np.size(a_ub) else None,
        b_ub=b_ub if np.size(b_ub) else None,
        A_eq=a_eq if np.size(a_eq) else None,
        b_eq=b_eq if np.size(b_eq) else None,
        bounds=bounds,
        method="highs",
    )
    # scipy status codes: 0 ok, 1 iteration limit, 2 infeasible, 3 unbounded.
    if result.status == 0:
        return LpSolution("optimal", np.asarray(result.x, dtype=float), float(result.fun))
    if result.status == 2:
        return LpSolution("infeasible")
    if result.status == 3:
        return LpSolution("unbounded")
    return LpSolution("iteration_limit")
