"""A minimal CSR sparse matrix for the LP/MILP core.

SQPR models are extremely sparse: each constraint row touches a handful of
the thousands of d/x/y/z/p columns (the acyclicity rows have three non-zeros,
the availability rows ``O(num_hosts)``).  Lowering them to dense ``ndarray``
rows makes both memory and per-iteration solver cost quadratic in model
size, which is exactly the bottleneck the fig. 5 scalability experiments
expose.  This module provides the small, dependency-free CSR container the
:mod:`repro.milp.standard_form` lowering and the revised simplex operate on.

Only the operations the solver stack needs are implemented:

* ``matvec`` / ``rmatvec`` — ``A @ x`` and ``y @ A`` via ``np.bincount``
  (no Python-level loops),
* ``column`` — the (rows, values) of one column, backed by a lazily built
  CSC twin, used to price the entering column in the revised simplex,
* ``vstack`` / ``toarray`` / ``tocsr_arrays`` — assembly and export helpers
  (``tocsr_arrays`` feeds ``scipy.sparse.csr_matrix`` without a copy).

``shape`` and ``size`` mimic ``numpy.ndarray`` so existing callers that only
probe dimensions (``form.a_ub.shape``, ``form.a_ub.size``) keep working.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class CsrMatrix:
    """An immutable sparse matrix in compressed-sparse-row layout."""

    __slots__ = ("data", "indices", "indptr", "shape", "_csc", "_row_ids")

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} does not match {self.shape[0]} rows"
            )
        self._csc = None
        self._row_ids = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[Sequence[int], Sequence[float]]], num_cols: int) -> "CsrMatrix":
        """Build from per-row ``(column_indices, values)`` pairs."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        cols: List[Sequence[int]] = []
        vals: List[Sequence[float]] = []
        for i, (row_cols, row_vals) in enumerate(rows):
            indptr[i + 1] = indptr[i] + len(row_cols)
            cols.append(row_cols)
            vals.append(row_vals)
        indices = (
            np.concatenate([np.asarray(c, dtype=np.int64) for c in cols])
            if cols and indptr[-1]
            else np.zeros(0, dtype=np.int64)
        )
        data = (
            np.concatenate([np.asarray(v, dtype=float) for v in vals])
            if vals and indptr[-1]
            else np.zeros(0)
        )
        return cls(data, indices, indptr, (len(rows), num_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CsrMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = dense != 0.0
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        row_ids, col_ids = np.nonzero(mask)
        return cls(dense[row_ids, col_ids], col_ids, indptr, dense.shape)

    @classmethod
    def empty(cls, num_cols: int) -> "CsrMatrix":
        """A matrix with zero rows (used for absent constraint blocks)."""
        return cls(np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64), (0, num_cols))

    @staticmethod
    def vstack(blocks: Iterable["CsrMatrix"]) -> "CsrMatrix":
        """Stack matrices with equal column counts vertically."""
        blocks = list(blocks)
        if not blocks:
            raise ValueError("vstack needs at least one block")
        num_cols = blocks[0].shape[1]
        for b in blocks:
            if b.shape[1] != num_cols:
                raise ValueError("vstack requires equal column counts")
        data = np.concatenate([b.data for b in blocks]) if blocks else np.zeros(0)
        indices = np.concatenate([b.indices for b in blocks])
        indptr = [np.zeros(1, dtype=np.int64)]
        offset = 0
        for b in blocks:
            indptr.append(b.indptr[1:] + offset)
            offset += b.indptr[-1]
        return CsrMatrix(
            data, indices, np.concatenate(indptr), (sum(b.shape[0] for b in blocks), num_cols)
        )

    # --------------------------------------------------------------- properties
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return len(self.data)

    @property
    def size(self) -> int:
        """Logical element count ``rows * cols`` (``ndarray``-compatible)."""
        return self.shape[0] * self.shape[1]

    @property
    def row_ids(self) -> np.ndarray:
        """Row id of every stored entry (cached; used by matvec)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_ids

    # --------------------------------------------------------------- operations
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` as a dense vector of length ``rows``."""
        if self.nnz == 0:
            return np.zeros(self.shape[0])
        contrib = self.data * x[self.indices]
        return np.bincount(self.row_ids, weights=contrib, minlength=self.shape[0])

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``y @ A`` as a dense vector of length ``cols``."""
        if self.nnz == 0:
            return np.zeros(self.shape[1])
        contrib = self.data * y[self.row_ids]
        return np.bincount(self.indices, weights=contrib, minlength=self.shape[1])

    def _build_csc(self) -> None:
        order = np.argsort(self.indices, kind="stable")
        col_rows = self.row_ids[order]
        col_data = self.data[order]
        col_counts = np.bincount(self.indices, minlength=self.shape[1])
        col_indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.cumsum(col_counts, out=col_indptr[1:])
        self._csc = (col_data, col_rows, col_indptr)

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of column ``j``."""
        if self._csc is None:
            self._build_csc()
        col_data, col_rows, col_indptr = self._csc
        start, end = col_indptr[j], col_indptr[j + 1]
        return col_rows[start:end], col_data[start:end]

    def rmatvec_window(self, y: np.ndarray, start: int, stop: int) -> np.ndarray:
        """``y @ A[:, start:stop]`` as a dense vector of length ``stop - start``.

        Backed by the lazily built CSC twin, so the cost is proportional to
        the non-zeros of the *window*, not of the whole matrix — this is
        what makes partial pricing in the revised simplex cheaper than a
        full ``rmatvec`` per iteration.
        """
        if self._csc is None:
            self._build_csc()
        col_data, col_rows, col_indptr = self._csc
        lo, hi = int(col_indptr[start]), int(col_indptr[stop])
        if lo == hi:
            return np.zeros(stop - start)
        contrib = col_data[lo:hi] * y[col_rows[lo:hi]]
        cols = self._csc_col_ids(lo, hi, start, stop)
        return np.bincount(cols, weights=contrib, minlength=stop - start)

    def _csc_col_ids(self, lo: int, hi: int, start: int, stop: int) -> np.ndarray:
        """Window-relative column id of each CSC entry in ``[lo, hi)``."""
        _, _, col_indptr = self._csc
        return np.repeat(
            np.arange(stop - start, dtype=np.int64),
            np.diff(col_indptr[start : stop + 1]),
        )

    def toarray(self) -> np.ndarray:
        """Materialise as a dense 2-D array."""
        dense = np.zeros(self.shape)
        if self.nnz:
            dense[self.row_ids, self.indices] = self.data
        return dense

    def tocsr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(data, indices, indptr)`` triple (scipy-compatible)."""
        return self.data, self.indices, self.indptr

    def __repr__(self) -> str:
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"


def as_csr(matrix, num_cols: int) -> CsrMatrix:
    """Coerce ``matrix`` (CsrMatrix, dense array, or empty) to CSR."""
    if isinstance(matrix, CsrMatrix):
        return matrix
    arr = np.asarray(matrix, dtype=float)
    if arr.size == 0:
        return CsrMatrix.empty(num_cols)
    return CsrMatrix.from_dense(arr.reshape(-1, num_cols))
