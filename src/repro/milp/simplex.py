"""A vectorized revised simplex for sparse LPs with bounded variables.

This replaces the seed repository's dense two-phase tableau (preserved in
:mod:`repro.milp.dense_simplex` as a reference engine).  Four structural
changes make it the fast pure-Python path the branch-and-bound solver runs
on when scipy is unavailable — and the engine the fig. 5 planning-time
benchmark measures:

* **Bounded variables are native.**  The dense tableau folded every finite
  upper bound into an explicit ``x_i <= u_i`` row, roughly doubling the row
  count on the binary-heavy SQPR models.  Here nonbasic variables rest at
  either bound and bound flips are a constant-time move, so the working
  basis stays at ``m = |A_ub| + |A_eq|`` rows.
* **Revised, not tableau.**  Only the ``m × m`` basis inverse is
  maintained (product-form eta updates, periodic refactorisation); pricing
  runs over the sparse constraint matrix (:class:`~repro.milp.sparse.CsrMatrix`)
  with no Python-level loops.
* **Partial + Devex pricing.**  The primal engine prices with an
  approximate steepest-edge rule (Devex reference weights, incrementally
  maintained from the pivot row) over a rotating *window* of columns;
  reduced costs outside the window are only computed when the window runs
  dry, so a pricing pass touches ``O(nnz_window)`` instead of ``O(nnz)``.
  Dantzig pricing remains available (``pricing="dantzig"``) and the engine
  still switches to Bland's rule after a stall, so termination is
  unchanged — pricing only affects the pivot *path*, never the optimum.
* **Dual simplex warm starts.**  :func:`solve_lp_simplex` accepts the
  :class:`SimplexBasis` returned by a previous solve on the same system
  (possibly with different variable bounds or right-hand sides).  A warm
  basis is first resumed with the **bounded-variable dual simplex**
  (:meth:`_BoundedSimplex.run_dual`): reduced costs do not depend on bounds
  or the RHS, so the incumbent basis is dual-feasible after at most a few
  nonbasic bound flips and the re-solve walks straight back to primal
  feasibility — the textbook move for re-planning a perturbed model
  (branch-and-bound bound flips, churn re-solves).  The dual ratio test is
  *bound-flipping* (long-step): breakpoint variables whose reduced cost
  crosses zero are flipped to their other bound while the leaving row's
  infeasibility still shrinks, which on the binary-heavy SQPR models
  absorbs most of the perturbation without a single basis change.  When
  the dual resume stalls, the engine falls back to the composite primal
  phase-1 repair (now under an explicit iteration budget), and finally to
  a cold start — so warm-started solves always return the same optimum a
  cold solve would.

Every solve reports a :class:`SolverCounters` record (phase-1/primal/dual
iterations, bound flips, full pricing passes, refactorisations, dual
resumes, repair iterations, cold fallbacks) so callers up the stack —
branch and bound, the planner, the admission service's metrics registry —
can observe what a re-plan actually cost.

The entry point keeps the package-wide standard form (minimise ``c @ x``
s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``lb <= x <= ub``; lower
bounds must be finite).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, Optional

import numpy as np

from repro.milp.sparse import CsrMatrix, as_csr

_DUAL_TOL = 1e-7
_PIVOT_TOL = 1e-9
_FEAS_TOL = 1e-7
_REFACTOR_EVERY = 100
_MAX_ITER_FACTOR = 200
_MAX_REPAIR_ROUNDS = 5
#: Composite phase-1 repair budget: iterations granted per basic variable
#: (with a small floor) before the repair gives up and the caller falls
#: back to a cold start.  Before this cap a stalled repair could burn the
#: engine's whole iteration allowance and was only detectable by timing.
_REPAIR_ITER_PER_ROW = 4
_REPAIR_ITER_FLOOR = 100
#: Devex weights above this trigger a reference-framework reset.
_DEVEX_RESET = 1e7


@dataclass
class SolverCounters:
    """Per-solve iteration/maintenance counters, reported on every solution.

    One record covers one :func:`solve_lp_simplex` call; branch and bound
    sums the records of all node LPs into ``SolveResult.lp_counters`` and
    the planner forwards that dict through outcome extras, so re-plan cost
    is observable per admission and per churn event.
    """

    phase1_iterations: int = 0
    primal_iterations: int = 0
    dual_iterations: int = 0
    bound_flips: int = 0
    #: Full-span pricing scans — partial pricing only pays one when the
    #: current window has no eligible column (or Bland's rule is active).
    pricing_passes: int = 0
    refactorisations: int = 0
    #: Warm starts resumed to optimality by the dual simplex (skips phase 1).
    dual_resumes: int = 0
    #: Warm starts recovered by the composite primal phase-1 repair.
    warm_repairs: int = 0
    #: Iterations spent inside the composite phase-1 repair.
    repair_iterations: int = 0
    #: Warm starts that had to be thrown away for a cold start.
    cold_fallbacks: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain ``name -> value`` dict."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def add(self, other: "SolverCounters") -> None:
        """Accumulate ``other`` into this record in place."""
        for f in dataclass_fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


#: Counter field names, importable by metric consumers (the admission
#: service pre-creates one monotonic counter per field).
SOLVER_COUNTER_FIELDS = tuple(f.name for f in dataclass_fields(SolverCounters))


@dataclass
class SimplexBasis:
    """An opaque warm-start token: basic column ids + nonbasic bound sides.

    Valid for any solve over the *same* constraint matrix (same rows, same
    columns); variable bounds and right-hand sides may differ between
    solves, which is exactly the branch-and-bound / perturbation re-solve
    use case.

    ``binv`` optionally carries the basis inverse from the solve that
    produced this token.  Re-installing a basis costs an ``O(m^3)``
    factorisation; with ``binv`` attached the next solve skips it (after an
    ``O(m^2)`` validity probe).  Holders that keep many tokens alive (the
    branch-and-bound heap) set ``binv = None`` on all but the most recent
    one to bound memory at a single ``m x m`` matrix.

    ``weights`` optionally carries the Devex reference weights from the
    producing solve; a consumer whose column count matches resumes pricing
    with them instead of a flat reference framework.  Like ``binv`` they
    are a pure accelerant — dropping them never changes the optimum.
    """

    basic: np.ndarray
    at_upper: np.ndarray
    binv: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None

    def copy(self) -> "SimplexBasis":
        """An independent copy (solves mutate their working basis)."""
        return SimplexBasis(
            self.basic.copy(),
            self.at_upper.copy(),
            None if self.binv is None else self.binv.copy(),
            None if self.weights is None else self.weights.copy(),
        )


@dataclass
class LpSolution:
    """Result of an LP solve (shared by the simplex and scipy backends)."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    basis: Optional[SimplexBasis] = None
    iterations: int = 0
    #: Iteration/maintenance counters (simplex engine only; ``None`` from
    #: the scipy and dense backends).
    counters: Optional[SolverCounters] = None
    #: How a provided warm basis was used: ``"dual_resume"``,
    #: ``"warm_repair"``, ``"cold_fallback"``, or ``""`` (no warm basis).
    warm_status: str = ""

    @property
    def is_optimal(self) -> bool:
        """Whether an optimal solution is available."""
        return self.status == "optimal" and self.x is not None


class _BoundedSimplex:
    """Revised primal/dual simplex over ``A x = b`` with ``lb <= x <= ub``.

    The caller owns problem construction (slacks, artificials) and phase
    sequencing; this class only iterates from an installed basis under the
    currently installed bounds.
    """

    def __init__(self, a: CsrMatrix, b: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> None:
        self.a = a
        self.b = b
        self.lb = lb
        self.ub = ub
        self.m, self.num_cols = a.shape
        self.max_iter = _MAX_ITER_FACTOR * (self.m + self.num_cols + 10)
        self.iterations = 0
        self.basic: np.ndarray = np.zeros(0, dtype=np.int64)
        self.basic_mask: np.ndarray = np.zeros(self.num_cols, dtype=bool)
        self.at_upper: np.ndarray = np.zeros(self.num_cols, dtype=bool)
        self.binv: np.ndarray = np.zeros((self.m, self.m))
        self.x_basic: np.ndarray = np.zeros(self.m)
        self.counters = SolverCounters()
        self.pricing = "devex"
        # Devex reference weights: per column for primal pricing, per basis
        # row for dual pricing.  Reset to the unit framework when they grow
        # past _DEVEX_RESET (the standard safeguard for the approximation).
        self.ref_weights: np.ndarray = np.ones(self.num_cols)
        self.dual_weights: np.ndarray = np.ones(max(1, self.m))
        # Partial pricing window: small models keep one window (= classic
        # full pricing); large models rotate quarters.
        self._window = max(256, -(-self.num_cols // 4))
        self._window_start = 0

    # ------------------------------------------------------------ basis install
    def _basis_matvec(self, basic: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``B @ y`` assembled column-by-column from the sparse matrix."""
        out = np.zeros(self.m)
        for k in range(self.m):
            rows, vals = self.a.column(int(basic[k]))
            out[rows] += vals * y[k]
        return out

    def set_basis(
        self,
        basic: np.ndarray,
        at_upper: np.ndarray,
        binv: Optional[np.ndarray] = None,
    ) -> bool:
        """Install a basis, rebuilding ``B^-1`` and the basic values.

        ``binv`` short-circuits the factorisation with a known inverse for
        this exact basis (validated with a cheap probe, then copied so the
        caller's matrix is never mutated by subsequent pivots).  Returns
        ``False`` (leaving the previous state untouched) when the candidate
        basis is out of range, singular or too ill-conditioned.
        """
        basic = np.asarray(basic, dtype=np.int64)
        if len(basic) != self.m or (self.m and (basic.min() < 0 or basic.max() >= self.num_cols)):
            return False
        probe = np.ones(self.m)
        if binv is not None and binv.shape == (self.m, self.m):
            if np.max(np.abs(self._basis_matvec(basic, binv @ probe) - probe)) > 1e-4:
                return False
            binv = binv.copy()
        else:
            b_mat = np.zeros((self.m, self.m))
            singleton = True
            for k in range(self.m):
                rows, vals = self.a.column(int(basic[k]))
                b_mat[rows, k] = vals
                singleton = singleton and len(rows) == 1
            if singleton:
                # Common fast path: a slack/artificial basis is a scaled
                # permutation; its inverse is direct — no O(m^3) factorize.
                diag_rows = b_mat.nonzero()[0] if self.m else np.zeros(0, dtype=np.int64)
                if len(np.unique(diag_rows)) != self.m:
                    return False
                binv = np.zeros((self.m, self.m))
                for k in range(self.m):
                    row = int(np.argmax(np.abs(b_mat[:, k])))
                    binv[k, row] = 1.0 / b_mat[row, k]
            else:
                try:
                    binv = np.linalg.inv(b_mat)
                except np.linalg.LinAlgError:
                    return False
                if not np.all(np.isfinite(binv)):
                    return False
                # O(m^2) conditioning probe instead of a full O(m^3)
                # residual: garbage inverses fail this loudly.
                if self.m and np.max(np.abs(b_mat @ (binv @ probe) - probe)) > 1e-4:
                    return False
        self.basic = basic.copy()
        self.basic_mask = np.zeros(self.num_cols, dtype=bool)
        self.basic_mask[self.basic] = True
        self.at_upper = np.asarray(at_upper, dtype=bool).copy()
        self.at_upper[~np.isfinite(self.ub)] = False
        self.at_upper[self.basic_mask] = False
        self.binv = binv
        self.recompute_basic_values()
        return True

    def _nonbasic_x(self) -> np.ndarray:
        x = np.where(self.at_upper, self.ub, self.lb)
        x[self.basic_mask] = 0.0
        return x

    def recompute_basic_values(self) -> None:
        """Recompute basic variable values from the nonbasic bound rest points."""
        x_nonbasic = self._nonbasic_x()
        self.x_basic = self.binv @ (self.b - self.a.matvec(x_nonbasic))

    def full_x(self) -> np.ndarray:
        """The complete primal point implied by the current basis."""
        x = self._nonbasic_x()
        x[self.basic] = self.x_basic
        return x

    def infeasibility(self) -> float:
        """Total bound violation of the basic variables (nonbasics rest on bounds)."""
        lb_basic = self.lb[self.basic]
        ub_basic = self.ub[self.basic]
        below = np.maximum(0.0, lb_basic - self.x_basic)
        above = np.maximum(0.0, self.x_basic - ub_basic)
        return float(below.sum() + above.sum())

    def _refactor(self) -> bool:
        """Rebuild ``B^-1`` from scratch to clear accumulated drift."""
        self.counters.refactorisations += 1
        return self.set_basis(self.basic, self.at_upper)

    # ------------------------------------------------------------------ pricing
    def _eligible_mask(self, reduced: np.ndarray, movable: np.ndarray) -> np.ndarray:
        """Columns whose reduced cost improves the objective from their bound."""
        return (
            ~self.basic_mask
            & movable
            & (
                (~self.at_upper & (reduced < -_DUAL_TOL))
                | (self.at_upper & (reduced > _DUAL_TOL))
            )
        )

    def _price_entering(
        self, c: np.ndarray, y: np.ndarray, movable: np.ndarray, bland: bool
    ):
        """Pick the entering column, or ``None`` at optimality.

        Returns ``(entering, reduced_cost)``.  Devex mode scans a rotating
        window of columns first and falls back to a full pricing pass only
        when the window has no eligible candidate; Bland/Dantzig modes
        always price the full span (Bland needs the global first eligible
        index for its termination guarantee).
        """
        n = self.num_cols
        if not bland and self.pricing == "devex" and self._window < n:
            start = self._window_start
            for _ in range(-(-n // self._window)):
                stop = min(n, start + self._window)
                reduced_w = c[start:stop] - self.a.rmatvec_window(y, start, stop)
                sub = slice(start, stop)
                eligible_w = self._eligible_mask_window(reduced_w, movable[sub], sub)
                if np.any(eligible_w):
                    score = np.where(
                        eligible_w,
                        reduced_w * reduced_w / self.ref_weights[sub],
                        0.0,
                    )
                    local = int(np.argmax(score))
                    self._window_start = start
                    return start + local, float(reduced_w[local])
                start = stop % n
            # The rotation found nothing: confirm with one full pass (this
            # is also the only place optimality can be declared).
        self.counters.pricing_passes += 1
        reduced = c - self.a.rmatvec(y)
        reduced[self.basic_mask] = 0.0
        eligible = self._eligible_mask(reduced, movable)
        if not np.any(eligible):
            return None, 0.0
        if bland:
            entering = int(np.nonzero(eligible)[0][0])
        elif self.pricing == "devex":
            entering = int(
                np.argmax(np.where(eligible, reduced * reduced / self.ref_weights, 0.0))
            )
        else:
            entering = int(np.argmax(np.where(eligible, np.abs(reduced), 0.0)))
        return entering, float(reduced[entering])

    def _eligible_mask_window(
        self, reduced_w: np.ndarray, movable_w: np.ndarray, sub: slice
    ) -> np.ndarray:
        return (
            ~self.basic_mask[sub]
            & movable_w
            & (
                (~self.at_upper[sub] & (reduced_w < -_DUAL_TOL))
                | (self.at_upper[sub] & (reduced_w > _DUAL_TOL))
            )
        )

    def _update_devex_weights(self, row: int, entering: int, alpha_pivot: float) -> None:
        """Forrest–Goldfarb Devex update from the (pre-pivot) pivot row.

        Weights are refreshed for the active pricing window only — the
        partial-pricing analogue of the classic full update.  The reference
        framework resets to units when a weight overflows, which restores
        the approximation without affecting correctness.
        """
        w_entering = float(self.ref_weights[entering])
        rho = self.binv[row]
        n = self.num_cols
        if self._window < n:
            start = self._window_start
            stop = min(n, start + self._window)
            alpha_row = self.a.rmatvec_window(rho, start, stop)
            sub = slice(start, stop)
        else:
            alpha_row = self.a.rmatvec(rho)
            sub = slice(0, n)
        ratio2 = (alpha_row / alpha_pivot) ** 2
        np.maximum(self.ref_weights[sub], ratio2 * w_entering, out=self.ref_weights[sub])
        leaving_weight = max(w_entering / (alpha_pivot * alpha_pivot), 1.0)
        if leaving_weight > _DEVEX_RESET or self.ref_weights[sub].max(initial=1.0) > _DEVEX_RESET:
            self.ref_weights[:] = 1.0
        else:
            self.ref_weights[int(self.basic[row])] = leaving_weight

    # -------------------------------------------------------------- primal loop
    def run(self, c: np.ndarray, phase1: bool = False) -> str:
        """Iterate to optimality for cost ``c`` under the installed bounds."""
        bland = False
        stall = 0
        span = None
        since_refactor = 0
        counters = self.counters
        while self.iterations < self.max_iter:
            self.iterations += 1
            if phase1:
                counters.phase1_iterations += 1
            else:
                counters.primal_iterations += 1
            # Pricing: y = c_B B^-1; reduced costs via the windowed scan.
            y = c[self.basic] @ self.binv
            if span is None or since_refactor == 0:
                span = self.ub - self.lb
            movable = span > _FEAS_TOL
            entering, reduced_cost = self._price_entering(c, y, movable, bland)
            if entering is None:
                return "optimal"
            sigma = -1.0 if self.at_upper[entering] else 1.0

            rows, vals = self.a.column(entering)
            alpha = self.binv[:, rows] @ vals if len(rows) else np.zeros(self.m)
            delta = -sigma * alpha  # d x_B / d t as the entering var moves by t

            # Ratio test against the basic variables' bounds (vectorized).
            lb_basic = self.lb[self.basic]
            ub_basic = self.ub[self.basic]
            ratios = np.full(self.m, np.inf)
            inc = delta > _PIVOT_TOL
            ratios[inc] = (ub_basic[inc] - self.x_basic[inc]) / delta[inc]
            dec = delta < -_PIVOT_TOL
            ratios[dec] = (self.x_basic[dec] - lb_basic[dec]) / (-delta[dec])
            ratios = np.maximum(ratios, 0.0)
            row_limit = float(np.min(ratios)) if self.m else np.inf
            flip_limit = span[entering] if np.isfinite(span[entering]) else np.inf
            step = min(row_limit, flip_limit)
            if not np.isfinite(step):
                return "unbounded"

            if abs(reduced_cost) * step <= 1e-12:
                stall += 1
                if stall > 100 + self.m:
                    bland = True
            else:
                stall = 0

            if flip_limit <= row_limit + 1e-12:
                # Bound flip: the entering variable crosses to its other
                # bound before any basic variable hits one.  No pivot.
                self.x_basic += delta * flip_limit
                self.at_upper[entering] = not self.at_upper[entering]
                counters.bound_flips += 1
                continue

            near = np.nonzero(ratios <= step + 1e-9)[0]
            if bland:
                row = int(near[np.argmin(self.basic[near])])
            else:
                row = int(near[np.argmax(np.abs(delta[near]))])
            leaving = int(self.basic[row])

            if self.pricing == "devex" and not bland:
                self._update_devex_weights(row, entering, float(alpha[row]))

            self.x_basic += delta * step
            # The leaving variable rests on the bound its movement hit.
            self.at_upper[leaving] = bool(delta[row] > 0)
            self.x_basic[row] = (self.ub[entering] - step) if sigma < 0 else (self.lb[entering] + step)
            self.basic_mask[leaving] = False
            self.basic_mask[entering] = True
            self.basic[row] = entering
            self.at_upper[entering] = False

            # Product-form update of B^-1, with periodic refactorisation to
            # bound numerical drift.
            pivot_row = self.binv[row] / alpha[row]
            self.binv -= np.outer(alpha, pivot_row)
            self.binv[row] = pivot_row
            since_refactor += 1
            if since_refactor >= _REFACTOR_EVERY:
                since_refactor = 0
                if not self._refactor():
                    return "singular"
        return "iteration_limit"

    # ---------------------------------------------------------------- dual loop
    def restore_dual_feasibility(self, c: np.ndarray) -> bool:
        """Flip nonbasic variables so every reduced cost has a legal sign.

        Reduced costs depend only on the basis and ``c`` — not on bounds or
        the RHS — so after a bound/RHS perturbation the incumbent basis is
        dual-feasible up to nonbasic variables resting on the wrong bound.
        Flipping them restores dual feasibility in one vectorized pass.
        Fixed columns (``lb == ub``, notably the artificials) impose no
        sign condition.  Returns ``False`` when a column with a favourable
        reduced cost has no finite opposite bound to flip to (a potential
        unbounded ray — the caller falls back to the primal path, which
        detects actual unboundedness).
        """
        y = c[self.basic] @ self.binv
        reduced = c - self.a.rmatvec(y)
        reduced[self.basic_mask] = 0.0
        self.counters.pricing_passes += 1
        movable = (self.ub - self.lb) > _FEAS_TOL
        free = ~self.basic_mask & movable
        need_upper = free & ~self.at_upper & (reduced < -_DUAL_TOL)
        if np.any(need_upper & ~np.isfinite(self.ub)):
            return False
        need_lower = free & self.at_upper & (reduced > _DUAL_TOL)
        if np.any(need_upper) or np.any(need_lower):
            self.at_upper[need_upper] = True
            self.at_upper[need_lower] = False
            self.counters.bound_flips += int(need_upper.sum() + need_lower.sum())
            self.recompute_basic_values()
        return True

    def run_dual(self, c: np.ndarray) -> str:
        """Dual simplex: walk a dual-feasible basis back to primal feasibility.

        Requires :meth:`restore_dual_feasibility` to have succeeded.  Row
        selection uses approximate dual Devex weights; the ratio test is the
        *bound-flipping* (long-step) variant: breakpoints whose reduced cost
        reaches zero are flipped to their other bound for as long as the
        leaving row's violation keeps shrinking, and only the final
        breakpoint enters the basis.  Returns ``"optimal"`` (primal
        feasibility reached — with dual feasibility maintained throughout,
        this is optimality for ``c``), ``"infeasible"`` (a row's violation
        cannot be repaired by any nonbasic movement — a primal
        infeasibility certificate, only issued on a freshly refactorised
        basis), or ``"stall"`` / ``"singular"`` / ``"iteration_limit"``,
        after which the caller must fall back to the primal path.
        """
        counters = self.counters
        self.dual_weights = np.ones(max(1, self.m))
        since_refactor = 0
        stall = 0
        last_total = np.inf
        while self.iterations < self.max_iter:
            lb_b = self.lb[self.basic]
            ub_b = self.ub[self.basic]
            below = lb_b - self.x_basic
            above = self.x_basic - ub_b
            infeas = np.maximum(np.maximum(below, above), 0.0)
            total = float(infeas.sum())
            if not self.m or infeas.max(initial=0.0) <= _FEAS_TOL:
                return "optimal"
            if total >= last_total - 1e-12:
                stall += 1
                if stall > 100 + self.m:
                    return "stall"
            else:
                stall = 0
            last_total = total
            self.iterations += 1
            counters.dual_iterations += 1

            # Leaving-row selection: dual Devex (violation^2 / weight).
            row = int(np.argmax(infeas * infeas / self.dual_weights))
            leaving = int(self.basic[row])
            going_below = below[row] > above[row]
            sigma = -1.0 if going_below else 1.0  # sign of the violation
            target = lb_b[row] if going_below else ub_b[row]
            violation = abs(self.x_basic[row] - target)

            # Pivot row over all columns (the dual ratio test is global).
            rho = self.binv[row]
            alpha_row = self.a.rmatvec(rho)
            counters.pricing_passes += 1
            y = c[self.basic] @ self.binv
            reduced = c - self.a.rmatvec(y)
            reduced[self.basic_mask] = 0.0
            ar = sigma * alpha_row
            span = self.ub - self.lb
            movable = span > _FEAS_TOL
            free = ~self.basic_mask & movable
            elig_lower = free & ~self.at_upper & (ar > _PIVOT_TOL)
            elig_upper = free & self.at_upper & (ar < -_PIVOT_TOL)
            eligible = elig_lower | elig_upper
            if not np.any(eligible):
                # No movement can repair this row.  Certify infeasibility
                # only from a fresh factorisation; otherwise clear the
                # drift and re-examine.
                if since_refactor == 0:
                    return "infeasible"
                since_refactor = 0
                if not self._refactor():
                    return "singular"
                continue

            idx = np.nonzero(eligible)[0]
            ratios = np.maximum(reduced[idx] / ar[idx], 0.0)
            order = np.argsort(ratios, kind="stable")
            # Bound-flipping walk: passing breakpoint k flips variable k to
            # its other bound, shrinking the row's violation by
            # |ar_k| * span_k.  The breakpoint that would overshoot (or
            # cannot flip: infinite span) enters the basis instead.
            flips = []
            entering = -1
            remaining = violation
            for k in order:
                j = int(idx[k])
                reduction = abs(ar[j]) * span[j]
                if not np.isfinite(reduction) or reduction >= remaining - _FEAS_TOL:
                    entering = j
                    break
                flips.append(j)
                remaining -= reduction
            if entering < 0:
                # Every breakpoint flipped and the row is still violated:
                # the row cannot be repaired (same certificate as above).
                if since_refactor == 0:
                    return "infeasible"
                since_refactor = 0
                if not self._refactor():
                    return "singular"
                continue

            for j in flips:
                to_upper = not self.at_upper[j]
                move = span[j] if to_upper else -span[j]
                rows_j, vals_j = self.a.column(j)
                if len(rows_j):
                    self.x_basic -= (self.binv[:, rows_j] @ vals_j) * move
                self.at_upper[j] = to_upper
            counters.bound_flips += len(flips)

            rows_q, vals_q = self.a.column(entering)
            alpha = self.binv[:, rows_q] @ vals_q if len(rows_q) else np.zeros(self.m)
            if abs(alpha[row]) <= _PIVOT_TOL:
                if since_refactor == 0:
                    return "stall"
                since_refactor = 0
                if not self._refactor():
                    return "singular"
                continue

            # Primal step: drive x_B[row] exactly onto its violated bound.
            direction = -1.0 if self.at_upper[entering] else 1.0
            step = (self.x_basic[row] - target) / (alpha[row] * direction)
            step = max(float(step), 0.0)
            self.x_basic += -alpha * (direction * step)

            # Approximate dual steepest-edge weight update.
            w_row = float(self.dual_weights[row])
            ratio2 = (alpha / alpha[row]) ** 2
            np.maximum(self.dual_weights, ratio2 * w_row, out=self.dual_weights)
            new_row_weight = max(w_row / (alpha[row] * alpha[row]), 1.0)
            if new_row_weight > _DEVEX_RESET:
                self.dual_weights[:] = 1.0
            else:
                self.dual_weights[row] = new_row_weight

            entering_value = (
                self.ub[entering] - step if direction < 0 else self.lb[entering] + step
            )
            self.basic_mask[leaving] = False
            self.basic_mask[entering] = True
            self.at_upper[leaving] = not going_below
            self.basic[row] = entering
            self.at_upper[entering] = False
            self.x_basic[row] = entering_value

            pivot_row = self.binv[row] / alpha[row]
            self.binv -= np.outer(alpha, pivot_row)
            self.binv[row] = pivot_row
            since_refactor += 1
            if since_refactor >= _REFACTOR_EVERY:
                since_refactor = 0
                if not self._refactor():
                    return "singular"
        return "iteration_limit"


def _bounds_only_solution(c: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> LpSolution:
    """Optimum of an LP with no rows: every variable sits at its best bound."""
    pushing_down = c < 0
    if np.any(pushing_down & ~np.isfinite(upper)):
        return LpSolution("unbounded")
    x = lower.copy()
    x[pushing_down] = upper[pushing_down]
    return LpSolution("optimal", x, float(c @ x), counters=SolverCounters())


def solve_lp_simplex(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    a_eq,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    warm_basis: Optional[SimplexBasis] = None,
    method: str = "auto",
    pricing: str = "devex",
) -> LpSolution:
    """Minimise ``c @ x`` subject to the given constraints and bounds.

    ``a_ub``/``a_eq`` may be :class:`~repro.milp.sparse.CsrMatrix` or dense
    arrays.  ``warm_basis`` is a :class:`SimplexBasis` from a previous solve
    of the same system (bounds and RHS may differ); an unusable warm basis
    silently degrades to a cold start, so the returned optimum never
    depends on it.

    ``method`` selects how a warm basis is resumed: ``"auto"`` tries the
    dual simplex first (the right tool after a bound/RHS perturbation) and
    falls back to the composite primal repair, ``"dual"`` skips the primal
    repair (cold start on dual failure), ``"primal"`` preserves the
    pre-dual behaviour.  ``pricing`` is ``"devex"`` (partial + approximate
    steepest edge, the default) or ``"dantzig"`` (most-negative reduced
    cost); both reach the same optimum.
    """
    if method not in ("auto", "dual", "primal"):
        raise ValueError(f"unknown simplex method {method!r}")
    if pricing not in ("devex", "dantzig"):
        raise ValueError(f"unknown pricing rule {pricing!r}")
    c = np.asarray(c, dtype=float)
    n = len(c)
    a_ub = as_csr(a_ub, n)
    a_eq = as_csr(a_eq, n)
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)
    lower = np.asarray(lower, dtype=float).copy()
    upper = np.asarray(upper, dtype=float).copy()
    if np.any(~np.isfinite(lower)):
        raise ValueError("simplex backend requires finite lower bounds")

    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        return _bounds_only_solution(c, lower, upper)

    # Equality form: columns are [structural n | slacks m_ub | artificials m].
    # One artificial per row keeps the column layout identical across solves
    # of the same system, so a SimplexBasis stays valid between them; unused
    # artificials are fixed to 0.
    num_struct_slack = n + m_ub
    num_cols = num_struct_slack + m
    residual0 = np.concatenate(
        [
            b_ub - a_ub.matvec(lower) if m_ub else np.zeros(0),
            b_eq - a_eq.matvec(lower) if m_eq else np.zeros(0),
        ]
    )
    art_sign = np.where(residual0 >= 0, 1.0, -1.0)

    # Assemble [A_ub | I_slack | I_art ; A_eq | 0 | I_art] in one vectorized
    # pass: each ub row gains a slack and an artificial entry, each eq row an
    # artificial, so an original entry at flat position p of row i lands at
    # p plus the extras inserted by the preceding rows.
    nnz_ub = int(a_ub.indptr[-1])
    nnz_eq = int(a_eq.indptr[-1])
    data = np.empty(nnz_ub + 2 * m_ub + nnz_eq + m_eq)
    indices = np.empty(len(data), dtype=np.int64)
    indptr = np.empty(m + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(
        np.concatenate([np.diff(a_ub.indptr) + 2, np.diff(a_eq.indptr) + 1]),
        out=indptr[1:],
    )
    if nnz_ub:
        dest = np.arange(nnz_ub) + 2 * a_ub.row_ids
        data[dest] = a_ub.data
        indices[dest] = a_ub.indices
    if m_ub:
        row_ends = indptr[1 : m_ub + 1]
        data[row_ends - 2] = 1.0
        indices[row_ends - 2] = n + np.arange(m_ub)
        data[row_ends - 1] = -1.0
        indices[row_ends - 1] = num_struct_slack + np.arange(m_ub)
    if nnz_eq:
        dest = indptr[m_ub] + np.arange(nnz_eq) + a_eq.row_ids
        data[dest] = a_eq.data
        indices[dest] = a_eq.indices
    if m_eq:
        row_ends = indptr[m_ub + 1 :]
        data[row_ends - 1] = art_sign[m_ub:]
        indices[row_ends - 1] = num_struct_slack + m_ub + np.arange(m_eq)
    a_full = CsrMatrix(data, indices, indptr, (m, num_cols))
    b = np.concatenate([b_ub, b_eq])
    lb = np.concatenate([lower, np.zeros(m_ub), np.zeros(m)])
    ub = np.concatenate([upper, np.full(m_ub, np.inf), np.zeros(m)])

    engine = _BoundedSimplex(a_full, b, lb, ub)
    engine.pricing = pricing
    counters = engine.counters
    c_full = np.concatenate([c, np.zeros(m_ub + m)])

    warm_ready = False
    warm_status = ""
    basis_broken = False
    if warm_basis is not None and len(warm_basis.basic) == m and len(warm_basis.at_upper) == num_cols:
        if engine.set_basis(warm_basis.basic, warm_basis.at_upper, binv=warm_basis.binv):
            if warm_basis.weights is not None and len(warm_basis.weights) == num_cols:
                engine.ref_weights = np.maximum(warm_basis.weights, 1.0)
            if method in ("auto", "dual") and engine.restore_dual_feasibility(c_full):
                dual_status = engine.run_dual(c_full)
                if dual_status == "optimal":
                    warm_ready = True
                    warm_status = "dual_resume"
                    counters.dual_resumes += 1
                elif dual_status == "infeasible":
                    counters.dual_resumes += 1
                    return LpSolution(
                        "infeasible",
                        iterations=engine.iterations,
                        counters=counters,
                        warm_status="dual_resume",
                    )
                elif dual_status == "singular":
                    basis_broken = True
            if not warm_ready and not basis_broken and method != "dual":
                if _repair_warm_start(engine):
                    warm_ready = True
                    warm_status = "warm_repair"
                    counters.warm_repairs += 1

    if not warm_ready:
        if warm_basis is not None:
            warm_status = "cold_fallback"
            counters.cold_fallbacks += 1
        status = _cold_start(engine, residual0, n, num_struct_slack, m_ub, m_eq)
        if status is not None:
            return LpSolution(
                status, iterations=engine.iterations, counters=counters, warm_status=warm_status
            )

    status = engine.run(c_full)
    if status == "optimal":
        x = np.clip(engine.full_x()[:n], lower, upper)
        return LpSolution(
            "optimal",
            x,
            float(c @ x),
            # The engine is discarded after this call, so its inverse and
            # pricing weights can be handed to the basis token without a copy.
            basis=SimplexBasis(
                engine.basic.copy(),
                engine.at_upper.copy(),
                engine.binv,
                engine.ref_weights,
            ),
            iterations=engine.iterations,
            counters=counters,
            warm_status=warm_status,
        )
    if status == "unbounded":
        return LpSolution(
            "unbounded", iterations=engine.iterations, counters=counters, warm_status=warm_status
        )
    return LpSolution(
        "iteration_limit", iterations=engine.iterations, counters=counters, warm_status=warm_status
    )


def _cold_start(
    engine: _BoundedSimplex,
    residual0: np.ndarray,
    n: int,
    num_struct_slack: int,
    m_ub: int,
    m_eq: int,
) -> Optional[str]:
    """Install a feasible starting basis, running phase 1 when needed.

    Returns a terminal status string on failure, ``None`` when the engine is
    ready for phase 2.
    """
    m = m_ub + m_eq
    basic = np.empty(m, dtype=np.int64)
    art_used = np.zeros(m, dtype=bool)
    for i in range(m_ub):
        if residual0[i] >= -1e-9:
            basic[i] = n + i  # the slack starts basic and feasible
        else:
            basic[i] = num_struct_slack + i
            art_used[i] = True
    for k in range(m_eq):
        i = m_ub + k
        basic[i] = num_struct_slack + i
        art_used[i] = True

    if art_used.any():
        engine.ub[num_struct_slack:][art_used] = np.inf
        if not engine.set_basis(basic, np.zeros(engine.num_cols, dtype=bool)):
            return "iteration_limit"
        phase1_cost = np.zeros(engine.num_cols)
        phase1_cost[num_struct_slack:][art_used] = 1.0
        status = engine.run(phase1_cost, phase1=True)
        if status != "optimal":
            return "iteration_limit" if status in ("iteration_limit", "singular") else status
        if float(phase1_cost @ engine.full_x()) > 1e-6:
            return "infeasible"
        engine.ub[num_struct_slack:] = 0.0
    else:
        if not engine.set_basis(basic, np.zeros(engine.num_cols, dtype=bool)):
            return "iteration_limit"
    return None


def _repair_warm_start(engine: _BoundedSimplex, iteration_budget: Optional[int] = None) -> bool:
    """Drive a warm-started basis back to primal feasibility.

    Runs short composite phase-1 passes: each violated basic variable gets a
    unit cost pushing it into range and a temporary bound at its current
    value (so the start is feasible for the relaxed problem).  Gives up —
    triggering a cold start in the caller — when a pass stops reducing total
    infeasibility *or* the explicit iteration budget is exhausted (default
    ``max(100, 4m)`` across all passes), so a stalled repair can no longer
    silently consume the solve's whole iteration allowance; the fallback is
    reported through ``SolverCounters.cold_fallbacks`` and
    ``LpSolution.warm_status``.
    """
    violation = engine.infeasibility()
    if violation <= _FEAS_TOL:
        return True
    if iteration_budget is None:
        iteration_budget = max(_REPAIR_ITER_FLOOR, _REPAIR_ITER_PER_ROW * engine.m)
    start_iterations = engine.iterations
    saved_max_iter = engine.max_iter
    engine.max_iter = min(saved_max_iter, start_iterations + iteration_budget)
    orig_lb, orig_ub = engine.lb, engine.ub
    try:
        for _ in range(_MAX_REPAIR_ROUNDS):
            repair_cost = np.zeros(engine.num_cols)
            lb_rep = orig_lb.copy()
            ub_rep = orig_ub.copy()
            below = engine.x_basic < orig_lb[engine.basic] - _FEAS_TOL
            above = engine.x_basic > orig_ub[engine.basic] + _FEAS_TOL
            cols_below = engine.basic[below]
            cols_above = engine.basic[above]
            repair_cost[cols_below] = -1.0
            lb_rep[cols_below] = engine.x_basic[below]
            repair_cost[cols_above] = 1.0
            ub_rep[cols_above] = engine.x_basic[above]

            engine.lb, engine.ub = lb_rep, ub_rep
            status = engine.run(repair_cost, phase1=True)
            engine.lb, engine.ub = orig_lb, orig_ub
            # Variables parked on a temporary bound snap back to their real one.
            engine.at_upper[~np.isfinite(engine.ub)] = False
            engine.recompute_basic_values()
            if status != "optimal":
                return False
            remaining = engine.infeasibility()
            if remaining <= _FEAS_TOL:
                return True
            if remaining >= violation - 1e-9:
                return False
            violation = remaining
        return False
    finally:
        engine.max_iter = saved_max_iter
        engine.counters.repair_iterations += engine.iterations - start_iterations
