"""A vectorized revised simplex for sparse LPs with bounded variables.

This replaces the seed repository's dense two-phase tableau (preserved in
:mod:`repro.milp.dense_simplex` as a reference engine).  Three structural
changes make it the fast pure-Python path the branch-and-bound solver runs
on when scipy is unavailable — and the engine the fig. 5 planning-time
benchmark measures:

* **Bounded variables are native.**  The dense tableau folded every finite
  upper bound into an explicit ``x_i <= u_i`` row, roughly doubling the row
  count on the binary-heavy SQPR models.  Here nonbasic variables rest at
  either bound and bound flips are a constant-time move, so the working
  basis stays at ``m = |A_ub| + |A_eq|`` rows.
* **Revised, not tableau.**  Only the ``m × m`` basis inverse is
  maintained (product-form eta updates, periodic refactorisation); pricing
  runs over the sparse constraint matrix (:class:`~repro.milp.sparse.CsrMatrix`)
  in ``O(nnz)`` per iteration with no Python-level loops.
* **Warm starts.**  :func:`solve_lp_simplex` accepts the
  :class:`SimplexBasis` returned by a previous solve on the same system
  (possibly with different variable bounds).  A feasible warm basis skips
  phase 1 entirely; a near-feasible one (the typical branch-and-bound child
  node, where only the branched variable is out of range) is repaired with
  a short composite phase-1 pass and falls back to a cold start if repair
  stalls — so warm-started solves always return the same optimum a cold
  solve would.

The entry point keeps the package-wide standard form (minimise ``c @ x``
s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``lb <= x <= ub``; lower
bounds must be finite).  Dantzig pricing is used until the objective
stalls, then Bland's rule guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.milp.sparse import CsrMatrix, as_csr

_DUAL_TOL = 1e-7
_PIVOT_TOL = 1e-9
_FEAS_TOL = 1e-7
_REFACTOR_EVERY = 100
_MAX_ITER_FACTOR = 200
_MAX_REPAIR_ROUNDS = 5


@dataclass
class SimplexBasis:
    """An opaque warm-start token: basic column ids + nonbasic bound sides.

    Valid for any solve over the *same* constraint matrix (same rows, same
    columns); variable bounds may differ between solves, which is exactly
    the branch-and-bound use case.

    ``binv`` optionally carries the basis inverse from the solve that
    produced this token.  Re-installing a basis costs an ``O(m^3)``
    factorisation; with ``binv`` attached the next solve skips it (after an
    ``O(m^2)`` validity probe).  Holders that keep many tokens alive (the
    branch-and-bound heap) set ``binv = None`` on all but the most recent
    one to bound memory at a single ``m x m`` matrix.
    """

    basic: np.ndarray
    at_upper: np.ndarray
    binv: Optional[np.ndarray] = None

    def copy(self) -> "SimplexBasis":
        """An independent copy (solves mutate their working basis)."""
        return SimplexBasis(
            self.basic.copy(),
            self.at_upper.copy(),
            None if self.binv is None else self.binv.copy(),
        )


@dataclass
class LpSolution:
    """Result of an LP solve (shared by the simplex and scipy backends)."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    basis: Optional[SimplexBasis] = None
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        """Whether an optimal solution is available."""
        return self.status == "optimal" and self.x is not None


class _BoundedSimplex:
    """Revised primal simplex over ``A x = b`` with ``lb <= x <= ub``.

    The caller owns problem construction (slacks, artificials) and phase
    sequencing; this class only iterates from an installed basis under the
    currently installed bounds.
    """

    def __init__(self, a: CsrMatrix, b: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> None:
        self.a = a
        self.b = b
        self.lb = lb
        self.ub = ub
        self.m, self.num_cols = a.shape
        self.max_iter = _MAX_ITER_FACTOR * (self.m + self.num_cols + 10)
        self.iterations = 0
        self.basic: np.ndarray = np.zeros(0, dtype=np.int64)
        self.basic_mask: np.ndarray = np.zeros(self.num_cols, dtype=bool)
        self.at_upper: np.ndarray = np.zeros(self.num_cols, dtype=bool)
        self.binv: np.ndarray = np.zeros((self.m, self.m))
        self.x_basic: np.ndarray = np.zeros(self.m)

    # ------------------------------------------------------------ basis install
    def _basis_matvec(self, basic: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``B @ y`` assembled column-by-column from the sparse matrix."""
        out = np.zeros(self.m)
        for k in range(self.m):
            rows, vals = self.a.column(int(basic[k]))
            out[rows] += vals * y[k]
        return out

    def set_basis(
        self,
        basic: np.ndarray,
        at_upper: np.ndarray,
        binv: Optional[np.ndarray] = None,
    ) -> bool:
        """Install a basis, rebuilding ``B^-1`` and the basic values.

        ``binv`` short-circuits the factorisation with a known inverse for
        this exact basis (validated with a cheap probe, then copied so the
        caller's matrix is never mutated by subsequent pivots).  Returns
        ``False`` (leaving the previous state untouched) when the candidate
        basis is out of range, singular or too ill-conditioned.
        """
        basic = np.asarray(basic, dtype=np.int64)
        if len(basic) != self.m or (self.m and (basic.min() < 0 or basic.max() >= self.num_cols)):
            return False
        probe = np.ones(self.m)
        if binv is not None and binv.shape == (self.m, self.m):
            if np.max(np.abs(self._basis_matvec(basic, binv @ probe) - probe)) > 1e-4:
                return False
            binv = binv.copy()
        else:
            b_mat = np.zeros((self.m, self.m))
            singleton = True
            for k in range(self.m):
                rows, vals = self.a.column(int(basic[k]))
                b_mat[rows, k] = vals
                singleton = singleton and len(rows) == 1
            if singleton:
                # Common fast path: a slack/artificial basis is a scaled
                # permutation; its inverse is direct — no O(m^3) factorize.
                diag_rows = b_mat.nonzero()[0] if self.m else np.zeros(0, dtype=np.int64)
                if len(np.unique(diag_rows)) != self.m:
                    return False
                binv = np.zeros((self.m, self.m))
                for k in range(self.m):
                    row = int(np.argmax(np.abs(b_mat[:, k])))
                    binv[k, row] = 1.0 / b_mat[row, k]
            else:
                try:
                    binv = np.linalg.inv(b_mat)
                except np.linalg.LinAlgError:
                    return False
                if not np.all(np.isfinite(binv)):
                    return False
                # O(m^2) conditioning probe instead of a full O(m^3)
                # residual: garbage inverses fail this loudly.
                if self.m and np.max(np.abs(b_mat @ (binv @ probe) - probe)) > 1e-4:
                    return False
        self.basic = basic.copy()
        self.basic_mask = np.zeros(self.num_cols, dtype=bool)
        self.basic_mask[self.basic] = True
        self.at_upper = np.asarray(at_upper, dtype=bool).copy()
        self.at_upper[~np.isfinite(self.ub)] = False
        self.at_upper[self.basic_mask] = False
        self.binv = binv
        self.recompute_basic_values()
        return True

    def _nonbasic_x(self) -> np.ndarray:
        x = np.where(self.at_upper, self.ub, self.lb)
        x[self.basic_mask] = 0.0
        return x

    def recompute_basic_values(self) -> None:
        """Recompute basic variable values from the nonbasic bound rest points."""
        x_nonbasic = self._nonbasic_x()
        self.x_basic = self.binv @ (self.b - self.a.matvec(x_nonbasic))

    def full_x(self) -> np.ndarray:
        """The complete primal point implied by the current basis."""
        x = self._nonbasic_x()
        x[self.basic] = self.x_basic
        return x

    def infeasibility(self) -> float:
        """Total bound violation of the basic variables (nonbasics rest on bounds)."""
        lb_basic = self.lb[self.basic]
        ub_basic = self.ub[self.basic]
        below = np.maximum(0.0, lb_basic - self.x_basic)
        above = np.maximum(0.0, self.x_basic - ub_basic)
        return float(below.sum() + above.sum())

    # -------------------------------------------------------------- main loop
    def run(self, c: np.ndarray) -> str:
        """Iterate to optimality for cost ``c`` under the installed bounds."""
        bland = False
        stall = 0
        span = None
        since_refactor = 0
        while self.iterations < self.max_iter:
            self.iterations += 1
            # Pricing: y = c_B B^-1, reduced costs d = c - y A over all columns.
            y = c[self.basic] @ self.binv
            reduced = c - self.a.rmatvec(y)
            reduced[self.basic_mask] = 0.0
            if span is None or since_refactor == 0:
                span = self.ub - self.lb
            free = ~self.basic_mask
            movable = span > _FEAS_TOL
            eligible = free & movable & (
                (~self.at_upper & (reduced < -_DUAL_TOL))
                | (self.at_upper & (reduced > _DUAL_TOL))
            )
            if not np.any(eligible):
                return "optimal"
            if bland:
                entering = int(np.nonzero(eligible)[0][0])
            else:
                entering = int(np.argmax(np.where(eligible, np.abs(reduced), 0.0)))
            sigma = -1.0 if self.at_upper[entering] else 1.0

            rows, vals = self.a.column(entering)
            alpha = self.binv[:, rows] @ vals if len(rows) else np.zeros(self.m)
            delta = -sigma * alpha  # d x_B / d t as the entering var moves by t

            # Ratio test against the basic variables' bounds (vectorized).
            lb_basic = self.lb[self.basic]
            ub_basic = self.ub[self.basic]
            ratios = np.full(self.m, np.inf)
            inc = delta > _PIVOT_TOL
            ratios[inc] = (ub_basic[inc] - self.x_basic[inc]) / delta[inc]
            dec = delta < -_PIVOT_TOL
            ratios[dec] = (self.x_basic[dec] - lb_basic[dec]) / (-delta[dec])
            ratios = np.maximum(ratios, 0.0)
            row_limit = float(np.min(ratios))
            flip_limit = span[entering] if np.isfinite(span[entering]) else np.inf
            step = min(row_limit, flip_limit)
            if not np.isfinite(step):
                return "unbounded"

            if abs(reduced[entering]) * step <= 1e-12:
                stall += 1
                if stall > 100 + self.m:
                    bland = True
            else:
                stall = 0

            if flip_limit <= row_limit + 1e-12:
                # Bound flip: the entering variable crosses to its other
                # bound before any basic variable hits one.  No pivot.
                self.x_basic += delta * flip_limit
                self.at_upper[entering] = not self.at_upper[entering]
                continue

            near = np.nonzero(ratios <= step + 1e-9)[0]
            if bland:
                row = int(near[np.argmin(self.basic[near])])
            else:
                row = int(near[np.argmax(np.abs(delta[near]))])
            leaving = int(self.basic[row])

            self.x_basic += delta * step
            # The leaving variable rests on the bound its movement hit.
            self.at_upper[leaving] = bool(delta[row] > 0)
            self.x_basic[row] = (self.ub[entering] - step) if sigma < 0 else (self.lb[entering] + step)
            self.basic_mask[leaving] = False
            self.basic_mask[entering] = True
            self.basic[row] = entering
            self.at_upper[entering] = False

            # Product-form update of B^-1, with periodic refactorisation to
            # bound numerical drift.
            pivot_row = self.binv[row] / alpha[row]
            self.binv -= np.outer(alpha, pivot_row)
            self.binv[row] = pivot_row
            since_refactor += 1
            if since_refactor >= _REFACTOR_EVERY:
                since_refactor = 0
                if not self.set_basis(self.basic, self.at_upper):
                    return "singular"
        return "iteration_limit"


def _bounds_only_solution(c: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> LpSolution:
    """Optimum of an LP with no rows: every variable sits at its best bound."""
    pushing_down = c < 0
    if np.any(pushing_down & ~np.isfinite(upper)):
        return LpSolution("unbounded")
    x = lower.copy()
    x[pushing_down] = upper[pushing_down]
    return LpSolution("optimal", x, float(c @ x))


def solve_lp_simplex(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    a_eq,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    warm_basis: Optional[SimplexBasis] = None,
) -> LpSolution:
    """Minimise ``c @ x`` subject to the given constraints and bounds.

    ``a_ub``/``a_eq`` may be :class:`~repro.milp.sparse.CsrMatrix` or dense
    arrays.  ``warm_basis`` is a :class:`SimplexBasis` from a previous solve
    of the same system (bounds may differ); an unusable warm basis silently
    degrades to a cold start, so the returned optimum never depends on it.
    """
    c = np.asarray(c, dtype=float)
    n = len(c)
    a_ub = as_csr(a_ub, n)
    a_eq = as_csr(a_eq, n)
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)
    lower = np.asarray(lower, dtype=float).copy()
    upper = np.asarray(upper, dtype=float).copy()
    if np.any(~np.isfinite(lower)):
        raise ValueError("simplex backend requires finite lower bounds")

    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        return _bounds_only_solution(c, lower, upper)

    # Equality form: columns are [structural n | slacks m_ub | artificials m].
    # One artificial per row keeps the column layout identical across solves
    # of the same system, so a SimplexBasis stays valid between them; unused
    # artificials are fixed to 0.
    num_struct_slack = n + m_ub
    num_cols = num_struct_slack + m
    residual0 = np.concatenate(
        [
            b_ub - a_ub.matvec(lower) if m_ub else np.zeros(0),
            b_eq - a_eq.matvec(lower) if m_eq else np.zeros(0),
        ]
    )
    art_sign = np.where(residual0 >= 0, 1.0, -1.0)

    # Assemble [A_ub | I_slack | I_art ; A_eq | 0 | I_art] in one vectorized
    # pass: each ub row gains a slack and an artificial entry, each eq row an
    # artificial, so an original entry at flat position p of row i lands at
    # p plus the extras inserted by the preceding rows.
    nnz_ub = int(a_ub.indptr[-1])
    nnz_eq = int(a_eq.indptr[-1])
    data = np.empty(nnz_ub + 2 * m_ub + nnz_eq + m_eq)
    indices = np.empty(len(data), dtype=np.int64)
    indptr = np.empty(m + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(
        np.concatenate([np.diff(a_ub.indptr) + 2, np.diff(a_eq.indptr) + 1]),
        out=indptr[1:],
    )
    if nnz_ub:
        dest = np.arange(nnz_ub) + 2 * a_ub.row_ids
        data[dest] = a_ub.data
        indices[dest] = a_ub.indices
    if m_ub:
        row_ends = indptr[1 : m_ub + 1]
        data[row_ends - 2] = 1.0
        indices[row_ends - 2] = n + np.arange(m_ub)
        data[row_ends - 1] = -1.0
        indices[row_ends - 1] = num_struct_slack + np.arange(m_ub)
    if nnz_eq:
        dest = indptr[m_ub] + np.arange(nnz_eq) + a_eq.row_ids
        data[dest] = a_eq.data
        indices[dest] = a_eq.indices
    if m_eq:
        row_ends = indptr[m_ub + 1 :]
        data[row_ends - 1] = art_sign[m_ub:]
        indices[row_ends - 1] = num_struct_slack + m_ub + np.arange(m_eq)
    a_full = CsrMatrix(data, indices, indptr, (m, num_cols))
    b = np.concatenate([b_ub, b_eq])
    lb = np.concatenate([lower, np.zeros(m_ub), np.zeros(m)])
    ub = np.concatenate([upper, np.full(m_ub, np.inf), np.zeros(m)])

    engine = _BoundedSimplex(a_full, b, lb, ub)
    c_full = np.concatenate([c, np.zeros(m_ub + m)])

    warm_ready = False
    if warm_basis is not None and len(warm_basis.basic) == m and len(warm_basis.at_upper) == num_cols:
        if engine.set_basis(warm_basis.basic, warm_basis.at_upper, binv=warm_basis.binv):
            warm_ready = _repair_warm_start(engine)

    if not warm_ready:
        status = _cold_start(engine, residual0, n, num_struct_slack, m_ub, m_eq)
        if status is not None:
            return LpSolution(status, iterations=engine.iterations)

    status = engine.run(c_full)
    if status == "optimal":
        x = np.clip(engine.full_x()[:n], lower, upper)
        return LpSolution(
            "optimal",
            x,
            float(c @ x),
            # The engine is discarded after this call, so its inverse can be
            # handed to the basis token without a copy.
            basis=SimplexBasis(engine.basic.copy(), engine.at_upper.copy(), engine.binv),
            iterations=engine.iterations,
        )
    if status == "unbounded":
        return LpSolution("unbounded", iterations=engine.iterations)
    return LpSolution("iteration_limit", iterations=engine.iterations)


def _cold_start(
    engine: _BoundedSimplex,
    residual0: np.ndarray,
    n: int,
    num_struct_slack: int,
    m_ub: int,
    m_eq: int,
) -> Optional[str]:
    """Install a feasible starting basis, running phase 1 when needed.

    Returns a terminal status string on failure, ``None`` when the engine is
    ready for phase 2.
    """
    m = m_ub + m_eq
    basic = np.empty(m, dtype=np.int64)
    art_used = np.zeros(m, dtype=bool)
    for i in range(m_ub):
        if residual0[i] >= -1e-9:
            basic[i] = n + i  # the slack starts basic and feasible
        else:
            basic[i] = num_struct_slack + i
            art_used[i] = True
    for k in range(m_eq):
        i = m_ub + k
        basic[i] = num_struct_slack + i
        art_used[i] = True

    if art_used.any():
        engine.ub[num_struct_slack:][art_used] = np.inf
        if not engine.set_basis(basic, np.zeros(engine.num_cols, dtype=bool)):
            return "iteration_limit"
        phase1_cost = np.zeros(engine.num_cols)
        phase1_cost[num_struct_slack:][art_used] = 1.0
        status = engine.run(phase1_cost)
        if status != "optimal":
            return "iteration_limit" if status in ("iteration_limit", "singular") else status
        if float(phase1_cost @ engine.full_x()) > 1e-6:
            return "infeasible"
        engine.ub[num_struct_slack:] = 0.0
    else:
        if not engine.set_basis(basic, np.zeros(engine.num_cols, dtype=bool)):
            return "iteration_limit"
    return None


def _repair_warm_start(engine: _BoundedSimplex) -> bool:
    """Drive a warm-started basis back to primal feasibility.

    Runs short composite phase-1 passes: each violated basic variable gets a
    unit cost pushing it into range and a temporary bound at its current
    value (so the start is feasible for the relaxed problem).  Gives up —
    triggering a cold start in the caller — when a pass stops reducing total
    infeasibility.
    """
    violation = engine.infeasibility()
    if violation <= _FEAS_TOL:
        return True
    orig_lb, orig_ub = engine.lb, engine.ub
    for _ in range(_MAX_REPAIR_ROUNDS):
        repair_cost = np.zeros(engine.num_cols)
        lb_rep = orig_lb.copy()
        ub_rep = orig_ub.copy()
        below = engine.x_basic < orig_lb[engine.basic] - _FEAS_TOL
        above = engine.x_basic > orig_ub[engine.basic] + _FEAS_TOL
        cols_below = engine.basic[below]
        cols_above = engine.basic[above]
        repair_cost[cols_below] = -1.0
        lb_rep[cols_below] = engine.x_basic[below]
        repair_cost[cols_above] = 1.0
        ub_rep[cols_above] = engine.x_basic[above]

        engine.lb, engine.ub = lb_rep, ub_rep
        status = engine.run(repair_cost)
        engine.lb, engine.ub = orig_lb, orig_ub
        # Variables parked on a temporary bound snap back to their real one.
        engine.at_upper[~np.isfinite(engine.ub)] = False
        engine.recompute_basic_values()
        if status != "optimal":
            return False
        remaining = engine.infeasibility()
        if remaining <= _FEAS_TOL:
            return True
        if remaining >= violation - 1e-9:
            return False
        violation = remaining
    return False
