"""Decision variables and affine (linear + constant) expressions.

The modelling layer mirrors the ergonomics of PuLP: variables combine with
``+``, ``-``, ``*`` into :class:`LinExpr` objects, and comparing an
expression with ``<=``, ``>=`` or ``==`` produces a :class:`Constraint`.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.exceptions import ModelError

Number = Union[int, float]


class VarType(enum.Enum):
    """The domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var`;
    they carry a name, a domain (:class:`VarType`) and bounds.  Variables
    compare by identity, so two variables with the same name in different
    models never alias.
    """

    __slots__ = (
        "name",
        "var_type",
        "_lower",
        "_upper",
        "index",
        "_on_bounds_change",
    )

    def __init__(
        self,
        name: str,
        var_type: VarType = VarType.CONTINUOUS,
        lower: Number = 0.0,
        upper: Number = math.inf,
        index: int = -1,
    ) -> None:
        if not name:
            raise ModelError("variable name must be non-empty")
        lower = float(lower)
        upper = float(upper)
        if var_type is VarType.BINARY:
            lower, upper = max(lower, 0.0), min(upper, 1.0)
        if lower > upper:
            raise ModelError(
                f"variable {name!r} has empty domain [{lower}, {upper}]"
            )
        self.name = name
        self.var_type = var_type
        self._lower = lower
        self._upper = upper
        self.index = index
        # Owning models hook this to bump their structural revision when a
        # bound changes, so cached standard forms are invalidated (bound
        # mutation used to bypass the revision counter silently).
        self._on_bounds_change: Optional[callable] = None

    # -- bounds -------------------------------------------------------------------
    def _set_bounds(self, lower: float, upper: float) -> None:
        if lower > upper:
            raise ModelError(
                f"variable {self.name!r} has empty domain [{lower}, {upper}]"
            )
        changed = lower != self._lower or upper != self._upper
        self._lower = lower
        self._upper = upper
        if changed and self._on_bounds_change is not None:
            self._on_bounds_change()

    @property
    def lower(self) -> float:
        """Lower bound; assignment notifies the owning model's revision."""
        return self._lower

    @lower.setter
    def lower(self, value: Number) -> None:
        self._set_bounds(float(value), self._upper)

    @property
    def upper(self) -> float:
        """Upper bound; assignment notifies the owning model's revision."""
        return self._upper

    @upper.setter
    def upper(self, value: Number) -> None:
        self._set_bounds(self._lower, float(value))

    # -- conversion to expressions ------------------------------------------------
    def to_expr(self) -> "LinExpr":
        """Return this variable wrapped as a :class:`LinExpr`."""
        return LinExpr({self: 1.0}, 0.0)

    @property
    def is_integer(self) -> bool:
        """Whether the variable must take integer values."""
        return self.var_type in (VarType.INTEGER, VarType.BINARY)

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, coefficient: Number) -> "LinExpr":
        return self.to_expr() * coefficient

    def __rmul__(self, coefficient: Number) -> "LinExpr":
        return self.to_expr() * coefficient

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons build constraints --------------------------------------------
    def __le__(self, other: Union["Variable", "LinExpr", Number]):
        return self.to_expr() <= other

    def __ge__(self, other: Union["Variable", "LinExpr", Number]):
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.var_type.value})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Instances are immutable from the caller's point of view: every arithmetic
    operation returns a new expression.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, Number]] = None,
        constant: Number = 0.0,
    ) -> None:
        clean: Dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                if not isinstance(var, Variable):
                    raise ModelError(
                        f"LinExpr terms must be keyed by Variable, got {type(var)}"
                    )
                coeff = float(coeff)
                if coeff != 0.0:
                    clean[var] = clean.get(var, 0.0) + coeff
        self.terms = clean
        self.constant = float(constant)

    # -- introspection ------------------------------------------------------------
    def variables(self) -> Iterable[Variable]:
        """The variables appearing with a non-zero coefficient."""
        return self.terms.keys()

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 when absent)."""
        return self.terms.get(var, 0.0)

    def is_constant(self) -> bool:
        """Whether the expression has no variable terms."""
        return not self.terms

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under ``assignment`` (missing vars -> 0)."""
        total = self.constant
        for var, coeff in self.terms.items():
            total += coeff * float(assignment.get(var, 0.0))
        return total

    # -- arithmetic ---------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, other)
        raise ModelError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        other = self._coerce(other)
        terms = dict(self.terms)
        for var, coeff in other.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
        return LinExpr(terms, self.constant + other.constant)

    def __radd__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coefficient: Number) -> "LinExpr":
        if not isinstance(coefficient, (int, float)):
            raise ModelError("LinExpr can only be multiplied by a scalar")
        coefficient = float(coefficient)
        terms = {var: coeff * coefficient for var, coeff in self.terms.items()}
        return LinExpr(terms, self.constant * coefficient)

    def __rmul__(self, coefficient: Number) -> "LinExpr":
        return self.__mul__(coefficient)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints --------------------------------------------
    def __le__(self, other: Union["Variable", "LinExpr", Number]):
        from repro.milp.constraint import Constraint, ConstraintSense

        return Constraint(self - self._coerce(other), ConstraintSense.LE)

    def __ge__(self, other: Union["Variable", "LinExpr", Number]):
        from repro.milp.constraint import Constraint, ConstraintSense

        return Constraint(self - self._coerce(other), ConstraintSense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        from repro.milp.constraint import Constraint, ConstraintSense

        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - self._coerce(other), ConstraintSense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def lin_sum(items: Iterable[Union[Variable, LinExpr, Number]]) -> LinExpr:
    """Sum an iterable of variables/expressions/constants into one LinExpr.

    This is the moral equivalent of ``pulp.lpSum`` and avoids the quadratic
    behaviour of repeatedly calling ``__add__`` on growing expressions.
    """
    terms: Dict[Variable, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Variable):
            terms[item] = terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for var, coeff in item.terms.items():
                terms[var] = terms.get(var, 0.0) + coeff
            constant += item.constant
        elif isinstance(item, (int, float)):
            constant += float(item)
        else:
            raise ModelError(f"cannot sum object of type {type(item).__name__}")
    return LinExpr(terms, constant)
