"""The query workload generator used across all experiments.

Matching §V: a large universe of base streams is distributed uniformly over
the hosts; queries are k-way joins (equal parts of each arity in the
configured mix) whose base streams are chosen by a Zipfian distribution,
which controls how much overlap — and therefore reuse opportunity — exists
between queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.dsps.query import QueryWorkloadItem
from repro.exceptions import WorkloadError
from repro.utils.rng import RandomLike, ensure_rng
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a query workload.

    Attributes
    ----------
    num_queries:
        How many queries to generate.
    arities:
        The join arities to mix in equal parts (the paper uses (2, 3, 4) for
        the simulation and (2, 3) for the cluster deployment).
    zipf_exponent:
        Skew of base-stream popularity (0 = uniform, 1 = paper default).
    """

    num_queries: int
    arities: Tuple[int, ...] = (2, 3, 4)
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise WorkloadError("num_queries must be non-negative")
        if not self.arities or any(a < 2 for a in self.arities):
            raise WorkloadError("arities must all be >= 2")


class WorkloadGenerator:
    """Generate :class:`QueryWorkloadItem` lists over a base-stream universe."""

    def __init__(
        self,
        base_stream_names: Sequence[str],
        spec: WorkloadSpec,
        random_state: RandomLike = None,
    ) -> None:
        if not base_stream_names:
            raise WorkloadError("the base stream universe must not be empty")
        if max(spec.arities) > len(base_stream_names):
            raise WorkloadError(
                "cannot generate joins wider than the base stream universe"
            )
        self.base_stream_names = list(base_stream_names)
        self.spec = spec
        self._rng = ensure_rng(random_state)
        self._sampler = ZipfSampler(
            len(self.base_stream_names), spec.zipf_exponent, self._rng
        )

    def generate(self) -> List[QueryWorkloadItem]:
        """Generate the full workload (deterministic given the seed)."""
        items: List[QueryWorkloadItem] = []
        arities = self.spec.arities
        for index in range(self.spec.num_queries):
            arity = arities[index % len(arities)]
            ranks = self._sampler.sample_distinct(arity)
            names = tuple(self.base_stream_names[r] for r in ranks)
            items.append(QueryWorkloadItem(base_names=names))
        return items

    def generate_batches(self, batch_size: int) -> List[List[QueryWorkloadItem]]:
        """Generate the workload pre-grouped into batches of ``batch_size``."""
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        items = self.generate()
        return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]


def generate_adversarial_items(
    names_by_host: Sequence[Sequence[str]],
    count: int,
    span: int,
    random_state: RandomLike = None,
) -> List[QueryWorkloadItem]:
    """Capacity-fragmenting queries: each join spans ``span`` distinct hosts.

    A Zipf workload concentrates on popular streams, which planners exploit
    by co-locating overlapping operators.  The adversarial regime does the
    opposite: every query joins one base stream from each of ``span``
    *different* hosts, so every join edge is forced onto the network and no
    single host can absorb a whole query.  A stream of such queries
    fragments CPU and link capacity into slivers no later query fits into —
    the worst case for any placement planner's packing.

    ``names_by_host`` lists the base-stream names per host (empty hosts are
    skipped); both the host subset and the per-host stream choice are
    seeded draws, so the adversarial trace is as reproducible as the
    Zipfian one.
    """
    pools = [list(names) for names in names_by_host if names]
    if span < 2:
        raise WorkloadError("adversarial queries must span at least 2 hosts")
    if len(pools) < span:
        raise WorkloadError(
            f"adversarial span {span} exceeds the {len(pools)} hosts "
            "that inject base streams"
        )
    rng = ensure_rng(random_state)
    items: List[QueryWorkloadItem] = []
    for _ in range(count):
        hosts = rng.choice(len(pools), size=span, replace=False)
        names = tuple(
            pools[int(h)][int(rng.integers(len(pools[int(h)])))] for h in hosts
        )
        items.append(QueryWorkloadItem(base_names=names))
    return items
