"""Churn trace generation: timed event schedules over a scenario.

The static workloads of :mod:`repro.workloads.generator` are arrival lists;
a *churn trace* extends them with time: Poisson arrivals, Zipf-skewed query
lifetimes (most clients leave quickly, a heavy tail stays for the whole
run), seeded host failure/recovery injection, periodic operator-cost drift
and periodic adaptive re-planning ticks.  The output is an
:class:`~repro.sim.events.EventSchedule` that
:class:`~repro.sim.harness.SimulationHarness` can drain against any
registered planner.

Everything is derived deterministically from ``ChurnTraceConfig.seed``
(through independent child RNG streams per concern, so e.g. adding drift
events never perturbs the arrival process), which is what makes churn
simulations reproducible and comparable across planners.

``CHURN_SCENARIOS`` names ready-made configurations the experiments, the
example script and the CI quick-run all share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.sim.events import (
    EventSchedule,
    HostFailure,
    HostRecovery,
    LoadDrift,
    QueryArrival,
    QueryDeparture,
    ReplanTick,
    SimEvent,
    SitePartition,
    SiteRecovery,
    WanDrift,
)
from repro.utils.rng import ensure_rng, spawn_rng
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    generate_adversarial_items,
)
from repro.workloads.scenarios import Scenario
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class ChurnTraceConfig:
    """Parameters of one churn trace.

    Attributes
    ----------
    duration:
        Simulated time horizon (arbitrary units; events past it are cut).
    arrival_rate:
        Poisson arrival rate (queries per time unit).
    min_lifetime:
        Shortest possible query lifetime.
    lifetime_buckets / lifetime_zipf_exponent:
        Query lifetimes are ``min_lifetime × (rank + 1)`` with ``rank``
        drawn Zipf-skewed from ``lifetime_buckets`` ranks — rank 0 (the
        shortest lifetime) is the most popular, producing the short-lived
        majority plus a heavy tail of long-running queries.  Queries whose
        departure would fall past ``duration`` simply never depart.
    num_host_failures:
        How many host-failure events to inject, at seeded times in the
        middle ``(0.15, 0.85) × duration`` of the run, on seeded victims.
        Victims are distinct and capped at ``num_hosts - 1``, so at least
        one host always survives even when no failure ever recovers.
    recovery_delay:
        Failed hosts rejoin after this delay (``None`` = never).
    drift_period / drift_factor / drift_operators:
        Every ``drift_period`` time units, ``drift_operators`` placed
        operators drift to ``drift_factor`` × their estimated cost
        (``drift_period=None`` disables drift).
    replan_period:
        Period of adaptive re-planning ticks (``None`` disables them).
    burst_factor / burst_start_frac / burst_end_frac:
        Flash-crowd support: within ``[burst_start_frac, burst_end_frac] ×
        duration`` the arrival rate is multiplied by ``burst_factor``
        (1.0 = no burst).
    arities / zipf_exponent:
        Forwarded to the workload generator (query shapes and overlap).
    site_locality:
        Fraction of arrivals drawn from a *single* seeded site's base
        streams (federated scenarios only; 0.0 keeps the flat behaviour).
        Site-local arrivals are what a federated planner can keep inside
        one shard; the remainder draws from the full universe and may span
        sites.  Ignored on single-site scenarios.
    num_site_partitions:
        How many site-partition events to inject, at seeded times in the
        middle of the run, on seeded distinct victim sites (capped at
        ``num_sites - 1``; single-site scenarios get none).
    partition_recovery_delay:
        Partitioned sites re-attach after this delay (``None`` = never).
    wan_drift_period / wan_drift_factor:
        Every ``wan_drift_period`` time units the effective WAN gateway
        capacity alternates between ``wan_drift_factor`` × nominal
        (congestion when < 1) and nominal again (``None`` disables WAN
        drift; single-site scenarios generate none).
    diurnal_period / diurnal_amplitude:
        Diurnal traffic wave: the arrival rate is modulated by
        ``1 + amplitude × sin(2π t / period)`` — a smooth day/night cycle
        instead of the flash crowd's step.  ``None`` period or zero
        amplitude disables it; the amplitude must stay below 1 so the rate
        never reaches zero.  Composes multiplicatively with the burst
        window.
    universe_limit:
        Restrict arrivals to the *first* ``universe_limit`` base streams —
        the hot-key regime where a handful of popular streams receive
        nearly all queries.  Applies to the flat/global universe only
        (site-local pools keep their full per-site universes) and must be
        at least the largest arity.  ``None`` keeps the full universe.
    adversarial_fraction / adversarial_span:
        Replace a seeded ``adversarial_fraction`` of arrivals with
        capacity-fragmenting queries that join one base stream from each
        of ``adversarial_span`` distinct hosts (see
        :func:`~repro.workloads.generator.generate_adversarial_items`).
        The span is clamped to the number of stream-injecting hosts;
        fraction 0 keeps the trace bit-identical to the plain path.
    correlated_site_partitions / correlated_partition_frac:
        Correlated multi-site failure: at ``correlated_partition_frac ×
        duration`` this many seeded distinct sites are partitioned *at the
        same instant* (capped at ``num_sites - 1``; single-site scenarios
        get none), healing together after ``partition_recovery_delay``.
        Models a shared-cause WAN outage rather than the independent
        partitions of ``num_site_partitions``.
    seed:
        Root seed of every random stream in the trace.
    """

    duration: float = 100.0
    arrival_rate: float = 0.6
    min_lifetime: float = 10.0
    lifetime_buckets: int = 12
    lifetime_zipf_exponent: float = 1.1
    num_host_failures: int = 0
    recovery_delay: Optional[float] = None
    drift_period: Optional[float] = None
    drift_factor: float = 1.8
    drift_operators: int = 2
    replan_period: Optional[float] = None
    burst_factor: float = 1.0
    burst_start_frac: float = 0.0
    burst_end_frac: float = 0.0
    arities: Tuple[int, ...] = (2, 3)
    zipf_exponent: float = 1.0
    site_locality: float = 0.0
    num_site_partitions: int = 0
    partition_recovery_delay: Optional[float] = None
    wan_drift_period: Optional[float] = None
    wan_drift_factor: float = 0.5
    diurnal_period: Optional[float] = None
    diurnal_amplitude: float = 0.0
    universe_limit: Optional[int] = None
    adversarial_fraction: float = 0.0
    adversarial_span: int = 3
    correlated_site_partitions: int = 0
    correlated_partition_frac: float = 0.45
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError("duration must be positive")
        if self.arrival_rate <= 0:
            raise WorkloadError("arrival_rate must be positive")
        if self.min_lifetime <= 0:
            raise WorkloadError("min_lifetime must be positive")
        if self.lifetime_buckets < 1:
            raise WorkloadError("lifetime_buckets must be >= 1")
        if self.num_host_failures < 0:
            raise WorkloadError("num_host_failures must be non-negative")
        for period in (
            self.drift_period,
            self.replan_period,
            self.recovery_delay,
            self.wan_drift_period,
            self.partition_recovery_delay,
            self.diurnal_period,
        ):
            if period is not None and period <= 0:
                raise WorkloadError("periods/delays must be positive when set")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal_amplitude must be within [0, 1)")
        if self.universe_limit is not None and self.universe_limit < max(
            self.arities
        ):
            raise WorkloadError(
                "universe_limit must cover at least the largest arity"
            )
        if not 0.0 <= self.adversarial_fraction <= 1.0:
            raise WorkloadError("adversarial_fraction must be within [0, 1]")
        if self.adversarial_span < 2:
            raise WorkloadError("adversarial_span must be >= 2")
        if self.correlated_site_partitions < 0:
            raise WorkloadError(
                "correlated_site_partitions must be non-negative"
            )
        if not 0.0 < self.correlated_partition_frac < 1.0:
            raise WorkloadError(
                "correlated_partition_frac must be within (0, 1)"
            )
        if not 0.0 <= self.site_locality <= 1.0:
            raise WorkloadError("site_locality must be within [0, 1]")
        if self.num_site_partitions < 0:
            raise WorkloadError("num_site_partitions must be non-negative")
        if self.wan_drift_factor <= 0:
            raise WorkloadError("wan_drift_factor must be positive")
        if self.burst_factor < 1.0:
            raise WorkloadError("burst_factor must be >= 1.0")
        if not (0.0 <= self.burst_start_frac <= self.burst_end_frac <= 1.0):
            raise WorkloadError(
                "burst window fractions must satisfy 0 <= start <= end <= 1"
            )


def _generate_items(scenario: Scenario, config: ChurnTraceConfig, root, count: int):
    """The workload items of a trace, optionally with site-local arrivals.

    Without locality (or on a single-site scenario) this is exactly the
    original flat path — one generator over the full base-stream universe —
    so pre-federation traces stay bit-identical.  With locality, each
    arrival is first assigned (seeded) either to one site's stream universe
    or to the global one, and per-universe child generators fill the slots
    in arrival order.
    """
    spec = WorkloadSpec(
        num_queries=count,
        arities=config.arities,
        zipf_exponent=config.zipf_exponent,
    )
    global_universe = scenario.base_stream_names()
    if config.universe_limit is not None:
        # Hot-key regime: all global arrivals hit the first few streams.
        global_universe = global_universe[: config.universe_limit]
    flat = config.site_locality <= 0.0 or scenario.num_sites <= 1
    if flat:
        items = WorkloadGenerator(
            global_universe,
            spec,
            random_state=spawn_rng(root, "workload"),
        ).generate()
        return _apply_adversarial(scenario, config, root, items)

    min_universe = max(config.arities)
    site_universe: Dict[int, List[str]] = {
        site: scenario.site_stream_names(site)
        for site in range(scenario.num_sites)
    }
    site_rng = spawn_rng(root, "sites")
    choices: List[Optional[int]] = []
    for _ in range(count):
        if float(site_rng.random()) < config.site_locality:
            site = int(site_rng.integers(scenario.num_sites))
            # A site too small for the largest arity cannot host local
            # queries; such arrivals fall back to the global universe.
            if len(site_universe[site]) >= min_universe:
                choices.append(site)
                continue
        choices.append(None)

    from dataclasses import replace as _replace

    pools: Dict[Optional[int], List] = {}
    # Deterministic pool order (global universe first, then sites by id):
    # spawn_rng draws from the *parent* stream, so the order of these calls
    # is part of the seeding contract — iterating the raw set would leak
    # hash(None)'s per-process value into every generated trace.
    universes = sorted(set(choices), key=lambda u: (u is not None, u or 0))
    for universe in universes:
        needed = sum(1 for c in choices if c == universe)
        if universe is None:
            names = global_universe
            stream_name = "workload"
        else:
            names = site_universe[universe]
            stream_name = f"workload_site{universe}"
        pools[universe] = WorkloadGenerator(
            names,
            _replace(spec, num_queries=needed),
            random_state=spawn_rng(root, stream_name),
        ).generate()
    items = []
    cursors: Dict[Optional[int], int] = {u: 0 for u in pools}
    for universe in choices:
        items.append(pools[universe][cursors[universe]])
        cursors[universe] += 1
    return _apply_adversarial(scenario, config, root, items)


def _apply_adversarial(
    scenario: Scenario, config: ChurnTraceConfig, root, items: List
) -> List:
    """Replace a seeded fraction of ``items`` with capacity-fragmenting
    queries (see :func:`generate_adversarial_items`).

    Substitution happens *after* the normal items are generated, from a
    child RNG spawned only when the regime is active, so the plain trace —
    and every other child stream — stays bit-identical at fraction 0.
    """
    if config.adversarial_fraction <= 0.0 or not items:
        return items
    pools = [names for names in scenario.streams_by_host() if names]
    span = min(config.adversarial_span, len(pools))
    if span < 2:
        return items
    adversarial_rng = spawn_rng(root, "adversarial")
    flags = [
        float(adversarial_rng.random()) < config.adversarial_fraction
        for _ in items
    ]
    replacements = iter(
        generate_adversarial_items(
            pools, sum(flags), span, random_state=adversarial_rng
        )
    )
    return [
        next(replacements) if flag else item
        for flag, item in zip(flags, items)
    ]


def build_churn_schedule(
    scenario: Scenario, config: Optional[ChurnTraceConfig] = None
) -> EventSchedule:
    """Generate the :class:`EventSchedule` of ``config`` over ``scenario``.

    The scenario contributes the base-stream universe (query shapes) and
    the host count (failure targets); the schedule itself references hosts
    by id and arrivals by index, so it can be replayed against any fresh
    catalog built from the same scenario.
    """
    config = config or ChurnTraceConfig()
    root = ensure_rng(config.seed)
    arrival_rng = spawn_rng(root, "arrivals")
    lifetime_rng = spawn_rng(root, "lifetimes")
    failure_rng = spawn_rng(root, "failures")

    events: List[SimEvent] = []

    # ------------------------------------------------------- arrivals/departures
    # A (possibly piecewise-constant) Poisson process: inside the burst
    # window the rate is multiplied by burst_factor.
    burst_start = config.burst_start_frac * config.duration
    burst_end = config.burst_end_frac * config.duration

    def rate_at(time: float) -> float:
        rate = config.arrival_rate
        if config.burst_factor > 1.0 and burst_start <= time < burst_end:
            rate *= config.burst_factor
        if config.diurnal_period is not None and config.diurnal_amplitude > 0.0:
            rate *= 1.0 + config.diurnal_amplitude * math.sin(
                2.0 * math.pi * time / config.diurnal_period
            )
        return rate

    arrival_times: List[float] = []
    clock = 0.0
    while True:
        clock += float(arrival_rng.exponential(1.0 / rate_at(clock)))
        if clock >= config.duration:
            break
        arrival_times.append(clock)
    items = _generate_items(scenario, config, root, len(arrival_times))
    lifetime_sampler = ZipfSampler(
        config.lifetime_buckets, config.lifetime_zipf_exponent, lifetime_rng
    )
    for index, (time, item) in enumerate(zip(arrival_times, items)):
        rank = lifetime_sampler.sample()
        lifetime = config.min_lifetime * (rank + 1)
        events.append(
            QueryArrival(time=time, item=item, arrival_index=index, lifetime=lifetime)
        )
        if time + lifetime < config.duration:
            events.append(
                QueryDeparture(time=time + lifetime, arrival_index=index)
            )

    # ------------------------------------------------------------------ failures
    max_failures = min(config.num_host_failures, max(0, scenario.num_hosts - 1))
    if max_failures:
        failure_times = sorted(
            float(t)
            for t in failure_rng.uniform(
                0.15 * config.duration, 0.85 * config.duration, size=max_failures
            )
        )
        victims = [
            int(h)
            for h in failure_rng.choice(
                scenario.num_hosts, size=max_failures, replace=False
            )
        ]
        for time, host in zip(failure_times, victims):
            events.append(HostFailure(time=time, host=host))
            if config.recovery_delay is not None:
                recovery_time = time + config.recovery_delay
                if recovery_time < config.duration:
                    events.append(HostRecovery(time=recovery_time, host=host))

    # -------------------------------------------------- site partitions / WAN
    max_partitions = min(config.num_site_partitions, max(0, scenario.num_sites - 1))
    if max_partitions:
        partition_rng = spawn_rng(root, "site_partitions")
        partition_times = sorted(
            float(t)
            for t in partition_rng.uniform(
                0.15 * config.duration, 0.85 * config.duration, size=max_partitions
            )
        )
        partitioned_sites = [
            int(s)
            for s in partition_rng.choice(
                scenario.num_sites, size=max_partitions, replace=False
            )
        ]
        for time, site in zip(partition_times, partitioned_sites):
            events.append(SitePartition(time=time, site=site))
            if config.partition_recovery_delay is not None:
                recovery_time = time + config.partition_recovery_delay
                if recovery_time < config.duration:
                    events.append(SiteRecovery(time=recovery_time, site=site))
    max_correlated = min(
        config.correlated_site_partitions, max(0, scenario.num_sites - 1)
    )
    if max_correlated:
        correlated_rng = spawn_rng(root, "correlated_partitions")
        cut_time = config.correlated_partition_frac * config.duration
        correlated_sites = [
            int(s)
            for s in correlated_rng.choice(
                scenario.num_sites, size=max_correlated, replace=False
            )
        ]
        for site in correlated_sites:
            events.append(SitePartition(time=cut_time, site=site))
            if config.partition_recovery_delay is not None:
                recovery_time = cut_time + config.partition_recovery_delay
                if recovery_time < config.duration:
                    events.append(SiteRecovery(time=recovery_time, site=site))
    if config.wan_drift_period is not None and scenario.num_sites > 1:
        tick = config.wan_drift_period
        congested = True
        while tick < config.duration:
            # Congestion pulses: capacities drop to the drift factor, then
            # recover to nominal one period later, and so on.
            factor = config.wan_drift_factor if congested else 1.0
            events.append(WanDrift(time=tick, factor=factor))
            congested = not congested
            tick += config.wan_drift_period

    # ------------------------------------------------------------- drift/replan
    if config.drift_period is not None:
        tick = config.drift_period
        while tick < config.duration:
            events.append(
                LoadDrift(
                    time=tick,
                    factor=config.drift_factor,
                    num_operators=config.drift_operators,
                )
            )
            tick += config.drift_period
    if config.replan_period is not None:
        tick = config.replan_period
        while tick < config.duration:
            events.append(ReplanTick(time=tick))
            tick += config.replan_period

    # Stable order: by time, with ties broken by a fixed kind priority so
    # that e.g. a departure at t precedes an arrival at the same t (frees
    # resources first) and replan ticks run after the drift they react to.
    priority = {
        QueryDeparture: 0,
        HostRecovery: 1,
        SiteRecovery: 2,
        HostFailure: 3,
        SitePartition: 4,
        QueryArrival: 5,
        LoadDrift: 6,
        WanDrift: 7,
        ReplanTick: 8,
    }
    events.sort(key=lambda e: (e.time, priority[type(e)], getattr(e, "arrival_index", -1)))
    return EventSchedule(events=events, seed=config.seed, duration=config.duration)


#: Named churn scenarios: name -> (description, config factory).  Factories
#: take the seed so sweeps can re-roll a scenario without redefining it.
CHURN_SCENARIOS: Dict[str, Tuple[str, Callable[[int], ChurnTraceConfig]]] = {
    "steady_churn": (
        "Poisson arrivals with Zipf lifetimes; no failures, no drift — the "
        "baseline open system the other scenarios perturb.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.6,
            seed=seed,
        ),
    ),
    "host_flap": (
        "Steady churn plus two host failures that recover after 20 time "
        "units — exercises eviction, re-admission and base-stream loss.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.6,
            num_host_failures=2,
            recovery_delay=20.0,
            seed=seed,
        ),
    ),
    "failover": (
        "Steady churn with one permanent host failure mid-run — capacity "
        "shrinks for good and the admission level must settle lower.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.6,
            num_host_failures=1,
            recovery_delay=None,
            seed=seed,
        ),
    ),
    "drift_storm": (
        "Operator costs drift sharply every 10 time units with adaptive "
        "re-planning every 15 — the §IV-B adaptive story end to end.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.5,
            drift_period=10.0,
            drift_factor=2.2,
            drift_operators=3,
            replan_period=15.0,
            seed=seed,
        ),
    ),
    "flash_crowd": (
        "A 3x arrival burst in the middle third of the run with short "
        "lifetimes — tests admission under pressure and recovery after.",
        lambda seed: ChurnTraceConfig(
            duration=90.0,
            arrival_rate=0.6,
            burst_factor=3.0,
            burst_start_frac=1.0 / 3.0,
            burst_end_frac=2.0 / 3.0,
            min_lifetime=6.0,
            lifetime_buckets=6,
            seed=seed,
        ),
    ),
    "site_partition": (
        "Federated churn with mostly site-local arrivals and one site "
        "partition that heals after 25 time units — cross-site queries are "
        "evicted at the cut and re-planned, ideally inside one side.  "
        "Degrades to steady churn on single-site scenarios.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.5,
            site_locality=0.75,
            num_site_partitions=1,
            partition_recovery_delay=25.0,
            seed=seed,
        ),
    ),
    "wan_stress": (
        "Federated churn under WAN congestion pulses: every 15 time units "
        "the shared gateway capacities drop to 40% of nominal and recover "
        "one period later, evicting and re-planning the queries whose "
        "gateways no longer fit.  Degrades to steady churn on single-site "
        "scenarios.",
        lambda seed: ChurnTraceConfig(
            duration=100.0,
            arrival_rate=0.5,
            site_locality=0.6,
            wan_drift_period=15.0,
            wan_drift_factor=0.4,
            seed=seed,
        ),
    ),
}


def build_named_churn_schedule(
    name: str, scenario: Scenario, seed: Optional[int] = None
) -> EventSchedule:
    """Build the schedule of the named churn scenario over ``scenario``.

    ``seed`` overrides the scenario seed (default: the scenario's own).
    """
    try:
        _description, factory = CHURN_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(CHURN_SCENARIOS))
        raise WorkloadError(
            f"unknown churn scenario {name!r}; known scenarios: {known}"
        ) from None
    config = factory(scenario.seed if seed is None else seed)
    return build_churn_schedule(scenario, config)
