"""Canonical experiment scenarios (§V-A simulation, §V-B cluster).

A :class:`Scenario` bundles the parameters of one evaluation environment and
can build fresh, independent :class:`~repro.dsps.catalog.SystemCatalog`
instances and workloads from them.  Fresh catalogs matter because every
planner under comparison must start from an identical, empty system.

The default sizes are scaled down from the paper (50 hosts / 500 base
streams / 1000 queries) so the full benchmark suite runs in minutes on a
laptop; every size is a parameter, so paper-scale runs are a constructor
argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


@dataclass(frozen=True)
class SimulationScenarioConfig:
    """Parameters of the simulated data-centre environment (§V-A).

    Paper values: 50 hosts, 500 base streams at 10 Mbps, 1 Gbps links, CPU
    calibrated to make the system both CPU- and bandwidth-constrained.  The
    scaled defaults keep the same base-stream rate and link speed but shrink
    the cluster so a full admission experiment saturates within ~60 queries.
    The exhaustive (bushy) decomposition is the default because join-order
    flexibility is part of what the paper credits SQPR for ("SQPR is able to
    adjust the query structure").
    """

    num_hosts: int = 8
    num_base_streams: int = 60
    base_stream_rate: float = 10.0  # Mbps
    link_capacity: float = 1000.0  # Mbps
    host_bandwidth: float = 400.0  # Mbps
    host_cpu_capacity: float = 8.0  # "join units"
    cpu_per_rate: float = 0.05
    cpu_fixed: float = 0.1
    selectivity_low: float = 0.2
    selectivity_high: float = 0.5
    decomposition: DecompositionMode = DecompositionMode.EXHAUSTIVE
    seed: int = 7
    #: Number of resource sites the hosts are grouped into (federated
    #: topologies; 1 = the paper's flat data centre).
    num_sites: int = 1
    #: Shared WAN gateway capacity between every site pair (Mbps); ``None``
    #: leaves inter-site traffic constrained only by per-pair links.
    wan_capacity: Optional[float] = None


@dataclass(frozen=True)
class ClusterScenarioConfig:
    """Parameters of the Emulab cluster deployment (§V-B).

    Paper values: 15 hosts on a 10 Mbps LAN, 300 base streams with 10 Kbps
    rates, each host saturating at roughly 15 two/three-way joins.
    """

    num_hosts: int = 15
    num_base_streams: int = 300
    base_stream_rate: float = 0.01  # Mbps (10 Kbps)
    link_capacity: float = 10.0  # Mbps
    host_bandwidth: float = 10.0  # Mbps
    host_cpu_capacity: float = 1.5
    cpu_per_rate: float = 0.05
    cpu_fixed: float = 0.1
    selectivity_low: float = 0.2
    selectivity_high: float = 0.5
    decomposition: DecompositionMode = DecompositionMode.CANONICAL
    seed: int = 11
    num_sites: int = 1
    wan_capacity: Optional[float] = None


@dataclass
class Scenario:
    """A reproducible environment: catalog factory plus workload factory."""

    name: str
    num_hosts: int
    num_base_streams: int
    base_stream_rate: float
    link_capacity: float
    host_bandwidth: float
    host_cpu_capacity: float
    cost_model: LinearCostModel
    decomposition: DecompositionMode
    seed: int
    num_sites: int = 1
    wan_capacity: Optional[float] = None

    # -------------------------------------------------------------------- sites
    def site_of_host(self, host_id: int) -> int:
        """The site of ``host_id``: contiguous blocks of hosts per site."""
        if self.num_sites <= 1:
            return 0
        return host_id * self.num_sites // self.num_hosts

    # ------------------------------------------------------------------ catalog
    def base_stream_names(self) -> List[str]:
        """The names of the base streams of this scenario."""
        return [f"b{i}" for i in range(self.num_base_streams)]

    def _stream_host_order(self) -> List[int]:
        """The seeded host shuffle base streams are dealt over (round-robin)."""
        rng = ensure_rng(self.seed)
        return [int(h) for h in rng.permutation(self.num_hosts)]

    def streams_by_host(self) -> List[List[str]]:
        """Base-stream names grouped by injection host (index = host id).

        Recomputes the same seeded shuffle :meth:`build_catalog` uses, so
        host-aware workloads (e.g. the adversarial capacity-fragmenting
        generator) can be derived without building a catalog.
        """
        host_order = self._stream_host_order()
        grouped: List[List[str]] = [[] for _ in range(self.num_hosts)]
        for index, name in enumerate(self.base_stream_names()):
            grouped[host_order[index % self.num_hosts]].append(name)
        return grouped

    def site_stream_names(self, site: int) -> List[str]:
        """Names of the base streams whose injection host lies in ``site``.

        Recomputes the same seeded shuffle :meth:`build_catalog` uses, so
        site-local workloads can be generated without building a catalog.
        """
        host_order = self._stream_host_order()
        return [
            name
            for index, name in enumerate(self.base_stream_names())
            if self.site_of_host(host_order[index % self.num_hosts]) == site
        ]

    def build_catalog(self) -> SystemCatalog:
        """Build a fresh catalog: hosts, topology and base streams.

        Base streams are distributed uniformly (round-robin from a seeded
        shuffle) over the hosts, as in the paper's workload description.
        Hosts are grouped into ``num_sites`` contiguous blocks; with a
        ``wan_capacity`` the site pairs share constrained WAN gateways.
        """
        catalog = SystemCatalog(
            cost_model=self.cost_model,
            decomposition=self.decomposition,
            default_link_capacity=self.link_capacity,
            default_wan_capacity=self.wan_capacity if self.num_sites > 1 else None,
        )
        for index in range(self.num_hosts):
            catalog.add_host(
                cpu_capacity=self.host_cpu_capacity,
                bandwidth_capacity=self.host_bandwidth,
                name=f"host{index}",
                site=self.site_of_host(index),
            )
        host_order = self._stream_host_order()
        for index, name in enumerate(self.base_stream_names()):
            host_id = host_order[index % self.num_hosts]
            catalog.add_base_stream(name, self.base_stream_rate, host_id)
        return catalog

    # ----------------------------------------------------------------- workload
    def workload(
        self,
        num_queries: int,
        arities: Tuple[int, ...] = (2, 3, 4),
        zipf_exponent: float = 1.0,
        seed_offset: int = 0,
    ) -> List[QueryWorkloadItem]:
        """Generate a deterministic workload over this scenario's streams."""
        spec = WorkloadSpec(
            num_queries=num_queries, arities=arities, zipf_exponent=zipf_exponent
        )
        generator = WorkloadGenerator(
            self.base_stream_names(), spec, random_state=self.seed + 1000 + seed_offset
        )
        return generator.generate()

    # ------------------------------------------------------------------ scaling
    def with_hosts(self, num_hosts: int) -> "Scenario":
        """A copy of this scenario with a different number of hosts."""
        return replace(self, num_hosts=num_hosts)

    def with_resources(
        self, cpu_factor: float = 1.0, bandwidth_factor: float = 1.0
    ) -> "Scenario":
        """A copy with scaled per-host CPU and network capacities (Fig. 5b)."""
        return replace(
            self,
            host_cpu_capacity=self.host_cpu_capacity * cpu_factor,
            host_bandwidth=self.host_bandwidth * bandwidth_factor,
            link_capacity=self.link_capacity * bandwidth_factor,
        )

    def with_base_streams(self, num_base_streams: int) -> "Scenario":
        """A copy with a different base-stream universe size (Fig. 4c)."""
        return replace(self, num_base_streams=num_base_streams)

    def with_sites(
        self, num_sites: int, wan_capacity: Optional[float] = None
    ) -> "Scenario":
        """A copy grouped into ``num_sites`` sites (federated scaling).

        ``wan_capacity`` overrides the shared gateway capacity; omitting it
        keeps the scenario's current setting.
        """
        return replace(
            self,
            num_sites=num_sites,
            wan_capacity=self.wan_capacity if wan_capacity is None else wan_capacity,
        )


def build_simulation_scenario(
    config: Optional[SimulationScenarioConfig] = None,
) -> Scenario:
    """The simulated data-centre scenario of §V-A."""
    config = config or SimulationScenarioConfig()
    cost_model = LinearCostModel(
        cpu_per_rate=config.cpu_per_rate,
        cpu_fixed=config.cpu_fixed,
        selectivity_low=config.selectivity_low,
        selectivity_high=config.selectivity_high,
        seed=config.seed,
    )
    return Scenario(
        name="simulation",
        num_hosts=config.num_hosts,
        num_base_streams=config.num_base_streams,
        base_stream_rate=config.base_stream_rate,
        link_capacity=config.link_capacity,
        host_bandwidth=config.host_bandwidth,
        host_cpu_capacity=config.host_cpu_capacity,
        cost_model=cost_model,
        decomposition=config.decomposition,
        seed=config.seed,
        num_sites=config.num_sites,
        wan_capacity=config.wan_capacity,
    )


def build_cluster_scenario(
    config: Optional[ClusterScenarioConfig] = None,
) -> Scenario:
    """The Emulab-like cluster deployment scenario of §V-B."""
    config = config or ClusterScenarioConfig()
    cost_model = LinearCostModel(
        cpu_per_rate=config.cpu_per_rate,
        cpu_fixed=config.cpu_fixed,
        selectivity_low=config.selectivity_low,
        selectivity_high=config.selectivity_high,
        seed=config.seed,
    )
    return Scenario(
        name="cluster",
        num_hosts=config.num_hosts,
        num_base_streams=config.num_base_streams,
        base_stream_rate=config.base_stream_rate,
        link_capacity=config.link_capacity,
        host_bandwidth=config.host_bandwidth,
        host_cpu_capacity=config.host_cpu_capacity,
        cost_model=cost_model,
        decomposition=config.decomposition,
        seed=config.seed,
        num_sites=config.num_sites,
        wan_capacity=config.wan_capacity,
    )
