"""Workload generation, canonical experiment scenarios and churn traces."""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    generate_adversarial_items,
)
from repro.workloads.scenarios import (
    ClusterScenarioConfig,
    Scenario,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)
from repro.workloads.churn import (
    CHURN_SCENARIOS,
    ChurnTraceConfig,
    build_churn_schedule,
    build_named_churn_schedule,
)

__all__ = [
    "ZipfSampler",
    "WorkloadGenerator",
    "WorkloadSpec",
    "generate_adversarial_items",
    "Scenario",
    "SimulationScenarioConfig",
    "ClusterScenarioConfig",
    "build_simulation_scenario",
    "build_cluster_scenario",
    "CHURN_SCENARIOS",
    "ChurnTraceConfig",
    "build_churn_schedule",
    "build_named_churn_schedule",
]
