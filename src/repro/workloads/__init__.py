"""Workload generation and canonical experiment scenarios."""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import (
    ClusterScenarioConfig,
    Scenario,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)

__all__ = [
    "ZipfSampler",
    "WorkloadGenerator",
    "WorkloadSpec",
    "Scenario",
    "SimulationScenarioConfig",
    "ClusterScenarioConfig",
    "build_simulation_scenario",
    "build_cluster_scenario",
]
