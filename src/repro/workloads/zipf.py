"""A deterministic Zipf sampler over a finite universe.

The paper selects the base streams of each query "according to a Zipfian
distribution with parameter 1", and Fig. 4(c) sweeps the Zipf parameter from
0 (uniform) to 2 to control the degree of overlap between queries.  NumPy's
built-in Zipf sampler only supports parameters > 1 and an unbounded support,
so this module implements the standard finite-support Zipf distribution

    P(rank k) ∝ 1 / k^s,   k = 1..N, s >= 0

with inverse-CDF sampling from a seeded generator.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.rng import RandomLike, ensure_rng
from repro.utils.validation import check_non_negative


class ZipfSampler:
    """Sample ranks 0..n-1 with probability proportional to 1/(rank+1)^s."""

    def __init__(self, num_items: int, exponent: float, random_state: RandomLike = None) -> None:
        if num_items <= 0:
            raise WorkloadError("ZipfSampler needs a positive number of items")
        check_non_negative("zipf exponent", exponent)
        self.num_items = int(num_items)
        self.exponent = float(exponent)
        self._rng = ensure_rng(random_state)
        ranks = np.arange(1, self.num_items + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)

    @property
    def probabilities(self) -> np.ndarray:
        """The probability of each rank (rank 0 is the most popular)."""
        return self._probabilities.copy()

    def sample(self) -> int:
        """Draw a single rank in [0, num_items)."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` ranks (with repetition)."""
        if count < 0:
            raise WorkloadError("sample count must be non-negative")
        u = self._rng.random(count)
        return [int(i) for i in np.searchsorted(self._cdf, u, side="left")]

    def sample_distinct(self, count: int, max_attempts: int = 10_000) -> List[int]:
        """Draw ``count`` distinct ranks (rejection sampling).

        Used to pick the distinct base streams of one query.  Raises
        :class:`WorkloadError` when the universe is too small.
        """
        if count > self.num_items:
            raise WorkloadError(
                f"cannot draw {count} distinct items from a universe of {self.num_items}"
            )
        chosen: List[int] = []
        seen = set()
        attempts = 0
        while len(chosen) < count:
            attempts += 1
            if attempts > max_attempts:
                # Extremely skewed distributions may rarely yield distinct
                # ranks; fall back to the most popular unseen ranks.
                for rank in range(self.num_items):
                    if rank not in seen:
                        seen.add(rank)
                        chosen.append(rank)
                        if len(chosen) == count:
                            break
                break
            rank = self.sample()
            if rank not in seen:
                seen.add(rank)
                chosen.append(rank)
        return chosen
