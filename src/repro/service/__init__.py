"""Long-running admission service over the planner API.

The :class:`~repro.service.admission.AdmissionService` turns a one-shot
planner into a request-path component: arrivals enter a bounded queue,
co-arriving queries coalesce into batch admissions (one MILP build +
solve per batch), and the build / solve / deploy stages overlap as a
pipeline with explicit backpressure, timeout, and reject-on-overload
policies.  The whole path is instrumented through the lightweight
:mod:`~repro.service.metrics` layer (counters, gauges, log-bucketed
latency histograms, JSON export).
"""

from .metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from .admission import (
    AdmissionService,
    AdmissionTicket,
    AdmissionTimeout,
    OverloadPolicy,
    QueueFullError,
    ServiceClosed,
    ServiceConfig,
)

__all__ = [
    "AdmissionService",
    "AdmissionTicket",
    "AdmissionTimeout",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "OverloadPolicy",
    "QueueFullError",
    "ServiceClosed",
    "ServiceConfig",
]
