"""Lightweight, thread-safe service metrics.

Three instrument kinds cover the admission path: monotonically
increasing :class:`Counter`\\ s (arrivals, admissions, fallbacks),
:class:`Gauge`\\ s for instantaneous levels (queue depth), and
:class:`LatencyHistogram`\\ s with geometrically spaced buckets for
tail-latency quantiles.  A :class:`MetricsRegistry` names and owns the
instruments and exports one JSON-serialisable snapshot.

Everything here is safe under concurrent use from the pipeline stages
and caller threads; instruments take a per-instrument lock only around
small mutations, never around I/O.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """An instantaneous level that can move both ways (queue depth)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class LatencyHistogram:
    """Latency distribution over geometrically spaced buckets.

    Buckets span ``lowest`` to ``highest`` seconds with a constant
    ``growth`` ratio (defaults: 100µs to ~100s, ratio 2 → 21 buckets),
    plus an overflow bucket.  Quantiles interpolate geometrically inside
    the covering bucket, so a reported p99 is accurate to within one
    growth factor — plenty for benchmark reporting, at O(1) memory.
    """

    def __init__(
        self,
        name: str,
        lowest: float = 1e-4,
        highest: float = 100.0,
        growth: float = 2.0,
    ) -> None:
        if lowest <= 0 or highest <= lowest or growth <= 1.0:
            raise ValueError("need 0 < lowest < highest and growth > 1")
        self.name = name
        bounds: List[float] = []
        bound = lowest
        while bound < highest:
            bounds.append(bound)
            bound *= growth
        bounds.append(bound)
        self._bounds = bounds  # upper bound of each bucket, ascending
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        index = self._bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index >= len(self._bounds):
                        return self._max if self._max is not None else 0.0
                    upper = self._bounds[index]
                    lower = self._bounds[index - 1] if index else upper / 4.0
                    # Geometric interpolation of the rank inside the bucket.
                    fraction = (rank - (cumulative - bucket_count)) / bucket_count
                    fraction = min(max(fraction, 0.0), 1.0)
                    value = lower * math.exp(
                        fraction * math.log(upper / lower)
                    )
                    low_clip = self._min if self._min is not None else 0.0
                    high_clip = self._max if self._max is not None else value
                    return min(max(value, low_clip), high_clip)
            return self._max if self._max is not None else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": low or 0.0,
            "max": high or 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with a single JSON-serialisable snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, **kwargs: float) -> LatencyHistogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(name, **kwargs)
            return self._histograms[name]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.snapshot() for name, c in counters.items()},
            "gauges": {name: g.snapshot() for name, g in gauges.items()},
            "histograms": {
                name: h.snapshot() for name, h in histograms.items()
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
