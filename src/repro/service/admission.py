"""A long-running admission service over a planner.

The service models SQPR's intended deployment: an admission controller
sitting in the request path of a federated stream-processing system,
absorbing sustained query-arrival traffic.  Three ideas carry the
throughput story on top of the existing planners:

**Bounded intake with overload policies.**  Arrivals enter a bounded
queue.  When it is full the configured :class:`OverloadPolicy` decides:
``reject`` sheds the arrival immediately (:class:`QueueFullError`),
``block`` applies backpressure to the caller, ``timeout`` blocks for a
bounded wait and then sheds (:class:`AdmissionTimeout`).

**Batch coalescing with a sequential-equivalence fallback.**  Queries
that arrive while a solve is in flight coalesce into one batch — one
MILP model build + solve per batch (per federated site group) instead
of one per query.  Joint admission is the throughput lever under load,
but SQPR's two-stage rescue (the forced-admission stage-B replan) only
engages for singletons; the ``fallback`` policy compensates:
``"batch"`` (default) re-plans every member individually when a batch
admits *nothing* — the situation where sequential submission is known
to behave differently — while ``"rejected"`` re-plans every rejected
member for strict per-query equivalence, at sequential cost under
overload.  Measured on the federated scenarios, ``"batch"`` admits the
same queries or more than the sequential baseline (the joint model can
co-place queries that one-at-a-time greedy admission strands).

**Pipelined deploys through the cluster engine.**  Solving and
deploying overlap: the solver stage snapshots the planner's allocation
and the touched-entity sets of each batch, and the deploy stage
delta-validates exactly those entities before handing the snapshot to
:class:`~repro.dsps.engine.ClusterEngine` — the same
validate-then-adopt contract the simulation harness uses, now run per
admission batch while the next batch is already solving.

With ``pipelined=False`` the whole pipeline runs synchronously inside
:meth:`AdmissionService.submit`, which keeps event-replay deterministic
for the simulation harness and golden fixtures.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..api.base import Planner, PlanningOutcome
from ..dsps.allocation import Allocation
from ..dsps.engine import ClusterEngine
from ..exceptions import PlanningError
from ..dsps.query import Query, QueryWorkloadItem
from ..milp import SOLVER_COUNTER_FIELDS
from .metrics import MetricsRegistry

__all__ = [
    "AdmissionService",
    "AdmissionTicket",
    "AdmissionTimeout",
    "OverloadPolicy",
    "QueueFullError",
    "ServiceClosed",
    "ServiceConfig",
]

SubmitItem = Union[Query, QueryWorkloadItem]

#: How callers experience a full arrival queue.
OverloadPolicy = str  # "reject" | "block" | "timeout"

_OVERLOAD_POLICIES = ("reject", "block", "timeout")
_FALLBACK_POLICIES = ("batch", "rejected", "none")


class QueueFullError(PlanningError):
    """The arrival queue is full and the overload policy sheds load."""


class AdmissionTimeout(PlanningError):
    """Enqueueing (or waiting for a decision) exceeded its deadline."""


class ServiceClosed(PlanningError):
    """The service has been closed and accepts no further queries."""


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`AdmissionService`.

    Attributes
    ----------
    max_queue:
        Bound on the arrival queue; beyond it the ``overload_policy``
        applies.
    max_batch:
        Most queries coalesced into one batch admission.
    batch_window:
        How long the batcher waits (seconds) for co-arrivals after the
        first query of a batch before dispatching it.  Under sustained
        load the queue is never empty and the window never idles; it
        only delays the first arrival of a quiet period.
    overload_policy:
        ``"reject"`` | ``"block"`` | ``"timeout"`` — see module docs.
    enqueue_timeout:
        Bounded wait for the ``"timeout"`` policy.
    batch_time_limit:
        Flat solver budget per batch (per federated site group), passed
        to ``submit_batch``.  ``None`` keeps the planner's default
        (per-query budget scaled by batch size), which grows unbounded
        with coalesced batches under load — capping it keeps worst-case
        decision latency flat.
    fallback:
        ``"batch"`` (default), ``"rejected"``, or ``"none"`` — when to
        re-plan batch members individually, see module docs.
    pipelined:
        ``True`` runs batcher / solver / deploy as overlapping threads;
        ``False`` executes the identical stages synchronously inside
        ``submit`` (deterministic, used by the simulation harness).
    """

    max_queue: int = 1024
    max_batch: int = 32
    batch_window: float = 0.02
    overload_policy: OverloadPolicy = "block"
    enqueue_timeout: float = 1.0
    batch_time_limit: Optional[float] = None
    fallback: str = "batch"
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window < 0:
            raise ValueError("batch_window cannot be negative")
        if self.overload_policy not in _OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload_policy {self.overload_policy!r}; "
                f"expected one of {_OVERLOAD_POLICIES}"
            )
        if self.fallback not in _FALLBACK_POLICIES:
            raise ValueError(
                f"unknown fallback {self.fallback!r}; "
                f"expected one of {_FALLBACK_POLICIES}"
            )


class AdmissionTicket:
    """A caller's handle on one in-flight admission.

    Tickets resolve with the query's :class:`PlanningOutcome` once the
    decision is made *and* its batch has deployed; ``result()`` blocks
    until then.  Stage timestamps (relative to enqueue) expose where the
    latency went.
    """

    def __init__(self, item: SubmitItem) -> None:
        self.item = item
        self.enqueued_at = time.perf_counter()
        self.decided_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._event = threading.Event()
        self._outcome: Optional[PlanningOutcome] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------- completion
    def _resolve(self, outcome: PlanningOutcome) -> None:
        self._outcome = outcome
        self.completed_at = time.perf_counter()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()

    # ---------------------------------------------------------------- reading
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> PlanningOutcome:
        if not self._event.wait(timeout):
            raise AdmissionTimeout(
                "admission decision not available within the timeout"
            )
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds from enqueue to the start of the batch's solve."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.enqueued_at

    @property
    def latency(self) -> Optional[float]:
        """Seconds from enqueue to deployed decision."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


_STOP = object()


class AdmissionService:
    """Batched, pipelined admission over a planner (see module docs).

    Parameters
    ----------
    planner:
        Any :class:`~repro.api.base.Planner`.  For federated planners
        constructed with ``workers > 1`` the per-site groups of each
        batch solve on a thread pool, composing shard parallelism with
        the service's batching.
    engine:
        Optional :class:`~repro.dsps.engine.ClusterEngine` built on the
        same catalog.  When given, every batch's allocation snapshot is
        delta-validated and adopted by the engine (trusted — the service
        just validated the touched entities), so the engine's live state
        tracks admissions exactly as under the simulation harness.
    """

    def __init__(
        self,
        planner: Planner,
        engine: Optional[ClusterEngine] = None,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if engine is not None and engine.catalog is not planner.catalog:
            raise PlanningError(
                "service engine must share the planner's catalog"
            )
        self.planner = planner
        self.engine = engine
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self._arrivals: "queue.Queue" = queue.Queue(
            maxsize=self.config.max_queue
        )
        # Depth 1 between stages: the solver works on one batch while the
        # batcher coalesces the next and the deployer validates the last.
        self._deploys: "queue.Queue" = queue.Queue(maxsize=1)
        self._closed = threading.Event()
        self._sync_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stage_error: Optional[BaseException] = None
        # Tickets accepted but not yet resolved; flush() waits on this, not
        # on queue emptiness (a batch in a stage's hands is in neither queue).
        self._inflight = 0
        self._inflight_cv = threading.Condition()

        registry = self.metrics
        self._m_arrivals = registry.counter("arrivals_total")
        self._m_shed = registry.counter("shed_total")
        self._m_admitted = registry.counter("admitted_total")
        self._m_rejected = registry.counter("rejected_total")
        self._m_batches = registry.counter("batches_total")
        self._m_fallbacks = registry.counter("fallback_batches_total")
        self._m_deploys = registry.counter("deploys_total")
        self._m_deploy_failures = registry.counter("deploy_failures_total")
        self._m_reuse_exact = registry.counter("reuse_exact_total")
        self._m_reuse_partial = registry.counter("reuse_partial_total")
        self._m_queue_depth = registry.gauge("queue_depth")
        self._m_batch_size = registry.histogram(
            "batch_size", lowest=1.0, highest=4096.0, growth=2.0
        )
        self._m_queue_wait = registry.histogram("queue_wait_seconds")
        self._m_solve = registry.histogram("solve_seconds")
        self._m_deploy = registry.histogram("deploy_seconds")
        self._m_latency = registry.histogram("admission_latency_seconds")
        # One monotonic counter per simplex counter field (solver_dual_resumes_total,
        # solver_phase1_iterations_total, …) so re-plan cost is observable in
        # the same registry as admission throughput.  Outcomes of one batch
        # share a counters dict; _observe_solver_counters dedupes by identity.
        self._m_solver = {
            name: registry.counter(f"solver_{name}_total")
            for name in SOLVER_COUNTER_FIELDS
        }

        if self.config.pipelined:
            solver = threading.Thread(
                target=self._solver_loop,
                name="admission-solver",
                daemon=True,
            )
            deployer = threading.Thread(
                target=self._deploy_loop,
                name="admission-deployer",
                daemon=True,
            )
            self._threads = [solver, deployer]
            for thread in self._threads:
                thread.start()

    # ------------------------------------------------------------------ intake
    def _enqueue(self, item: SubmitItem) -> AdmissionTicket:
        if self._closed.is_set():
            raise ServiceClosed("the admission service is closed")
        if self._stage_error is not None:
            raise PlanningError(
                "the admission pipeline died"
            ) from self._stage_error
        ticket = AdmissionTicket(item)
        self._m_arrivals.inc()
        policy = self.config.overload_policy
        try:
            if policy == "block":
                self._arrivals.put(ticket)
            elif policy == "timeout":
                self._arrivals.put(
                    ticket, timeout=self.config.enqueue_timeout
                )
            else:
                self._arrivals.put_nowait(ticket)
        except queue.Full:
            self._m_shed.inc()
            error: PlanningError = (
                AdmissionTimeout(
                    "arrival queue stayed full past enqueue_timeout"
                )
                if policy == "timeout"
                else QueueFullError("arrival queue is full; load shed")
            )
            ticket._fail(error)
            raise error
        with self._inflight_cv:
            self._inflight += 1
        self._m_queue_depth.set(self._arrivals.qsize())
        return ticket

    def submit(self, item: SubmitItem) -> AdmissionTicket:
        """Enqueue one query for admission and return its ticket.

        In synchronous mode (``pipelined=False``) the query is planned
        and deployed before this returns — one query, one batch — which
        is what keeps harness replay deterministic.
        """
        ticket = self._enqueue(item)
        if not self.config.pipelined:
            with self._sync_lock:
                while not ticket.done():
                    self._drain_once()
        return ticket

    def submit_many(
        self, items: Sequence[SubmitItem]
    ) -> List[AdmissionTicket]:
        """Enqueue several queries at once.

        Unlike repeated :meth:`submit`, in synchronous mode the whole
        group is enqueued *before* draining, so it coalesces into
        ``max_batch``-sized batches deterministically — the synchronous
        twin of what the pipeline's batcher does under load.
        """
        if not self.config.pipelined:
            tickets = [self._enqueue(item) for item in items]
            with self._sync_lock:
                while any(not t.done() for t in tickets):
                    self._drain_once()
            return tickets
        return [self.submit(item) for item in items]

    def _finish(
        self,
        ticket: AdmissionTicket,
        outcome: Optional[PlanningOutcome] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if error is not None:
            ticket._fail(error)
        else:
            assert outcome is not None
            ticket._resolve(outcome)
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    # --------------------------------------------------------------- batching
    def _next_batch(
        self, block: bool
    ) -> Optional[List[AdmissionTicket]]:
        """Coalesce up to ``max_batch`` tickets from the arrival queue."""
        try:
            first = self._arrivals.get(
                block=block, timeout=0.1 if block else None
            )
        except queue.Empty:
            return None
        if first is _STOP:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.config.batch_window
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    ticket = self._arrivals.get(timeout=remaining)
                else:
                    ticket = self._arrivals.get_nowait()
            except queue.Empty:
                break
            if ticket is _STOP:
                # Preserve the sentinel for the loop's next round.
                self._arrivals.put(_STOP)
                break
            batch.append(ticket)
        self._m_queue_depth.set(self._arrivals.qsize())
        return batch

    # ----------------------------------------------------------------- stages
    def _observe_solver_counters(self, outcomes: List[PlanningOutcome]) -> None:
        """Fold the outcomes' simplex counters into the metrics registry.

        Outcomes of one planning round share a single counters dict (a
        batch, or stage A + B of a two-stage solve), so aggregation dedupes
        by object identity within this call — a ten-query batch counts its
        solve once.  Fallback re-submissions carry their own dicts and are
        counted separately.
        """
        seen: set = set()
        for outcome in outcomes:
            counters = outcome.extras.get("solver_counters")
            if not counters or id(counters) in seen:
                continue
            seen.add(id(counters))
            for name, value in counters.items():
                metric = self._m_solver.get(name)
                if metric is not None and value:
                    metric.inc(value)

    def _publish_worker_metrics(self) -> None:
        """Mirror the planner's execution-backend utilisation into gauges.

        Planners with a process execution backend (the federated
        planner) report per-worker task/busy/resync counters; each
        worker gets ``planner_worker_<i>_{tasks,busy_seconds,resyncs}``
        gauges so pool utilisation is observable next to admission
        throughput.  Planners without a ``worker_stats`` method (or
        without live workers) publish nothing.
        """
        stats_fn = getattr(self.planner, "worker_stats", None)
        if stats_fn is None:
            return
        stats = stats_fn()
        registry = self.metrics
        for worker_id, record in enumerate(stats.get("workers", [])):
            for key in ("tasks", "busy_seconds", "resyncs"):
                registry.gauge(f"planner_worker_{worker_id}_{key}").set(
                    float(record.get(key, 0))
                )

    def _solve_batch(
        self, batch: List[AdmissionTicket]
    ) -> Tuple[
        List[PlanningOutcome],
        Allocation,
        Tuple[set, set, set],
    ]:
        """Plan one coalesced batch and snapshot the result for deploy."""
        started = time.perf_counter()
        for ticket in batch:
            ticket.decided_at = started
            self._m_queue_wait.observe(started - ticket.enqueued_at)
        outcomes = self.planner.submit_batch(
            [ticket.item for ticket in batch],
            time_limit=self.config.batch_time_limit,
        )
        fallback = self.config.fallback
        if fallback != "none" and outcomes:
            if fallback == "batch":
                retry = (
                    outcomes if not any(o.admitted for o in outcomes) else []
                )
            else:  # "rejected"
                retry = [o for o in outcomes if not o.admitted]
            if retry:
                self._m_fallbacks.inc()
                # A fallback retry re-solves a model the batch solve just
                # built: resubmit routes it through the planner's
                # dual-simplex warm-start path.
                rescued = {
                    id(o): self.planner.resubmit(o.query) for o in retry
                }
                outcomes = [rescued.get(id(o), o) for o in outcomes]
        self._m_batches.inc()
        self._m_batch_size.observe(float(len(batch)))
        self._m_solve.observe(time.perf_counter() - started)
        for outcome in outcomes:
            if outcome.admitted:
                self._m_admitted.inc()
            else:
                self._m_rejected.inc()
            # Reuse resolution is one shared index pass inside
            # ``submit_batch``; the matches ride along on the extras.
            if outcome.reuse_exact:
                self._m_reuse_exact.inc()
            elif outcome.reuse_partial:
                self._m_reuse_partial.inc()
        self._observe_solver_counters(outcomes)
        self._publish_worker_metrics()
        allocation = self.planner.allocation
        if self.engine is not None and allocation is not None:
            # Drain exactly what this batch touched for the deploy stage's
            # delta-validation.  Without an engine the pending touched sets
            # are left alone — an outer owner (the simulation harness) may
            # be tracking them for its own validation.
            touched = allocation.drain_touched()
            snapshot: Optional[Allocation] = allocation.copy()
        else:
            touched = (set(), set(), set())
            snapshot = None
        return outcomes, snapshot, touched

    def _deploy_batch(
        self,
        batch: List[AdmissionTicket],
        outcomes: List[PlanningOutcome],
        snapshot: Optional[Allocation],
        touched: Tuple[set, set, set],
    ) -> None:
        """Delta-validate the batch's snapshot and adopt it on the engine."""
        started = time.perf_counter()
        try:
            if self.engine is not None and snapshot is not None:
                hosts, streams, operators = touched
                violations = snapshot.validate_delta(
                    hosts, streams, operators
                )
                if violations:
                    self._m_deploy_failures.inc()
                    raise PlanningError(
                        "admission batch produced an infeasible "
                        "allocation: " + "; ".join(violations[:5])
                    )
                # Trusted: the delta-validation above covered everything
                # this batch touched, matching the harness's contract.
                self.engine.adopt(snapshot, trusted=True)
                self._m_deploys.inc()
        except BaseException as error:
            for ticket in batch:
                self._finish(ticket, error=error)
            raise
        finally:
            self._m_deploy.observe(time.perf_counter() - started)
        for ticket, outcome in zip(batch, outcomes):
            self._finish(ticket, outcome=outcome)
            latency = ticket.latency
            if latency is not None:
                self._m_latency.observe(latency)

    def _drain_once(self) -> None:
        """Synchronous path: run every stage for one batch, inline."""
        batch = self._next_batch(block=False)
        if not batch:
            return
        outcomes, snapshot, touched = self._solve_batch(batch)
        self._deploy_batch(batch, outcomes, snapshot, touched)

    # ------------------------------------------------------------ stage loops
    def _solver_loop(self) -> None:
        try:
            while True:
                if self._closed.is_set() and self._arrivals.empty():
                    break
                batch = self._next_batch(block=True)
                if batch is None:
                    if self._closed.is_set():
                        break
                    continue
                planned = self._solve_batch(batch)
                self._deploys.put((batch, planned))
        except BaseException as error:  # pragma: no cover - defensive
            self._stage_error = error
            self._fail_pending(error)
        finally:
            # A submit racing close() can slip a ticket in behind the stop
            # sentinel; nothing will plan it, so fail it loudly.
            self._fail_pending(ServiceClosed("the admission service closed"))
            self._deploys.put(_STOP)

    def _deploy_loop(self) -> None:
        try:
            while True:
                entry = self._deploys.get()
                if entry is _STOP:
                    break
                batch, (outcomes, snapshot, touched) = entry
                try:
                    self._deploy_batch(batch, outcomes, snapshot, touched)
                except BaseException:
                    # The batch's tickets already carry the error; the
                    # pipeline keeps serving subsequent batches.
                    continue
        except BaseException as error:  # pragma: no cover - defensive
            self._stage_error = error
            self._fail_pending(error)

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            try:
                ticket = self._arrivals.get_nowait()
            except queue.Empty:
                break
            if ticket is not _STOP:
                self._finish(ticket, error=error)

    # --------------------------------------------------------------- lifecycle
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every accepted query has a deployed decision."""
        if not self.config.pipelined:
            with self._sync_lock:
                while not self._arrivals.empty():
                    self._drain_once()
            return
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    raise AdmissionTimeout("flush timed out")
                self._inflight_cv.wait(timeout=remaining)

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; optionally drain in-flight work."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self.config.pipelined:
            self._arrivals.put(_STOP)
            if wait:
                for thread in self._threads:
                    thread.join(timeout=60.0)
        elif wait:
            with self._sync_lock:
                while not self._arrivals.empty():
                    self._drain_once()

    def __enter__(self) -> "AdmissionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(wait=True)
