"""Discrete-event churn simulation: events, schedules and the harness.

>>> from repro.sim import SimulationHarness
>>> from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
>>> harness = SimulationHarness(planner)
>>> result = harness.run(schedule)      # -> SimulationResult
"""

from repro.sim.events import (
    EventSchedule,
    HostFailure,
    HostRecovery,
    LoadDrift,
    QueryArrival,
    QueryDeparture,
    ReplanTick,
    SimEvent,
    SitePartition,
    SiteRecovery,
    WanDrift,
    merge_schedules,
)
from repro.sim.harness import (
    COUNTER_NAMES,
    SimulationHarness,
    SimulationResult,
    TickMetrics,
)

__all__ = [
    "COUNTER_NAMES",
    "EventSchedule",
    "HostFailure",
    "HostRecovery",
    "LoadDrift",
    "QueryArrival",
    "QueryDeparture",
    "ReplanTick",
    "SimEvent",
    "SimulationHarness",
    "SimulationResult",
    "SitePartition",
    "SiteRecovery",
    "TickMetrics",
    "WanDrift",
    "merge_schedules",
]
