"""The event model of the churn simulation (see ``docs/simulation.md``).

A simulation is a time-ordered stream of :class:`SimEvent` records drained
by :class:`repro.sim.harness.SimulationHarness`.  Six event kinds cover the
dynamics the paper's adaptive re-planning story (§IV-B) reacts to:

* :class:`QueryArrival` — a client submits a new query,
* :class:`QueryDeparture` — a client cancels a previously submitted query,
* :class:`HostFailure` / :class:`HostRecovery` — a host leaves / rejoins,
* :class:`LoadDrift` — observed operator costs drift away from estimates,
* :class:`ReplanTick` — a periodic adaptive re-planning opportunity.

Federated topologies add three WAN-level kinds:

* :class:`SitePartition` / :class:`SiteRecovery` — a whole resource site is
  cut off the WAN (its hosts keep running, but nothing may cross its
  gateway) and later re-attached,
* :class:`WanDrift` — the effective WAN gateway capacities drift to a
  factor of their provisioned values (congestion below 1.0).

Events carry *descriptions* of what happens, never live objects: a
departure references its arrival by index, drift names a factor and a
count rather than operator ids (operators only exist once queries have
been registered).  This keeps schedules independent of any catalog
instance, so one :class:`EventSchedule` can drive every planner under
comparison from identical initial conditions — the determinism contract
the scenario tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dsps.query import QueryWorkloadItem
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class SimEvent:
    """Base class of all simulation events: something happens at ``time``."""

    time: float

    @property
    def kind(self) -> str:
        """Short machine-readable event kind (the class name)."""
        return type(self).__name__


@dataclass(frozen=True)
class QueryArrival(SimEvent):
    """A client submits a new query.

    ``arrival_index`` is the 0-based position among all arrivals of the
    schedule; departures reference it because query ids are only assigned
    at registration time.  ``lifetime`` (when known at generation time) is
    informational — the matching :class:`QueryDeparture` is what actually
    removes the query.
    """

    item: QueryWorkloadItem
    arrival_index: int
    lifetime: Optional[float] = None


@dataclass(frozen=True)
class QueryDeparture(SimEvent):
    """The client of arrival ``arrival_index`` cancels its query."""

    arrival_index: int


@dataclass(frozen=True)
class HostFailure(SimEvent):
    """Host ``host`` fails: it leaves the active set, queries running on it
    are evicted and re-planned elsewhere."""

    host: int


@dataclass(frozen=True)
class HostRecovery(SimEvent):
    """Host ``host`` rejoins the cluster with its base streams."""

    host: int


@dataclass(frozen=True)
class LoadDrift(SimEvent):
    """Observed cost of ``num_operators`` currently-placed operators drifts
    to ``factor`` × the estimate (the §IV-B trigger condition)."""

    factor: float
    num_operators: int = 1


@dataclass(frozen=True)
class SitePartition(SimEvent):
    """Site ``site`` is cut off the WAN: its hosts keep running, but queries
    whose plans cross its gateway are evicted and re-planned (ideally
    confined to one side of the partition)."""

    site: int


@dataclass(frozen=True)
class SiteRecovery(SimEvent):
    """Site ``site`` is re-attached to the WAN; gateways come back."""

    site: int


@dataclass(frozen=True)
class WanDrift(SimEvent):
    """Effective WAN gateway capacities drift to ``factor`` × their
    provisioned values; queries on gateways that no longer fit are evicted
    and re-planned."""

    factor: float


@dataclass(frozen=True)
class ReplanTick(SimEvent):
    """A periodic opportunity for adaptive re-planning; the harness runs a
    round only when the monitor flags victims."""


@dataclass
class EventSchedule:
    """A validated, time-ordered event stream plus its seeding contract.

    ``seed`` is the *only* source of randomness of a simulation run: the
    trace generator derives every sample from it, and the harness derives
    its own event-execution RNG (drift target selection) from it.  Two runs
    of the same schedule against freshly-built planners are therefore
    bit-identical.
    """

    events: List[SimEvent] = field(default_factory=list)
    seed: int = 0
    duration: float = 0.0

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise SimulationError("schedule events must be sorted by time")
        arrivals = [e for e in self.events if isinstance(e, QueryArrival)]
        indices = [e.arrival_index for e in arrivals]
        if indices != list(range(len(indices))):
            raise SimulationError(
                "arrival_index values must be dense and in arrival order"
            )
        # A departure must come after the arrival it cancels — scanning in
        # order, its index must already have arrived.
        arrived = set()
        for event in self.events:
            if isinstance(event, QueryArrival):
                arrived.add(event.arrival_index)
            elif isinstance(event, QueryDeparture):
                if event.arrival_index not in arrived:
                    raise SimulationError(
                        f"departure at t={event.time:g} precedes (or references "
                        f"an unknown) arrival {event.arrival_index}"
                    )

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def num_arrivals(self) -> int:
        """Number of query arrivals in the schedule."""
        return sum(1 for e in self.events if isinstance(e, QueryArrival))

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts per kind (for summaries and tests)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def describe(self) -> str:
        """One-line human-readable summary of the schedule."""
        counts = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.counts_by_kind().items())
        )
        return (
            f"EventSchedule(seed={self.seed}, duration={self.duration:g}, "
            f"{len(self.events)} events: {counts})"
        )


def merge_schedules(*schedules: EventSchedule) -> EventSchedule:
    """Merge schedules into one, re-sorting by time (stable).

    Arrival indices are re-assigned densely in merged arrival order and
    departures are re-pointed accordingly, so independently generated
    sub-traces (e.g. a failure-injection overlay on an arrival trace) can
    be composed.  The merged schedule keeps the first schedule's seed.
    """
    if not schedules:
        return EventSchedule()
    tagged: List[Tuple[float, int, SimEvent]] = []
    remap: Dict[Tuple[int, int], int] = {}  # (schedule idx, old index) -> new
    # First pass fixes the merged arrival order (stable sort by time).
    arrivals: List[Tuple[float, int, QueryArrival]] = []
    for sched_idx, schedule in enumerate(schedules):
        for event in schedule:
            if isinstance(event, QueryArrival):
                arrivals.append((event.time, sched_idx, event))
    arrivals.sort(key=lambda entry: (entry[0], entry[1]))
    for new_index, (_time, sched_idx, event) in enumerate(arrivals):
        remap[(sched_idx, event.arrival_index)] = new_index
    for sched_idx, schedule in enumerate(schedules):
        for seq, event in enumerate(schedule):
            if isinstance(event, QueryArrival):
                event = QueryArrival(
                    time=event.time,
                    item=event.item,
                    arrival_index=remap[(sched_idx, event.arrival_index)],
                    lifetime=event.lifetime,
                )
            elif isinstance(event, QueryDeparture):
                event = QueryDeparture(
                    time=event.time,
                    arrival_index=remap[(sched_idx, event.arrival_index)],
                )
            tagged.append((event.time, sched_idx * 1_000_000 + seq, event))
    tagged.sort(key=lambda entry: (entry[0], entry[1]))
    merged = [event for (_t, _seq, event) in tagged]
    return EventSchedule(
        events=merged,
        seed=schedules[0].seed,
        duration=max(s.duration for s in schedules),
    )
