"""The deterministic discrete-event churn simulation harness.

:class:`SimulationHarness` drives one planner through an
:class:`~repro.sim.events.EventSchedule` on top of a
:class:`~repro.dsps.engine.ClusterEngine`:

* **arrivals** go through the planner's normal ``submit`` path,
* **departures** retire admitted queries (``Planner.retire``), garbage-
  collecting the structures only they needed,
* **host failures** deactivate the host in the engine, evict the victim
  queries and immediately try to re-admit them on the surviving hosts,
* **host recoveries** bring the host (and its base streams) back,
* **site partitions** cut a whole site off the WAN (its hosts keep
  running); queries straddling the boundary are evicted and re-admitted,
  ideally confined to one side — **site recoveries** re-attach the site,
* **WAN drift** scales the effective gateway capacities; queries on
  gateways that no longer fit are evicted and re-planned,
* **load drift** perturbs observed operator costs in the resource monitor,
* **replan ticks** give the :class:`~repro.core.adaptive.AdaptiveReplanner`
  a periodic chance to move drifted/overloaded queries (§IV-B).

Determinism contract: given the same schedule (hence the same seed) and a
freshly built catalog + planner, two runs produce identical
:class:`SimulationResult` values — ``result.fingerprint()`` is the equality
the scenario tests assert.  The harness adds no randomness of its own
beyond an RNG derived from the schedule seed (used to pick drift targets),
and it never reads the clock.  Planners must be configured
deterministically: on the small scenarios used for simulation the default
config works because solves finish before their time limits; for strict
determinism on larger scenarios pass ``PlannerConfig(time_limit=None)`` so
no solver decision ever depends on wall-clock.

After every event the harness checks the planner's live allocation for
constraint violations (``validate_invariants=True``, the default) and
raises :class:`~repro.exceptions.SimulationError` on the first violation,
so a decoding or garbage-collection bug surfaces at the event that caused
it rather than as a corrupted end-state.

Invariant checking is *delta-based* by default (``validation_mode="delta"``):
the harness validates only the hosts/streams/operators an event actually
touched — drained from the allocation's incremental touched tracking when
the event mutated the allocation in place, or recovered via
:func:`~repro.dsps.allocation.touched_between` when the event replaced the
allocation object (garbage collection, host failure, re-planning).  Events
that touch nothing (idle replan ticks, drift) skip validation entirely.
``validation_mode="full"`` restores the pre-index behaviour — a full
:meth:`~repro.dsps.allocation.Allocation.validate` scan after every event —
and is what the churn-throughput benchmark uses as its naive baseline.
Either way the full oracle still runs once on the final state
(``result.final_violations``).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.admission import AdmissionService

from repro.api.base import Planner
from repro.core.adaptive import AdaptiveReplanner
from repro.dsps.allocation import Allocation, touched_between
from repro.dsps.engine import ClusterEngine
from repro.exceptions import SimulationError
from repro.sim.events import (
    EventSchedule,
    HostFailure,
    HostRecovery,
    LoadDrift,
    QueryArrival,
    QueryDeparture,
    ReplanTick,
    SimEvent,
    SitePartition,
    SiteRecovery,
    WanDrift,
)
from repro.utils.rng import ensure_rng

#: Counter names every simulation result carries (all start at zero, so
#: golden fixtures and dashboards see a stable key set).
COUNTER_NAMES = (
    "arrivals",
    "admitted",
    "rejected",
    "departures",
    "departures_of_rejected",
    "host_failures",
    "host_recoveries",
    "evicted",
    "readmitted",
    "dropped",
    "drift_events",
    "replan_ticks",
    "replan_rounds",
    "replan_readmitted",
    "replan_dropped",
    "site_partitions",
    "site_recoveries",
    "wan_drift_events",
)


@dataclass
class TickMetrics:
    """One per-event snapshot of the simulated system."""

    time: float
    event: str
    submitted: int          # cumulative arrivals submitted
    active: int             # queries currently admitted and not departed
    rejected: int           # cumulative admission rejections
    departed: int           # cumulative clean departures
    dropped: int            # cumulative forced drops (failures, replans)
    replans: int            # cumulative replanning rounds that moved queries
    active_hosts: int
    mean_cpu_utilisation: float
    max_cpu_utilisation: float


@dataclass
class SimulationResult:
    """Everything one churn simulation run produced."""

    planner_name: str
    seed: int
    ticks: List[TickMetrics] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    final_violations: List[str] = field(default_factory=list)
    #: Per-event invariant violations, each recorded with the index (its
    #: 0-based position in the schedule), kind and time of the scheduled
    #: event that triggered it plus the violation messages — so an artifact
    #: bundle can say *which* event broke which invariant instead of only
    #: that the run died.  Populated before the harness raises (default
    #: ``on_violation="raise"``) or accumulated across the whole run
    #: (``on_violation="record"``).
    violation_events: List[Dict[str, Any]] = field(default_factory=list)
    #: How invariants were checked during the run ("delta" or "full"), how
    #: many per-event validations ran, and the wall-clock they consumed.
    #: Excluded from :meth:`fingerprint` — wall-clock is never part of the
    #: determinism digest.
    validation_mode: str = "delta"
    validate_calls: int = 0
    validate_seconds: float = 0.0

    @property
    def final_active(self) -> int:
        """Queries still admitted when the schedule ran out."""
        return self.ticks[-1].active if self.ticks else 0

    def fingerprint(self) -> Tuple:
        """A hashable digest of the run used to assert determinism.

        Covers every counter and the full per-tick ``(time, active,
        rejected, dropped)`` trajectory; planning times are deliberately
        excluded because wall-clock is the one thing two identical runs
        may not share.
        """
        return (
            self.planner_name,
            self.seed,
            tuple(sorted(self.counters.items())),
            tuple((t.time, t.active, t.rejected, t.dropped) for t in self.ticks),
        )

    def kpis(self) -> Dict[str, float]:
        """The run's key performance indicators as one flat numeric dict.

        This is the extraction hook the scenario-matrix artifacts build
        their baseline deltas from: every value is a plain float derived
        only from counters and recorded ticks (never wall-clock), so KPIs
        of two runs of the same schedule are identical and cross-cell
        deltas are meaningful.
        """
        counters = self.counters
        arrivals = counters.get("arrivals", 0)
        ticks = self.ticks
        kpis: Dict[str, float] = {
            name: float(counters.get(name, 0))
            for name in (
                "arrivals",
                "admitted",
                "rejected",
                "departures",
                "dropped",
                "evicted",
                "readmitted",
                "replan_rounds",
                "host_failures",
                "site_partitions",
                "wan_drift_events",
            )
        }
        kpis["admission_rate"] = (
            counters.get("admitted", 0) / arrivals if arrivals else 0.0
        )
        kpis["final_active"] = float(self.final_active)
        kpis["peak_active"] = float(max((t.active for t in ticks), default=0))
        kpis["mean_active"] = (
            sum(t.active for t in ticks) / len(ticks) if ticks else 0.0
        )
        kpis["mean_cpu_utilisation"] = (
            sum(t.mean_cpu_utilisation for t in ticks) / len(ticks)
            if ticks
            else 0.0
        )
        kpis["peak_cpu_utilisation"] = float(
            max((t.max_cpu_utilisation for t in ticks), default=0.0)
        )
        kpis["invariant_violations"] = float(
            len(self.violation_events) + len(self.final_violations)
        )
        return kpis

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dump (the CI churn artifact format)."""
        return {
            "planner": self.planner_name,
            "seed": self.seed,
            "counters": dict(sorted(self.counters.items())),
            "final_active": self.final_active,
            "final_violations": list(self.final_violations),
            "violation_events": [dict(v) for v in self.violation_events],
            "validation": {
                "mode": self.validation_mode,
                "calls": self.validate_calls,
                "seconds": round(self.validate_seconds, 6),
            },
            "ticks": [asdict(tick) for tick in self.ticks],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise :meth:`to_json_dict` to a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent)


class SimulationHarness:
    """Drive one planner through an event schedule on a cluster engine.

    Parameters
    ----------
    planner:
        Any registered planner instance (the catalog it was built on is the
        simulated system).
    engine:
        The cluster engine to run on; one is built on the planner's catalog
        when omitted.  The engine's monitor is the drift/overload oracle.
    replanner:
        Adaptive replanner consuming the ``ReplanTick`` events; built
        automatically for planners with a live allocation when omitted
        (``auto_replanner=False`` disables that).
    drift_threshold:
        Relative drift above which an operator's queries become replan
        victims (forwarded to the auto-built replanner).
    service:
        Optional :class:`~repro.service.admission.AdmissionService` built
        on the same planner.  When given, arrival events *enqueue* into
        the service instead of calling ``planner.submit`` directly — the
        schedule replays through the real admission path (queue, batch
        coalescing, fallback policy).  The service must be synchronous
        (``pipelined=False``, the single-worker configuration) so replay
        stays deterministic, and must not own an engine of its own — the
        harness keeps doing the validating and engine syncing.
    validate_invariants:
        Check the planner's allocation after every event and raise
        :class:`SimulationError` on the first violation.
    on_violation:
        ``"raise"`` (default) aborts the run on the first violation, after
        recording it in ``result.violation_events`` with the triggering
        event's schedule index, kind and time; ``"record"`` keeps running
        and accumulates every violation there instead — the mode the
        scenario-matrix runner uses so one bad cell reports *all* its
        violations in the artifact bundle rather than dying on the first.
    validation_mode:
        ``"delta"`` (default) validates only what each event touched via
        :meth:`~repro.dsps.allocation.Allocation.validate_delta`;
        ``"full"`` runs the complete
        :meth:`~repro.dsps.allocation.Allocation.validate` oracle after
        every event (the naive pre-index behaviour, kept as the benchmark
        baseline).  Both modes raise on the same violations for valid
        simulations, and both end with one full-oracle pass.
    record_every:
        Record a :class:`TickMetrics` every N processed events (the final
        event is always recorded).
    """

    def __init__(
        self,
        planner: Planner,
        engine: Optional[ClusterEngine] = None,
        replanner: Optional[AdaptiveReplanner] = None,
        drift_threshold: float = 0.25,
        auto_replanner: bool = True,
        validate_invariants: bool = True,
        validation_mode: str = "delta",
        on_violation: str = "raise",
        record_every: int = 1,
        service: Optional["AdmissionService"] = None,
    ) -> None:
        self.planner = planner
        self.engine = engine or ClusterEngine(planner.catalog, strict=False)
        if self.engine.catalog is not planner.catalog:
            raise SimulationError(
                "engine and planner must share one catalog instance"
            )
        if service is not None:
            if service.planner is not planner:
                raise SimulationError(
                    "the admission service must wrap the harness's planner"
                )
            if service.config.pipelined:
                raise SimulationError(
                    "schedule replay needs a synchronous service "
                    "(ServiceConfig(pipelined=False)) to stay deterministic"
                )
            if service.engine is not None:
                raise SimulationError(
                    "the harness owns engine syncing; build the service "
                    "without an engine"
                )
        self.service = service
        if validation_mode not in ("delta", "full"):
            raise SimulationError(
                f"validation_mode must be 'delta' or 'full', got {validation_mode!r}"
            )
        if on_violation not in ("raise", "record"):
            raise SimulationError(
                f"on_violation must be 'raise' or 'record', got {on_violation!r}"
            )
        if replanner is None and auto_replanner and planner.allocation is not None:
            replanner = AdaptiveReplanner(
                planner, self.engine.monitor, drift_threshold=drift_threshold
            )
        self.replanner = replanner
        self.validate_invariants = validate_invariants
        self.validation_mode = validation_mode
        self.on_violation = on_violation
        self.record_every = max(1, record_every)
        self.validate_calls = 0
        self.validate_seconds = 0.0

    # ------------------------------------------------------------------ running
    def run(self, schedule: EventSchedule) -> SimulationResult:
        """Process every event of ``schedule`` in order and return the result."""
        planner = self.planner
        catalog = planner.catalog
        rng = ensure_rng(schedule.seed + 0x5EED)
        result = SimulationResult(
            planner_name=planner.name,
            seed=schedule.seed,
            validation_mode=self.validation_mode,
        )
        counters = result.counters
        for name in COUNTER_NAMES:
            counters[name] = 0
        self.validate_calls = 0
        self.validate_seconds = 0.0
        # Delta-validation baseline: discard touched state accumulated before
        # the run (e.g. by a warmed-up planner) and remember the allocation
        # object identity so replaced allocations are diffed, not drained.
        prev_allocation = planner.allocation
        if prev_allocation is not None:
            prev_allocation.drain_touched()

        #: arrival_index -> query_id for still-active queries, and the
        #: reverse map so a re-admitted victim re-occupies its slot.
        active: Dict[int, int] = {}
        index_by_query: Dict[int, int] = {}

        def reconcile() -> List[int]:
            """Drop map entries whose query the planner no longer admits;
            returns the forcibly dropped query ids."""
            current = planner.active_queries
            stale = [
                (index, qid) for index, qid in active.items() if qid not in current
            ]
            for index, _qid in stale:
                del active[index]
            return [qid for _index, qid in stale]

        def sync_engine() -> None:
            if planner.allocation is not None:
                # With invariant checking on, the state handed back is
                # exactly what the harness last validated, so the engine may
                # keep using delta-based checks on it.  With checking off
                # that guarantee is gone and the engine's own host-change
                # reports fall back to the full oracle.
                self.engine.adopt(
                    planner.allocation, trusted=self.validate_invariants
                )

        def record_violations(
            position: int, event: SimEvent, messages: List[str], label: str
        ) -> None:
            """Attach ``messages`` to the result as one violation record —
            keyed by the triggering event's schedule index, kind and time —
            then raise unless the harness is in ``on_violation="record"``
            mode.  Recording *before* raising means even an aborted run's
            result object (when the caller kept a reference) and the
            exception text both say which scheduled event broke."""
            if not messages:
                return
            result.violation_events.append(
                {
                    "event_index": position,
                    "event_kind": event.kind,
                    "time": event.time,
                    "stage": label,
                    "violations": list(messages),
                }
            )
            if self.on_violation == "raise":
                raise SimulationError(
                    f"{label} after event #{position} ({event.kind}) at "
                    f"t={event.time:g}: " + "; ".join(messages[:3])
                )

        def handle_eviction_report(
            position: int, event: SimEvent, report, label: str
        ) -> None:
            """Shared tail of the eviction-producing events (host failures,
            site partitions, WAN drift): adopt the engine's surviving
            allocation, account the evictions and give every victim one
            immediate re-admission attempt.  Only victims this run counted
            as dropped may decrement the counter — a planner warmed up
            before run() has victims the harness never tracked."""
            if planner.allocation is not None:
                planner.allocation = self.engine.allocation
            planner_drops = planner.on_topology_change()
            counters["evicted"] += len(report.victims) + len(planner_drops)
            dropped_now = set(reconcile())
            counters["dropped"] += len(dropped_now)
            for victim in report.victims:
                # A churn victim is a perturbation re-solve of a known
                # query: route it through resubmit so MILP planners take
                # the dual-simplex warm-start path.
                outcome = planner.resubmit(catalog.get_query(victim))
                if outcome.admitted:
                    counters["readmitted"] += 1
                    if victim in dropped_now:
                        counters["dropped"] -= 1
                    index = index_by_query.get(victim)
                    if index is not None:
                        active[index] = victim
            record_violations(
                position, event, report.violations, f"{label} left violations"
            )

        for position, event in enumerate(schedule):
            if isinstance(event, QueryArrival):
                counters["arrivals"] += 1
                if self.service is not None:
                    outcome = self.service.submit(event.item).result()
                else:
                    outcome = planner.submit(event.item)
                index_by_query[outcome.query.query_id] = event.arrival_index
                if outcome.admitted:
                    counters["admitted"] += 1
                    active[event.arrival_index] = outcome.query.query_id
                else:
                    counters["rejected"] += 1

            elif isinstance(event, QueryDeparture):
                query_id = active.pop(event.arrival_index, None)
                if query_id is None:
                    # The arrival was rejected (or already force-dropped);
                    # the client's cancellation is a no-op.
                    counters["departures_of_rejected"] += 1
                else:
                    planner.retire(query_id)
                    counters["departures"] += 1
                    # An optimistic-bound replay may shed other queries.
                    counters["dropped"] += len(reconcile())

            elif isinstance(event, HostFailure):
                counters["host_failures"] += 1
                sync_engine()
                report = self.engine.fail_host(event.host)
                handle_eviction_report(
                    position, event, report, f"host failure {event.host}"
                )

            elif isinstance(event, HostRecovery):
                counters["host_recoveries"] += 1
                self.engine.restore_host(event.host)
                planner.on_topology_change()

            elif isinstance(event, SitePartition):
                counters["site_partitions"] += 1
                sync_engine()
                report = self.engine.partition_site(event.site)
                handle_eviction_report(
                    position, event, report, f"partition of site {event.site}"
                )

            elif isinstance(event, SiteRecovery):
                counters["site_recoveries"] += 1
                self.engine.heal_site(event.site)
                planner.on_topology_change()

            elif isinstance(event, WanDrift):
                counters["wan_drift_events"] += 1
                sync_engine()
                report = self.engine.apply_wan_drift(event.factor)
                handle_eviction_report(
                    position, event, report, f"WAN drift to {event.factor:g}x"
                )

            elif isinstance(event, LoadDrift):
                counters["drift_events"] += 1
                self._apply_drift(event, rng)

            elif isinstance(event, ReplanTick):
                counters["replan_ticks"] += 1
                if self.replanner is not None:
                    report = self.replanner.maybe_replan()
                    if report is not None:
                        counters["replan_rounds"] += 1
                        counters["replan_readmitted"] += len(report.readmitted)
                        counters["replan_dropped"] += len(report.dropped)
                        counters["dropped"] += len(reconcile())
                        # Once re-planned, the drifted estimates have been
                        # acted on; clear them so the same drift does not
                        # re-trigger a round on every subsequent tick.
                        self.engine.monitor.reset_drift()

            else:  # pragma: no cover - future event kinds
                raise SimulationError(f"unknown event kind {event.kind!r}")

            sync_engine()
            if isinstance(event, (HostFailure, HostRecovery)):
                extra_hosts: Set[int] = {event.host}
            elif isinstance(event, (SitePartition, SiteRecovery)):
                extra_hosts = set(catalog.hosts_in_site(event.site))
            elif isinstance(event, WanDrift) and catalog.num_sites > 1:
                # Only gateways still carrying traffic can be overloaded by
                # a capacity scale; re-check the hosts of exactly those site
                # pairs (evicted structures are in the drained touched set).
                extra_hosts = set()
                if planner.allocation is not None:
                    for src_site, dst_site in planner.allocation.wan_usage():
                        extra_hosts.update(catalog.hosts_in_site(src_site))
                        extra_hosts.update(catalog.hosts_in_site(dst_site))
            else:
                extra_hosts = set()
            prev_allocation, violations = self._check_invariants(
                event, prev_allocation, extra_hosts
            )
            record_violations(position, event, violations, "invariant violated")
            if (
                position % self.record_every == 0
                or position == len(schedule) - 1
            ):
                result.ticks.append(self._tick(event, counters, len(active)))

        if planner.allocation is not None:
            result.final_violations = planner.allocation.validate()
        result.validate_calls = self.validate_calls
        result.validate_seconds = self.validate_seconds
        return result

    # ------------------------------------------------------------------ helpers
    def _apply_drift(self, event: LoadDrift, rng) -> None:
        """Apply ``event`` to deterministically chosen drift targets.

        Targets are the currently-placed operators (allocation planners) or
        every registered operator (planners without an allocation), sorted
        by id; the schedule-derived RNG picks ``num_operators`` of them.
        Selection is deterministic because the RNG is consumed in event
        order.
        """
        allocation = self.planner.allocation
        if allocation is not None:
            # host→operators / operator→hosts are maintained incrementally;
            # no need to re-scan every placement pair per drift event.
            candidates = allocation.placed_operators()
        else:
            candidates = sorted(
                operator.operator_id for operator in self.planner.catalog.operators
            )
        if not candidates:
            return
        count = min(max(1, event.num_operators), len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False)
        for offset in sorted(int(i) for i in chosen):
            self.engine.monitor.set_operator_drift(candidates[offset], event.factor)

    def _check_invariants(
        self,
        event: SimEvent,
        prev_allocation: Optional[Allocation],
        extra_hosts: Set[int],
    ) -> Tuple[Optional[Allocation], List[str]]:
        """Validate what ``event`` touched; return the new baseline
        allocation plus any violations found (the caller records them
        against the event and decides whether to raise or keep running).

        With ``validation_mode="delta"`` the touched sets come from the
        allocation's own mutation tracking (in-place events) or from a
        ground-truth diff against the previous allocation object (events
        that replace the allocation, e.g. garbage collection on departure).
        ``extra_hosts`` carries entities an event touches without mutating
        the allocation — the host of a failure/recovery.
        """
        allocation = self.planner.allocation
        if allocation is None:
            return None, []
        if not self.validate_invariants:
            # Keep the touched accumulator drained so it cannot grow without
            # bound across a long unvalidated run.
            allocation.drain_touched()
            return allocation, []
        start = time.perf_counter()
        if self.validation_mode == "full":
            allocation.drain_touched()
            violations = allocation.validate()
        else:
            # The accumulator is complete even across object replacements:
            # copies inherit pending touches and rebuilds re-seed them via
            # Allocation.inherit_touched.  Only a replacement that arrives
            # with *no* pending touches (a path that bypassed those hooks,
            # e.g. a planner reset to a fresh allocation) falls back to a
            # defensive ground-truth diff against the previous object.
            hosts, streams, operators = allocation.drain_touched()
            if (
                allocation is not prev_allocation
                and prev_allocation is not None
                and not (hosts or streams or operators)
            ):
                hosts, streams, operators = touched_between(
                    prev_allocation, allocation
                )
            hosts |= extra_hosts
            if hosts or streams or operators:
                violations = allocation.validate_delta(hosts, streams, operators)
            else:
                violations = []
        self.validate_seconds += time.perf_counter() - start
        self.validate_calls += 1
        return allocation, violations

    def _tick(
        self, event: SimEvent, counters: Dict[str, int], num_active: int
    ) -> TickMetrics:
        allocation = self.planner.allocation
        hosts = self.planner.catalog.host_ids
        if allocation is not None and hosts:
            utilisations = [allocation.cpu_utilisation(h) for h in hosts]
            mean_cpu = sum(utilisations) / len(utilisations)
            max_cpu = max(utilisations)
        elif hosts:
            # Aggregate-host planners: one global utilisation number.
            used = getattr(self.planner, "cpu_used", 0.0)
            capacity = getattr(self.planner, "cpu_capacity", 0.0) or 1.0
            mean_cpu = max_cpu = used / capacity
        else:
            mean_cpu = max_cpu = 0.0
        return TickMetrics(
            time=event.time,
            event=event.kind,
            submitted=counters["arrivals"],
            active=num_active,
            rejected=counters["rejected"],
            departed=counters["departures"],
            dropped=counters["dropped"],
            replans=counters["replan_rounds"],
            active_hosts=len(hosts),
            mean_cpu_utilisation=mean_cpu,
            max_cpu_utilisation=max_cpu,
        )
