"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that the package can be installed editable (``pip install -e .``) in
environments whose setuptools/pip combination lacks the ``wheel`` package
required for PEP 660 editable installs (``--no-use-pep517`` falls back to
``setup.py develop``).
"""

from setuptools import setup

setup()
