"""Adaptive re-planning after cost-estimate drift (§IV-B).

The scenario motivating SQPR's adaptive mode: queries are admitted based on
*estimated* operator costs; at runtime the resource monitor observes that
some operators consume more CPU than estimated (here: a drift factor applied
to a subset of operators), which overloads a host.  The adaptive re-planner
removes the affected queries, garbage-collects the allocation and re-admits
them, restoring a feasible, balanced placement.

Run with::

    python examples/adaptive_replanning.py
"""

from __future__ import annotations

from repro import (
    AdaptiveReplanner,
    PlannerConfig,
    ResourceMonitor,
    SQPRPlanner,
    SimulationScenarioConfig,
    build_simulation_scenario,
    create_planner,
)


def print_cpu(title: str, planner: SQPRPlanner, monitor: ResourceMonitor) -> None:
    print(title)
    for host in planner.catalog.host_ids:
        estimated = planner.allocation.cpu_utilisation(host) * 100
        observed = (
            monitor.observed_cpu_used(planner.allocation, host)
            / planner.catalog.hosts.get(host).cpu_capacity
            * 100
        )
        print(f"  host {host}: estimated {estimated:5.1f}%   observed {observed:5.1f}%")
    print()


def main() -> None:
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(num_hosts=5, num_base_streams=25, seed=13)
    )
    catalog = scenario.build_catalog()
    planner = create_planner("sqpr", catalog, config=PlannerConfig(time_limit=1.0))
    monitor = ResourceMonitor(catalog, random_state=13)

    # Observe re-planning rounds through the planner's event hooks instead
    # of subclassing the planner or the replanner.
    planner.on_replan(
        lambda report: print(
            f"[hook] replan round: {len(report.victims)} victims, "
            f"{len(report.readmitted)} re-admitted, {len(report.dropped)} dropped"
        )
    )

    for item in scenario.workload(12, arities=(2, 3)):
        planner.submit(item)
    print(f"admitted {planner.num_admitted} queries\n")
    print_cpu("before drift:", planner, monitor)

    # The monitor observes that some operators cost 80% more than estimated.
    drifted = 0
    for host, operator_id in sorted(planner.allocation.placements):
        if drifted >= 3:
            break
        monitor.set_operator_drift(operator_id, 1.8)
        drifted += 1
    print_cpu("after drift (estimates unchanged, observations up):", planner, monitor)

    replanner = AdaptiveReplanner(planner, monitor, drift_threshold=0.2)
    victims = replanner.queries_needing_replan()
    print(f"queries flagged for re-planning: {victims}")
    report = replanner.replan(victims)
    print(
        f"re-planned {len(report.victims)} queries: "
        f"{len(report.readmitted)} re-admitted, {len(report.dropped)} dropped\n"
    )
    print_cpu("after adaptive re-planning:", planner, monitor)

    violations = planner.allocation.validate()
    print("allocation constraint check:", "OK" if not violations else violations)


if __name__ == "__main__":
    main()
