"""A long-running admission service under bursty query arrivals.

Builds a 3-site federated scenario, starts a pipelined
``AdmissionService`` over ``federated:sqpr`` with parallel per-site
shards, and pushes a burst of site-local queries through it.  Co-arriving
queries coalesce into batch admissions (one joint model per site group
per batch), deploys run through the cluster engine while the next batch
is already solving, and the service's metrics registry records what
happened — batch sizes, queue waits, solve and deploy timings, and the
end-to-end admission-latency distribution.

Run with::

    python examples/admission_service.py
"""

from __future__ import annotations

import json

from repro import ClusterEngine, PlannerConfig, create_planner
from repro.experiments.federated import federated_scenario, site_local_workload
from repro.service import AdmissionService, ServiceConfig


def main() -> None:
    scenario = federated_scenario(num_sites=3, seed=11)
    workload = site_local_workload(scenario, queries_per_site=8)
    catalog = scenario.build_catalog()
    print(f"catalog: {catalog.summary()}")
    print(f"burst: {len(workload)} site-local queries across {catalog.num_sites} sites\n")

    planner = create_planner(
        "federated:sqpr",
        catalog,
        config=PlannerConfig(time_limit=0.6),
        workers=3,  # per-site shards solve on a worker pool
    )
    engine = ClusterEngine(catalog)

    config = ServiceConfig(
        max_batch=8,          # coalesce up to 8 co-arrivals per batch
        batch_window=0.05,    # wait this long for co-arrivals
        batch_time_limit=1.5, # flat solver budget per batch
        overload_policy="block",
    )

    with AdmissionService(planner, engine=engine, config=config) as service:
        # Fire the whole burst without waiting for decisions: each submit
        # returns a ticket immediately and the pipeline coalesces.
        tickets = [service.submit(item) for item in workload]
        service.flush(timeout=60.0)

        admitted = 0
        for index, ticket in enumerate(tickets):
            outcome = ticket.result(timeout=10.0)
            admitted += outcome.admitted
            if index < 5:
                print(
                    f"query {index}: admitted={outcome.admitted} "
                    f"queue_wait={ticket.queue_wait:.3f}s "
                    f"latency={ticket.latency:.3f}s"
                )
        print(f"...\nadmitted {admitted}/{len(tickets)}")
        print(f"engine allocation matches planner: "
              f"{engine.allocation.fingerprint() == planner.allocation.fingerprint()}\n")

        snapshot = service.metrics.snapshot()
        counters = snapshot["counters"]
        batches = snapshot["histograms"]["batch_size"]
        latency = snapshot["histograms"]["admission_latency_seconds"]
        print(f"batches: {counters['batches_total']} "
              f"(median size {batches['p50']:.0f}), "
              f"deploys: {counters['deploys_total']}")
        print(f"admission latency: p50={latency['p50']:.3f}s "
              f"p99={latency['p99']:.3f}s")
        print("\nfull metrics snapshot:")
        print(json.dumps(snapshot, indent=2, default=float)[:800], "...")


if __name__ == "__main__":
    main()
