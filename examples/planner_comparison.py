"""Compare every registered planner on one shared workload.

This is a miniature version of the paper's Figure 4(a) experiment: the same
workload is submitted, one query at a time, to each planner in the registry
(SQPR, the hand-crafted heuristic, the SODA-like planner and the
aggregate-host optimistic bound), and the admission curves are printed side
by side.  Thanks to the unified planner API the loop body is identical for
every planner — adding a planner to the registry adds a column here.

Run with::

    python examples/planner_comparison.py [num_queries]
"""

from __future__ import annotations

import sys

from repro import (
    PlannerConfig,
    available_planners,
    build_simulation_scenario,
    create_planner,
    run_admission_experiment,
)
from repro.experiments.reporting import format_table


def main(num_queries: int = 40) -> None:
    scenario = build_simulation_scenario()
    workload = scenario.workload(num_queries)
    checkpoint = max(5, num_queries // 8)
    planner_names = available_planners()

    print(f"scenario: {scenario.num_hosts} hosts, {scenario.num_base_streams} base streams")
    print(f"workload: {num_queries} queries (2/3/4-way joins, Zipf 1.0)")
    print(f"planners: {', '.join(planner_names)}")
    print()

    curves = {}
    for name in planner_names:
        planner = create_planner(
            name, scenario.build_catalog(), config=PlannerConfig(time_limit=0.3)
        )
        # group_size is omitted: epoch planners automatically get epochs.
        curves[name] = run_admission_experiment(
            planner, workload, checkpoint_every=checkpoint
        )

    reference = curves[planner_names[0]]
    rows = []
    for index, submitted in enumerate(reference.submitted):
        rows.append(
            [submitted] + [curves[name].satisfied[index] for name in planner_names]
        )
    print(
        format_table(
            ["submitted"] + list(planner_names),
            rows,
            title="satisfied queries vs submitted queries",
        )
    )
    print()
    for name in planner_names:
        print(
            f"average {name} planning time: "
            f"{curves[name].average_planning_time() * 1000:.0f} ms/query"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
