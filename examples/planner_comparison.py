"""Compare SQPR against the greedy-reuse heuristic and the optimistic bound.

This is a miniature version of the paper's Figure 4(a) experiment: the same
workload is submitted, one query at a time, to SQPR, to the hand-crafted
heuristic planner and to the aggregate-host optimistic bound, and the
admission curves are printed side by side.

Run with::

    python examples/planner_comparison.py [num_queries]
"""

from __future__ import annotations

import sys

from repro import (
    HeuristicPlanner,
    OptimisticBoundPlanner,
    PlannerConfig,
    SQPRPlanner,
    build_simulation_scenario,
    run_admission_experiment,
)
from repro.experiments.reporting import format_table


def main(num_queries: int = 40) -> None:
    scenario = build_simulation_scenario()
    workload = scenario.workload(num_queries)
    checkpoint = max(5, num_queries // 8)

    print(f"scenario: {scenario.num_hosts} hosts, {scenario.num_base_streams} base streams")
    print(f"workload: {num_queries} queries (2/3/4-way joins, Zipf 1.0)")
    print()

    sqpr = SQPRPlanner(scenario.build_catalog(), config=PlannerConfig(time_limit=0.3))
    sqpr_curve = run_admission_experiment(sqpr, workload, checkpoint_every=checkpoint)

    heuristic = HeuristicPlanner(scenario.build_catalog())
    heuristic_curve = run_admission_experiment(
        heuristic, workload, checkpoint_every=checkpoint
    )

    bound = OptimisticBoundPlanner(scenario.build_catalog())
    bound_curve = run_admission_experiment(bound, workload, checkpoint_every=checkpoint)

    rows = []
    for index, submitted in enumerate(sqpr_curve.submitted):
        rows.append(
            [
                submitted,
                sqpr_curve.satisfied[index],
                heuristic_curve.satisfied[index],
                bound_curve.satisfied[index],
            ]
        )
    print(
        format_table(
            ["submitted", "sqpr", "heuristic", "optimistic bound"],
            rows,
            title="satisfied queries vs submitted queries",
        )
    )
    print()
    print(
        f"average SQPR planning time: "
        f"{sqpr_curve.average_planning_time() * 1000:.0f} ms/query"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
