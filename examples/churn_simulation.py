"""Churn simulation: planners under arrivals, departures, failures and drift.

The paper evaluates planners on closed workloads (submit N queries, count
admissions).  This example opens the system: queries arrive as a Poisson
process and leave after Zipf-skewed lifetimes, a host fails mid-run and
later recovers, operator costs drift, and the adaptive re-planner (§IV-B)
periodically moves affected queries.  Every planner runs the *same* seeded
event schedule from identical initial conditions, so the active-query
trajectories are directly comparable — and two runs of this script produce
identical numbers.

Run with::

    python examples/churn_simulation.py
"""

from __future__ import annotations

from repro import (
    CHURN_SCENARIOS,
    DecompositionMode,
    SimulationScenarioConfig,
    build_simulation_scenario,
    run_named_churn_experiment,
)
from repro.experiments.reporting import format_table
from repro.experiments.timeline import summarise


def main() -> None:
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=4,
            num_base_streams=12,
            host_cpu_capacity=6.0,
            host_bandwidth=200.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=3,
        )
    )

    for name, (description, _factory) in sorted(CHURN_SCENARIOS.items()):
        print(f"{name}: {description}")
    print()

    scenario_name = "host_flap"
    print(f"running {scenario_name!r} for every planner...\n")
    results = run_named_churn_experiment(
        ["heuristic", "soda", "optimistic", "sqpr"],
        scenario,
        scenario_name,
        record_every=5,
    )

    print(
        format_table(
            ["planner", "admitted", "rejected", "departed", "dropped", "active at end"],
            summarise(results),
            title=f"churn scenario {scenario_name!r}",
        )
    )
    print()

    sqpr = results["sqpr"]
    print("sqpr counters:")
    for key, value in sorted(sqpr.counters.items()):
        if value:
            print(f"  {key:>20}: {value}")
    print(f"\nfinal violations: {sqpr.final_violations or 'none'}")


if __name__ == "__main__":
    main()
