"""Federated site-aware planning: per-site shards, a WAN coordinator,
and a site partition mid-run.

The paper targets federated infrastructures — resource sites connected by
constrained wide-area links.  This example builds a two-site catalog with a
shared WAN gateway, plans site-local queries through ``federated:sqpr``
(each solved by that site's own small MILP), escalates one cross-site query
to the coordinator, then partitions a site and shows the engine evicting
exactly the queries that straddled the cut.

Run with::

    python examples/federated_planning.py
"""

from __future__ import annotations

from repro import (
    ClusterEngine,
    DecompositionMode,
    PlannerConfig,
    QueryWorkloadItem,
    SimulationScenarioConfig,
    build_simulation_scenario,
    create_planner,
)


def main() -> None:
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=6,
            num_base_streams=14,
            host_cpu_capacity=6.0,
            host_bandwidth=250.0,
            decomposition=DecompositionMode.CANONICAL,
            num_sites=2,
            wan_capacity=120.0,
            seed=3,
        )
    )
    catalog = scenario.build_catalog()
    print(f"catalog: {catalog.summary()}")
    print(f"sites: {catalog.sites}, WAN gateway: {catalog.wan_capacity(0, 1)} Mbps")
    for site in catalog.sites:
        print(f"  site {site}: hosts {catalog.hosts_in_site(site)}, "
              f"streams {scenario.site_stream_names(site)}")
    print()

    planner = create_planner(
        "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
    )

    site0 = scenario.site_stream_names(0)
    site1 = scenario.site_stream_names(1)
    workload = [
        QueryWorkloadItem(base_names=(site0[0], site0[1])),   # local to site 0
        QueryWorkloadItem(base_names=(site1[0], site1[1])),   # local to site 1
        QueryWorkloadItem(base_names=(site0[2], site0[3])),   # local to site 0
        QueryWorkloadItem(base_names=(site0[0], site1[2])),   # spans both sites
    ]
    for item in workload:
        outcome = planner.submit(item)
        verdict = "admitted" if outcome.admitted else "rejected"
        print(
            f"query {outcome.query.query_id} over {item.base_names}: "
            f"{verdict} by {outcome.extras['site']!r} shard "
            f"({outcome.planning_time * 1000:.1f} ms)"
        )
    print()
    print(f"merged allocation: {planner.allocation.summary()}")
    print(f"WAN usage per site pair: {planner.allocation.wan_usage()}")
    print(f"per-shard stats: {planner.shard_stats()}")
    print(f"violations: {planner.allocation.validate()}")
    print()

    # ---------------------------------------------------------- site partition
    engine = ClusterEngine(catalog, strict=False)
    engine.adopt(planner.allocation, trusted=True)
    print("partitioning site 1 (its WAN gateway goes dark)...")
    report = engine.partition_site(1)
    print(f"  evicted queries: {report.victims} (the cross-site ones)")
    planner.allocation = engine.allocation
    planner.on_topology_change()

    # The victims get a re-admission attempt; confined planning may still
    # fit them inside one side of the partition.
    for victim in report.victims:
        outcome = planner.submit(catalog.get_query(victim))
        verdict = "re-admitted" if outcome.admitted else "still unroutable"
        print(f"  query {victim}: {verdict} (via {outcome.extras['site']!r})")

    print(f"  WAN usage now: {planner.allocation.wan_usage()}")
    print(f"  violations: {planner.allocation.validate()}")
    print()

    print("healing site 1...")
    engine.adopt(planner.allocation, trusted=True)
    engine.heal_site(1)
    planner.on_topology_change()
    outcome = planner.submit(
        QueryWorkloadItem(base_names=(site0[1], site1[3]))
    )
    print(
        f"  new cross-site query {outcome.query.query_id}: "
        f"{'admitted' if outcome.admitted else 'rejected'} "
        f"(via {outcome.extras['site']!r})"
    )
    print(f"  final allocation: {planner.allocation.summary()}")
    print(f"  final violations: {planner.allocation.validate()}")


if __name__ == "__main__":
    main()
