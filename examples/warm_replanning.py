"""Warm-started re-planning after a host failure (dual-simplex resume).

A host failure is the paper's canonical re-planning trigger: the victims
are removed and re-submitted against a perturbed system.  Structurally the
MILP of each re-submission is the one the planner already solved — only
bounds and capacities moved — so the SQPR planner resumes the incumbent
simplex basis through the *dual* simplex instead of paying a cold phase-1
solve (see ``docs/architecture.md``, "Dual-simplex re-planning").

The script admits a workload, fails the busiest host, re-admits the
victims through ``planner.resubmit`` and then re-plans one survivor in
place twice — the second round resumes the basis stored by the first —
printing the solver counters (dual resumes, phase-1 iterations, cold
fallbacks, ...) and the basis-store hit rate after each round.

Run with::

    python examples/warm_replanning.py
"""

from __future__ import annotations

from repro import (
    ClusterEngine,
    MilpSolver,
    PlannerConfig,
    SimulationScenarioConfig,
    SolverBackend,
    SQPRPlanner,
    build_simulation_scenario,
)
from repro.milp import SOLVER_COUNTER_FIELDS


def print_counters(title: str, totals: dict, previous: dict) -> dict:
    """Print the counter delta since ``previous`` and return a snapshot."""
    print(title)
    for name in SOLVER_COUNTER_FIELDS:
        delta = totals.get(name, 0) - previous.get(name, 0)
        if delta:
            print(f"  {name:>20}: +{delta}")
    print()
    return dict(totals)


def main() -> None:
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(num_hosts=5, num_base_streams=20, seed=7)
    )
    catalog = scenario.build_catalog()
    # Pin the in-repo branch-and-bound + sparse simplex stack: it is what
    # implements basis hand-back and dual-simplex resumes (with scipy
    # installed the default backend would be HiGHS, which has neither).
    planner = SQPRPlanner(
        catalog,
        config=PlannerConfig(time_limit=1.0),
        solver=MilpSolver(
            backend=SolverBackend.BRANCH_AND_BOUND,
            time_limit=1.0,
            lp_engine="simplex",
        ),
    )

    for item in scenario.workload(10, arities=(2, 3)):
        planner.submit(item)
    print(f"admitted {planner.num_admitted}/10 queries\n")
    snapshot = print_counters(
        "solver counters after initial admissions (cold solves):",
        planner.solver_counters(),
        {},
    )

    # Fail the host carrying the most CPU load; the engine evicts every
    # query whose plan depends on it (the harness wires churn the same way).
    engine = ClusterEngine(catalog, strict=False)
    engine.adopt(planner.allocation)
    victim_host = max(
        catalog.host_ids, key=lambda h: planner.allocation.cpu_utilisation(h)
    )
    report = engine.fail_host(victim_host)
    planner.allocation = engine.allocation
    planner.on_topology_change()
    print(f"host {victim_host} failed; evicted queries: {report.victims}")

    # Re-admit the victims through the re-planning path.  resubmit marks
    # each outcome as a perturbation re-solve and lets the MILP stack
    # resume stored bases where the scope still matches.
    for victim in report.victims:
        outcome = planner.resubmit(catalog.get_query(victim))
        verdict = "re-admitted" if outcome.admitted else "dropped"
        print(
            f"  query {victim}: {verdict} "
            f"(perturbation_resolve={outcome.perturbation_resolve})"
        )
    print()
    snapshot = print_counters(
        "solver counters for the failure round (warm re-solves):",
        planner.solver_counters(),
        snapshot,
    )

    # Re-plan one survivor in place, twice.  The first round solves on the
    # degraded host set for the first time and *stores* its root basis;
    # the second round's scope and host set match, so the stored basis is
    # resumed directly (a basis-store hit + dual resume at the root).
    survivor = next(iter(planner.allocation.admitted_queries))
    for round_no in (1, 2):
        planner.retire(survivor)
        outcome = planner.resubmit(catalog.get_query(survivor))
        print(
            f"in-place re-plan #{round_no} of query {survivor}: "
            f"admitted={outcome.admitted} "
            f"(perturbation_resolve={outcome.perturbation_resolve})"
        )
        snapshot = print_counters(
            f"solver counters for in-place re-plan #{round_no}:",
            planner.solver_counters(),
            snapshot,
        )

    stats = planner.reuse_stats
    print(
        f"model reuse: {stats['hits']} hits / {stats['misses']} misses; "
        f"basis store: {stats['basis_hits']} hits / "
        f"{stats['basis_misses']} misses"
    )
    print()

    violations = planner.allocation.validate()
    print("allocation constraint check:", "OK" if not violations else violations)


if __name__ == "__main__":
    main()
