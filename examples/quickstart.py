"""Quickstart: plan a handful of continuous queries with SQPR.

Builds a small simulated data-centre DSPS, constructs the SQPR planner
through the unified planner registry (``create_planner``), submits a few
join queries one at a time (exactly like the paper's Algorithm 1), and
prints for each query whether it was admitted, how long planning took and
which hosts ended up running its operators.

Any other registered planner name (``heuristic``, ``soda``,
``optimistic``) can be passed as the first command-line argument to drive
the same workload through a different planner.

Run with::

    python examples/quickstart.py [planner]
"""

from __future__ import annotations

import sys

from repro import (
    PlannerConfig,
    SimulationScenarioConfig,
    build_simulation_scenario,
    create_planner,
    extract_plan,
)


def main(planner_name: str = "sqpr") -> None:
    # A small data-centre: 6 hosts, 30 base streams at 10 Mbps each.
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(num_hosts=6, num_base_streams=30, seed=42)
    )
    catalog = scenario.build_catalog()
    planner = create_planner(planner_name, catalog, config=PlannerConfig(time_limit=1.0))

    print(catalog.summary())
    print()

    workload = scenario.workload(10, arities=(2, 3, 4))
    for item in workload:
        outcome = planner.submit(item)
        verdict = "admitted" if outcome.admitted else "rejected"
        joined = " ⋈ ".join(item.base_names)
        print(
            f"query {outcome.query.query_id:>2}  [{joined:<18}]  {verdict:<8} "
            f"({outcome.planning_time * 1000:6.1f} ms)"
        )
        if outcome.admitted and planner.allocation is not None:
            plan = extract_plan(catalog, planner.allocation, outcome.query.result_stream)
            hosts = ", ".join(f"h{h}" for h in sorted(plan.hosts_used()))
            print(f"          plan uses hosts: {hosts}; {plan.num_relays()} relay(s)")

    print()
    print(f"admitted {planner.num_admitted}/{planner.num_submitted} queries")
    allocation = planner.allocation
    if allocation is not None:
        print("per-host CPU utilisation:")
        for host in catalog.host_ids:
            utilisation = allocation.cpu_utilisation(host)
            bar = "#" * int(utilisation * 40)
            print(f"  host {host}: {utilisation * 100:5.1f}% {bar}")

        violations = allocation.validate()
        print()
        print("allocation constraint check:", "OK" if not violations else violations)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sqpr")
