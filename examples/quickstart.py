"""Quickstart: plan a handful of continuous queries with SQPR.

Builds a small simulated data-centre DSPS, submits a few join queries one at
a time (exactly like the paper's Algorithm 1), and prints for each query
whether it was admitted, how long planning took and which hosts ended up
running its operators.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PlannerConfig,
    SQPRPlanner,
    SimulationScenarioConfig,
    build_simulation_scenario,
    extract_plan,
)


def main() -> None:
    # A small data-centre: 6 hosts, 30 base streams at 10 Mbps each.
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(num_hosts=6, num_base_streams=30, seed=42)
    )
    catalog = scenario.build_catalog()
    planner = SQPRPlanner(catalog, config=PlannerConfig(time_limit=1.0))

    print(catalog.summary())
    print()

    workload = scenario.workload(10, arities=(2, 3, 4))
    for item in workload:
        outcome = planner.submit(item)
        verdict = "admitted" if outcome.admitted else "rejected"
        joined = " ⋈ ".join(item.base_names)
        print(
            f"query {outcome.query.query_id:>2}  [{joined:<18}]  {verdict:<8} "
            f"({outcome.planning_time * 1000:6.1f} ms, "
            f"{outcome.model_size:4d} model variables)"
        )
        if outcome.admitted:
            plan = extract_plan(catalog, planner.allocation, outcome.query.result_stream)
            hosts = ", ".join(f"h{h}" for h in sorted(plan.hosts_used()))
            print(f"          plan uses hosts: {hosts}; {plan.num_relays()} relay(s)")

    print()
    print(f"admitted {planner.num_admitted}/{planner.num_submitted} queries")
    print("per-host CPU utilisation:")
    for host in catalog.host_ids:
        utilisation = planner.allocation.cpu_utilisation(host)
        bar = "#" * int(utilisation * 40)
        print(f"  host {host}: {utilisation * 100:5.1f}% {bar}")

    violations = planner.allocation.validate()
    print()
    print("allocation constraint check:", "OK" if not violations else violations)


if __name__ == "__main__":
    main()
