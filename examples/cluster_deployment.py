"""Cluster deployment comparison: SQPR vs the SODA-like planner (§V-B).

Reproduces a miniature version of the paper's Emulab deployment: a 15-host
cluster on a 10 Mbps LAN with 10 Kbps base streams, queries submitted in
epochs, and the per-host CPU / network distributions of both planners
printed as quantiles (the paper plots them as CDFs in Fig. 7).

Run with::

    python examples/cluster_deployment.py [num_queries]
"""

from __future__ import annotations

import sys

from repro import (
    PlannerConfig,
    build_cluster_scenario,
    create_planner,
    run_admission_experiment,
)
from repro.experiments.metrics import percentile
from repro.experiments.reporting import format_table


def main(num_queries: int = 60) -> None:
    scenario = build_cluster_scenario()
    workload = scenario.workload(num_queries, arities=(2, 3))
    epoch = max(5, num_queries // 5)

    config = PlannerConfig(time_limit=0.3)
    sqpr = create_planner("sqpr", scenario.build_catalog(), config=config)
    sqpr_curve = run_admission_experiment(sqpr, workload, checkpoint_every=epoch)

    soda = create_planner("soda", scenario.build_catalog(), config=config)
    soda_curve = run_admission_experiment(
        soda, workload, checkpoint_every=epoch, group_size=epoch
    )

    rows = [
        [sub, sqpr_curve.satisfied[i], soda_curve.satisfied[i]]
        for i, sub in enumerate(sqpr_curve.submitted)
        if i < len(soda_curve.satisfied)
    ]
    print(
        format_table(
            ["submitted", "sqpr", "soda"],
            rows,
            title="cluster deployment: satisfied queries per epoch",
        )
    )
    print()

    def distribution_rows(planner):
        allocation = planner.allocation
        cpu = [allocation.cpu_utilisation(h) * 100 for h in planner.catalog.host_ids]
        net = [allocation.network_usage(h) for h in planner.catalog.host_ids]
        return [
            [percentile(cpu, 25), percentile(cpu, 50), percentile(cpu, 95)],
            [percentile(net, 25), percentile(net, 50), percentile(net, 95)],
        ]

    for name, planner in (("SQPR", sqpr), ("SODA", soda)):
        cpu_row, net_row = distribution_rows(planner)
        print(
            format_table(
                ["p25", "p50", "p95"],
                [cpu_row],
                title=f"{name}: per-host CPU utilisation (%)",
            )
        )
        print(
            format_table(
                ["p25", "p50", "p95"],
                [net_row],
                title=f"{name}: per-host network usage (Mbps)",
            )
        )
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
