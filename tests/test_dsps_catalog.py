"""Tests for the system catalog, cost model and query decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import (
    DecompositionMode,
    QueryWorkloadItem,
    canonical_chain,
    enumerate_splits,
    enumerate_subsets,
)
from repro.exceptions import CatalogError
from tests.conftest import make_catalog, query_over


class TestCostModel:
    def test_selectivity_in_range_and_deterministic(self):
        model = LinearCostModel(selectivity_low=0.2, selectivity_high=0.5, seed=3)
        sel_a = model.selectivity({1, 2})
        sel_b = model.selectivity({2, 1})
        assert 0.2 <= sel_a <= 0.5
        assert sel_a == sel_b

    def test_different_sets_get_different_selectivities(self):
        model = LinearCostModel(seed=3)
        assert model.selectivity({1, 2}) != model.selectivity({1, 3})

    def test_output_rate_linear_in_inputs(self):
        model = LinearCostModel(seed=1)
        low = model.output_rate([10.0, 10.0], {1, 2})
        high = model.output_rate([20.0, 20.0], {1, 2})
        assert high == pytest.approx(2 * low)

    def test_cpu_cost_linear(self):
        model = LinearCostModel(cpu_per_rate=0.1, cpu_fixed=0.5)
        assert model.operator_cpu_cost([10.0, 10.0]) == pytest.approx(2.5)

    @given(st.sets(st.integers(min_value=0, max_value=50), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_selectivity_always_in_configured_range(self, base_set):
        model = LinearCostModel(selectivity_low=0.1, selectivity_high=0.4, seed=9)
        assert 0.1 <= model.selectivity(base_set) <= 0.4


class TestDecompositionHelpers:
    def test_canonical_chain(self):
        chain = canonical_chain([5, 1, 3])
        assert chain == [frozenset({1, 3}), frozenset({1, 3, 5})]

    def test_enumerate_subsets_counts(self):
        subsets = enumerate_subsets([1, 2, 3])
        assert len(subsets) == 4  # {12},{13},{23},{123}

    def test_enumerate_splits_no_duplicates(self):
        splits = enumerate_splits(frozenset({1, 2, 3}))
        assert len(splits) == 3
        for left, right in splits:
            assert left | right == frozenset({1, 2, 3})
            assert not left & right

    @given(st.sets(st.integers(min_value=0, max_value=10), min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_splits_cover_subset_exactly(self, subset):
        subset = frozenset(subset)
        splits = enumerate_splits(subset)
        assert len(splits) == 2 ** (len(subset) - 1) - 1
        for left, right in splits:
            assert left | right == subset


class TestQueryWorkloadItem:
    def test_needs_two_streams(self):
        with pytest.raises(CatalogError):
            QueryWorkloadItem(base_names=("b0",))

    def test_rejects_duplicates(self):
        with pytest.raises(CatalogError):
            QueryWorkloadItem(base_names=("b0", "b0"))

    def test_arity(self):
        assert query_over("b0", "b1", "b2").arity == 3


class TestCatalog:
    def test_base_stream_placement(self, tiny_catalog):
        assert tiny_catalog.base_hosts_of(0) == frozenset({0})
        assert 0 in tiny_catalog.base_streams_at(0)

    def test_base_stream_needs_valid_host(self):
        catalog = SystemCatalog()
        with pytest.raises(CatalogError):
            catalog.add_base_stream("b0", 10.0, host_id=0)

    def test_link_capacity_default_and_override(self, tiny_catalog):
        assert tiny_catalog.link_capacity(0, 1) == 1000.0
        assert tiny_catalog.link_capacity(1, 1) == 0.0
        tiny_catalog.set_link_capacity(0, 1, 10.0)
        assert tiny_catalog.link_capacity(1, 0) == 10.0

    def test_register_canonical_query(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        # Two composite streams: {b0,b1} and {b0,b1,b2}.
        composites = [s for s in query.candidate_streams if tiny_catalog.streams.get(s).is_composite]
        assert len(composites) == 2
        assert len(query.candidate_operators) == 2
        assert query.arity == 3
        result = tiny_catalog.streams.get(query.result_stream)
        assert result.base_set == query.base_streams

    def test_register_query_shares_prefix_streams(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b3"))
        shared = set(q1.candidate_streams) & set(q2.candidate_streams)
        shared_composites = [
            s for s in shared if tiny_catalog.streams.get(s).is_composite
        ]
        assert shared_composites, "sorted prefixes must be shared"
        assert q1.overlaps(q2)

    def test_register_exhaustive_query(self, bushy_catalog):
        query = bushy_catalog.register_query(query_over("b0", "b1", "b2"))
        # Subsets of size >= 2: three pairs plus the triple.
        composites = [
            s for s in query.candidate_streams if bushy_catalog.streams.get(s).is_composite
        ]
        assert len(composites) == 4
        # Operators: one per pair plus three ways to build the triple.
        assert len(query.candidate_operators) == 6

    def test_duplicate_query_registration_shares_everything(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        q2 = tiny_catalog.register_query(query_over("b1", "b0"))
        assert q1.query_id != q2.query_id
        assert q1.result_stream == q2.result_stream
        assert q1.candidate_operators == q2.candidate_operators

    def test_query_over_unknown_stream_rejected(self, tiny_catalog):
        with pytest.raises(CatalogError):
            tiny_catalog.register_query(query_over("b0", "nope"))

    def test_requested_streams(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        assert query.result_stream in tiny_catalog.requested_streams
        assert tiny_catalog.queries_for_stream(query.result_stream) == [query]

    def test_aggregates(self, tiny_catalog):
        assert tiny_catalog.total_cpu_capacity() == pytest.approx(30.0)
        assert tiny_catalog.total_bandwidth_capacity() == pytest.approx(600.0)
        assert tiny_catalog.total_link_capacity() == pytest.approx(6 * 1000.0)

    def test_operator_dedup_by_signature(self, tiny_catalog):
        before = tiny_catalog.num_operators
        tiny_catalog.register_query(query_over("b0", "b1"))
        mid = tiny_catalog.num_operators
        tiny_catalog.register_query(query_over("b0", "b1"))
        assert tiny_catalog.num_operators == mid
        assert mid == before + 1

    def test_producers_of(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        producers = tiny_catalog.producers_of(query.result_stream)
        assert len(producers) == 1
        assert producers[0].output_stream == query.result_stream

    def test_composite_rate_uses_cost_model(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        result = tiny_catalog.streams.get(query.result_stream)
        expected = tiny_catalog.cost_model.output_rate([10.0, 10.0], result.base_set)
        assert result.rate == pytest.approx(expected)

    def test_summary_mentions_counts(self, tiny_catalog):
        tiny_catalog.register_query(query_over("b0", "b1"))
        text = tiny_catalog.summary()
        assert "hosts" in text and "streams" in text
